// Quickstart: the MiddleWhere public API in one file.
//
// Builds a tiny world, registers two sensor technologies, feeds readings,
// and exercises the pull (queries) and push (subscriptions) models plus the
// spatial-relationship API. Run it with no arguments; it narrates what it
// does.
#include <iostream>

#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

int main() {
  using namespace mw;
  using util::MobileObjectId;

  // 1. A virtual clock makes every run reproducible; production deployments
  //    would use util::SystemClock.
  util::VirtualClock clock;

  // 2. Generate a one-floor building (4 rooms per corridor side), and stand
  //    the middleware stack up over it: spatial database + location service.
  sim::Blueprint building = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  core::LocationService& svc = mw.locationService();
  std::cout << "world: " << mw.database().objectCount() << " spatial objects, universe "
            << building.universe << "\n";

  // 3. Simulated people carrying Ubisense tags.
  sim::World world(building, /*seed=*/7);
  world.addPerson({MobileObjectId{"alice"}, "101", 4.0, /*carryTag=*/1.0});
  world.addPerson({MobileObjectId{"bob"}, "153", 4.0, /*carryTag=*/1.0});

  // 4. One Ubisense adapter covering the building, wired straight into the
  //    location service (use Middlewhere::listen + connectRemote for the
  //    distributed version of this wiring).
  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-main"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 0.9, util::sec(5), ""});
  ubi->registerWith(mw.database());

  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(ubi, util::sec(1));

  // 5. Push mode: be told when anyone enters room 104 with probability 0.5+.
  svc.subscribe({building.roomNamed("104")->rect, std::nullopt, 0.5, std::nullopt,
                 /*onlyOnEntry=*/true, [&](const core::Notification& n) {
                   std::cout << "[notify] " << n.object << " entered 104 (p=" << n.probability
                             << ", " << fusion::toString(n.cls) << ")\n";
                 }});

  // 6. Let the world run for a simulated minute.
  world.sendTo(MobileObjectId{"alice"}, "104");
  world.sendTo(MobileObjectId{"bob"}, "151");
  std::size_t readings = scenario.run(util::sec(60));
  std::cout << "ingested " << readings << " sensor readings over 60 simulated seconds\n";

  // 7. Pull mode: object-based query...
  if (auto est = svc.locateObject(MobileObjectId{"alice"})) {
    std::cout << "alice is in " << est->region << " with probability " << est->probability
              << " (" << fusion::toString(est->cls) << ")\n";
  }
  // ...symbolic form (GLOB)...
  if (auto symbolic = svc.locateSymbolic(MobileObjectId{"alice"})) {
    std::cout << "symbolically: " << *symbolic << "\n";
  }
  // ...and region-based: who is in room 104?
  for (const auto& [who, p] : svc.objectsInRegion(building.roomNamed("104")->rect, 0.3)) {
    std::cout << "in 104: " << who << " (p=" << p << ")\n";
  }

  // 8. Spatial relationships.
  std::cout << "P(alice within 10ft of bob) = "
            << svc.proximity(MobileObjectId{"alice"}, MobileObjectId{"bob"}, 10.0) << "\n";
  if (auto d = svc.distanceBetween(MobileObjectId{"alice"}, MobileObjectId{"bob"})) {
    std::cout << "alice-bob distance: " << d->expected << " ft (Euclidean)\n";
  }
  if (auto pd = svc.pathDistanceBetween(MobileObjectId{"alice"}, MobileObjectId{"bob"})) {
    std::cout << "alice-bob path distance: " << *pd << " ft (through doors)\n";
  }

  // 9. Privacy: cap bob's disclosure at building granularity.
  svc.setPrivacyGranularity(MobileObjectId{"bob"}, 1);
  if (auto symbolic = svc.locateSymbolic(MobileObjectId{"bob"})) {
    std::cout << "bob's location at privacy granularity 1: " << *symbolic << "\n";
  }
  return 0;
}
