// City crowd monitoring, end to end: generate a multi-building city, populate
// a behavioural crowd, and watch a festival form through the middleware's own
// eyes — standing density alarms (subscribeDensity through the incremental
// counting rule), region populations, and region-to-region flow counters.
//
// Earlier examples each hand-rolled their own one-building scenario; this one
// uses the citysim engine (the same generator, population, and monitor the
// city bench and tests drive), so the narration is the scenario code.
//
// Timeline:
//   t=0        morning traffic: commuters indoors, vehicles on the streets
//   t=60 s     a street festival is announced on plaza-0-1; the crowd model
//              starts flocking there
//   alarm      the plaza's standing density rule trips (Rose edge) the
//              moment its corroborated population crosses the limit
//   t=240 s    flow report: where the city moved, plaza populations, alarms
#include <iostream>

#include "citysim/city.hpp"
#include "citysim/crowd_monitor.hpp"
#include "citysim/population.hpp"
#include "core/location_service.hpp"
#include "util/clock.hpp"

int main() {
  using namespace mw;

  // --- generate ---------------------------------------------------------------
  citysim::CityConfig cityConfig;
  cityConfig.name = "Metro";
  cityConfig.rows = 1;
  cityConfig.cols = 2;
  cityConfig.building.roomsPerSide = 3;
  const citysim::CityBlueprint city = citysim::generateCity(cityConfig);
  std::cout << "Generated " << city.name << ": " << city.buildings.size() << " buildings, "
            << city.roomCount() << " rooms, " << city.outdoors.size()
            << " outdoor regions (fingerprint " << std::hex
            << std::hash<std::string>{}(city.fingerprint()) << std::dec << ")\n";

  util::VirtualClock clock;
  db::SpatialDatabase database(clock, city.universe, city.frames());
  city.populate(database);
  citysim::CitySensors::registerAll(database);
  core::LocationService service(clock, database);
  service.connectivity() = city.connectivity();

  // --- populate ---------------------------------------------------------------
  citysim::PopulationConfig popConfig;
  popConfig.commuters = 40;
  popConfig.crowd = 80;
  popConfig.vehicles = 20;
  popConfig.staff = 10;
  popConfig.walkingSpeed = 12;  // festival pace
  citysim::Population population(city, popConfig);
  std::cout << "Population: " << popConfig.commuters << " commuters, " << popConfig.crowd
            << " crowd, " << popConfig.vehicles << " vehicles, " << popConfig.staff
            << " badge-only staff\n\n";

  const citysim::OutdoorRegion* venue = city.outdoorNamed("plaza-0-1");
  if (venue == nullptr) return 1;

  // --- standing rules + monitor ----------------------------------------------
  // 0.35 sits below the ~0.49 a lone small-box reading fuses to under the
  // uniform-area prior: corroborated members count, single stale hints don't.
  constexpr double kMinProbability = 0.35;
  constexpr std::size_t kLimit = 20;

  std::vector<citysim::WatchedRegion> watched;
  for (const citysim::OutdoorRegion& region : city.outdoors)
    watched.push_back({region.name, region.rect});
  citysim::CrowdMonitor monitor(
      watched,
      [&](const geo::Rect& rect, double minP) { return service.objectsInRegion(rect, minP); },
      kMinProbability);

  core::DensitySubscription rule;
  rule.region = venue->rect;
  rule.minProbability = kMinProbability;
  rule.limit = kLimit;
  const util::TimePoint demoStart = clock.now();
  rule.callback = [&](const core::DensityNotification& n) {
    monitor.onDensity(n);
    const auto at =
        std::chrono::duration_cast<std::chrono::seconds>(n.when - demoStart).count();
    if (n.edge == cq::CountEdge::Rose)
      std::cout << "  *** t+" << at << "s OVERCROWDING ALARM: " << venue->name
                << " population " << n.count << " crossed limit " << n.limit << " ***\n";
    else if (n.edge == cq::CountEdge::Fell)
      std::cout << "  *** t+" << at << "s all clear: " << venue->name << " back to "
                << n.count << " ***\n";
  };
  // --- run the day ------------------------------------------------------------
  std::vector<db::SensorReading> readings;
  for (int t = 0; t < 240; ++t) {
    clock.advance(util::sec(1));
    if (t == 30) {
      // Rule goes live once the random spawn transient has dispersed into
      // the morning routine, like an operator arming it at shift start.
      const auto handle = service.subscribeDensity(rule);
      std::cout << "t+30s: standing rule armed — alarm when P(in " << venue->name
                << ") >= " << kMinProbability << " population crosses " << kLimit
                << " (currently " << handle.initialCount << ")\n";
    }
    if (t == 60) {
      std::cout << "t+60s: street festival announced on " << venue->name << "\n";
      // The stage sits at the plaza's heart: a shrunk event rect keeps the
      // crowd's gaussian goals central, where GPS-grade evidence still fuses
      // past the membership threshold.
      population.announceEvent(venue->rect.inflated(-12));
    }
    readings.clear();
    population.step(clock.now(), util::sec(1), readings);
    for (const db::SensorReading& reading : readings) service.ingest(reading);
    if (t % 30 == 29) {
      monitor.sweep();  // the periodic standing query
      std::cout << "t+" << (t + 1) << "s sweep: " << venue->name << " holds "
                << monitor.population(venue->name) << "\n";
    }
  }
  monitor.sweep();

  // --- flow report ------------------------------------------------------------
  std::cout << "\n" << monitor.report();
  std::cout << "\nVenue population now: " << monitor.population(venue->name) << " (limit "
            << kLimit << "), alarms=" << monitor.alarmCount()
            << " clears=" << monitor.clearCount() << " over " << monitor.sweepCount()
            << " sweeps, " << population.emitted() << " readings ingested\n";
  return 0;
}
