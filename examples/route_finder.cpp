// Route finding (§4.6.1: "The various relations between regions are useful
// for a number of applications such as route-finding applications").
//
// Uses every layer of the reasoning stack: RCC-8 to describe how regions
// relate, ECFP/ECRP/ECNP to classify shared walls, the Datalog engine for
// reachability, and the connectivity graph for concrete routes and
// path-distances — then guides a simulated person along the route.
#include <iostream>

#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/world.hpp"

int main() {
  using namespace mw;

  util::VirtualClock clock;
  sim::Blueprint building = sim::paperFloor();  // the paper's own Fig-8 floor
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  auto& svc = mw.locationService();
  svc.connectivity() = building.connectivity();

  std::cout << "floor: ";
  for (const auto& room : building.rooms) std::cout << room.name << " ";
  std::cout << "\n\n";

  // 1. Topological relations between the paper's rooms (RCC-8).
  std::cout << "# RCC-8 relations\n";
  const char* pairs[][2] = {{"CS/1/3105", "CS/1/NetLab"},
                            {"CS/1/NetLab", "CS/1/HCILab"},
                            {"CS/1/3105", "CS/1/LabCorridor"},
                            {"CS/1/3105", "CS/1"}};
  for (const auto& [a, b] : pairs) {
    std::cout << a << " vs " << b << ": " << reasoning::toString(svc.regionRelation(a, b))
              << "\n";
  }

  // 2. Wall classification: door, locked door, or plain wall?
  std::cout << "\n# EC refinement (doors vs walls)\n";
  const char* ecPairs[][2] = {{"CS/1/3105", "CS/1/LabCorridor"},
                              {"CS/1/NetLab", "CS/1/HCILab"},
                              {"CS/1/3105", "CS/1/NetLab"}};
  for (const auto& [a, b] : ecPairs) {
    std::cout << a << " <-> " << b << ": " << reasoning::toString(svc.passageRelation(a, b))
              << "\n";
  }

  // 3. Reachability through the Datalog layer.
  std::cout << "\n# reachability (Datalog over ECFP/ECRP facts)\n";
  std::cout << "3105 -> HCILab via free doors:   "
            << (svc.regionsReachable("CS/1/3105", "CS/1/HCILab") ? "yes" : "no") << "\n";
  std::cout << "3105 -> HCILab incl. locked:     "
            << (svc.regionsReachable("CS/1/3105", "CS/1/HCILab", true) ? "yes" : "no") << "\n";

  // 4. Concrete routes and distances.
  std::cout << "\n# routes (connectivity graph)\n";
  auto& graph = svc.connectivity();
  for (const auto& [from, to] : {std::pair{"3105", "HCILab"}, {"3105", "NetLab"}}) {
    auto route = graph.route(from, to);
    if (!route) {
      std::cout << from << " -> " << to << ": unreachable\n";
      continue;
    }
    std::cout << from << " -> " << to << " (" << route->length << " ft): ";
    for (std::size_t i = 0; i < route->regions.size(); ++i) {
      if (i) std::cout << " -> ";
      std::cout << route->regions[i];
    }
    std::cout << "\n";
    std::cout << "  vs Euclidean " << graph.euclideanDistance(from, to) << " ft\n";
  }

  // 5. Walk it: send a simulated person down the route and confirm arrival.
  sim::World world(building, 3);
  world.addPerson({util::MobileObjectId{"visitor"}, "3105", 5.0});
  world.sendTo(util::MobileObjectId{"visitor"}, "HCILab");
  int steps = 0;
  while (world.currentRoom(util::MobileObjectId{"visitor"}) != "HCILab" && steps < 600) {
    world.step(util::msec(500));
    ++steps;
  }
  std::cout << "\nvisitor walked 3105 -> HCILab in " << steps / 2 << " simulated seconds\n";
  return 0;
}
