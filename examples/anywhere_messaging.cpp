// Anywhere Instant Messaging (§8.2).
//
// "This application allows a user to receive instant messages from a
// designated list of 'buddies' on whichever display is closest to him. A
// user can customize the application by ... configuring the system to
// display private messages only if the location accuracy is 'high' and
// other users are not in the immediate vicinity!"
#include <iostream>
#include <string>
#include <vector>

#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace {

using namespace mw;
using util::MobileObjectId;

struct Message {
  std::string from;
  std::string to;
  std::string text;
  bool isPrivate = false;
};

class Messenger {
 public:
  Messenger(core::LocationService& svc, double privacyRadius)
      : svc_(svc), privacyRadius_(privacyRadius) {}

  void deliver(const Message& m, const std::vector<MobileObjectId>& everyone) {
    MobileObjectId to{m.to};
    auto est = svc_.locateObject(to);
    if (!est) {
      std::cout << "[im] " << m.to << " unlocatable; message queued\n";
      return;
    }
    auto display = svc_.nearestObjectOfType(to, db::ObjectType::Display);
    if (!display) {
      std::cout << "[im] no display near " << m.to << "; message queued\n";
      return;
    }
    if (m.isPrivate) {
      // Private policy: accuracy must be High/VeryHigh and no bystander may
      // be in the immediate vicinity.
      if (est->cls < fusion::ProbabilityClass::High) {
        std::cout << "[im] private message for " << m.to << " withheld: accuracy only '"
                  << fusion::toString(est->cls) << "'\n";
        return;
      }
      for (const auto& other : everyone) {
        if (other == to) continue;
        double nearby = svc_.proximity(to, other, privacyRadius_);
        if (nearby > 0.25) {
          std::cout << "[im] private message for " << m.to << " withheld: " << other
                    << " is nearby (p=" << nearby << ")\n";
          return;
        }
      }
    }
    std::cout << "[im] " << m.from << " -> " << m.to << " on " << display->id << ": \""
              << m.text << "\"" << (m.isPrivate ? " [private]" : "") << "\n";
  }

 private:
  core::LocationService& svc_;
  double privacyRadius_;
};

void installDisplay(db::SpatialDatabase& database, const char* id, geo::Point2 where) {
  db::SpatialObjectRow row;
  row.id = util::SpatialObjectId{id};
  row.globPrefix = database.frames().rootName();
  row.objectType = db::ObjectType::Display;
  row.geometryType = db::GeometryType::Point;
  row.points = {where};
  database.addObject(row);
}

}  // namespace

int main() {
  util::VirtualClock clock;
  sim::Blueprint building = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw(clock, building.universe, building.frames());
  building.populate(mw.database());
  mw.locationService().connectivity() = building.connectivity();
  auto& svc = mw.locationService();

  installDisplay(mw.database(), "display-101", building.centerOf("101"));
  installDisplay(mw.database(), "display-102", building.centerOf("102"));

  sim::World world(building, 33);
  std::vector<MobileObjectId> everyone{MobileObjectId{"ann"}, MobileObjectId{"raj"}};
  world.addPerson({MobileObjectId{"ann"}, "101", 4.0, /*carryTag=*/1.0});
  world.addPerson({MobileObjectId{"raj"}, "101", 4.0, /*carryTag=*/1.0});  // same room!

  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-main"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{building.universe, 0.5, 1.0, util::sec(5), ""});
  ubi->registerWith(mw.database());
  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  scenario.addAdapter(ubi, util::sec(1));
  scenario.run(util::sec(5));

  Messenger messenger(svc, /*privacyRadius=*/12.0);

  // A public message reaches ann on her nearest display even with raj around.
  messenger.deliver({"raj", "ann", "lunch at noon?", false}, everyone);
  // A private one is withheld while raj shares the room...
  messenger.deliver({"hr", "ann", "your raise was approved", true}, everyone);

  // ...but goes through after raj walks far away.
  world.sendTo(MobileObjectId{"raj"}, "154");
  scenario.run(util::sec(60));
  messenger.deliver({"hr", "ann", "your raise was approved", true}, everyone);
  return 0;
}
