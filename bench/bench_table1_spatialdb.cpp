// Table 1 / Fig 8 reproduction: the spatial table of the paper's floor,
// plus insert/query throughput of the spatial database that stores it.
#include <chrono>
#include <cstdio>
#include <sstream>

#include "sim/blueprint.hpp"
#include "spatialdb/database.hpp"
#include "spatialdb/snapshot.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace mw;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(Clock::now() -
                                                                               start)
      .count();
}

void printRow(const db::SpatialObjectRow& row) {
  std::ostringstream points;
  for (std::size_t i = 0; i < row.points.size(); ++i) {
    if (i) points << ", ";
    points << row.points[i];
  }
  std::printf("| %-12s | %-9s | %-8s | %-8s | %s\n", row.id.str().c_str(),
              row.globPrefix.c_str(), std::string(toString(row.objectType)).c_str(),
              std::string(toString(row.geometryType)).c_str(), points.str().c_str());
}

}  // namespace

int main() {
  util::VirtualClock clock;

  // --- the paper's own floor (Table 1 content) ---------------------------------
  std::printf("# Table 1: database table representing the floor (paper rows + inferred doors)\n");
  std::printf("| %-12s | %-9s | %-8s | %-8s | %s\n", "ObjectId", "GlobPref", "ObjType",
              "GeomType", "Points");
  sim::Blueprint floor = sim::paperFloor();
  db::SpatialDatabase paperDb(clock, floor.universe, floor.frames());
  floor.populate(paperDb);
  for (const auto& row : paperDb.query([](const db::SpatialObjectRow&) { return true; })) {
    printRow(row);
  }

  // --- throughput on a generated campus ----------------------------------------
  std::printf("\n# spatial database throughput (R-tree backed)\n");
  std::printf("%-12s %-12s %-16s %-18s %-18s\n", "floors", "objects", "insert_us/obj",
              "point_query_us", "range_query_us");
  for (int floors : {1, 4, 16, 64}) {
    sim::Blueprint bp =
        sim::generateBlueprint({.building = "SC", .floors = floors, .roomsPerSide = 8});
    db::SpatialDatabase database(clock, bp.universe, bp.frames());

    auto t0 = Clock::now();
    bp.populate(database);
    double insertUs = usSince(t0) / static_cast<double>(database.objectCount());

    util::Rng rng{1};
    constexpr int kQueries = 2000;
    t0 = Clock::now();
    std::size_t hits = 0;
    for (int i = 0; i < kQueries; ++i) {
      geo::Point2 p{rng.uniform(bp.universe.lo().x, bp.universe.hi().x),
                    rng.uniform(bp.universe.lo().y, bp.universe.hi().y)};
      hits += database.objectsContaining(p).size();
    }
    double pointUs = usSince(t0) / kQueries;

    t0 = Clock::now();
    for (int i = 0; i < kQueries; ++i) {
      geo::Point2 p{rng.uniform(bp.universe.lo().x, bp.universe.hi().x),
                    rng.uniform(bp.universe.lo().y, bp.universe.hi().y)};
      hits += database.objectsIntersecting(geo::Rect::centeredSquare(p, 10)).size();
    }
    double rangeUs = usSince(t0) / kQueries;

    std::printf("%-12d %-12zu %-16.2f %-18.2f %-18.2f\n", floors, database.objectCount(),
                insertUs, pointUs, rangeUs);
    (void)hits;
  }

  // --- snapshot persistence -------------------------------------------------------
  std::printf("\n# snapshot save/restore (world model only)\n");
  std::printf("%-12s %-14s %-16s %-16s\n", "floors", "bytes", "snapshot_us", "restore_us");
  for (int floors : {1, 16, 64}) {
    sim::Blueprint bp = sim::generateBlueprint({.building = "SC", .floors = floors,
                                                .roomsPerSide = 8});
    db::SpatialDatabase database(clock, bp.universe, bp.frames());
    bp.populate(database);
    auto t0 = Clock::now();
    util::Bytes snap = db::snapshotDatabase(database);
    double snapUs = usSince(t0);
    t0 = Clock::now();
    db::SpatialDatabase restored = db::restoreDatabase(clock, snap);
    double restoreUs = usSince(t0);
    std::printf("%-12d %-14zu %-16.1f %-16.1f\n", floors, snap.size(), snapUs, restoreUs);
  }

  // --- SQL-style property query (§5.1 example) -----------------------------------
  std::printf("\n# '%s'\n", "Where is the nearest region that has power outlets?");
  sim::Blueprint bp = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  db::SpatialDatabase database(clock, bp.universe, bp.frames());
  bp.populate(database);
  db::SpatialObjectRow outlet;
  outlet.id = util::SpatialObjectId{"outlet-103"};
  outlet.globPrefix = "SC";
  outlet.objectType = db::ObjectType::PowerOutlet;
  outlet.geometryType = db::GeometryType::Point;
  outlet.points = {bp.centerOf("103")};
  outlet.properties["voltage"] = "120";
  database.addObject(outlet);
  auto nearest = database.nearest(bp.centerOf("101"), [](const db::SpatialObjectRow& row) {
    return row.objectType == db::ObjectType::PowerOutlet;
  });
  if (nearest) {
    std::printf("nearest outlet to 101's center: %s at %s\n", nearest->fullGlob().c_str(),
                nearest->properties.count("voltage") ? "120V" : "?");
  }
  return 0;
}
