// Figure 9 reproduction: trigger response time.
//
// "Figure 9 shows the time taken for a trigger to be notified by
// MiddleWhere. The graph shows the trigger response times for 10 different
// updates to the location service. The various curves indicate the number
// of trigger notifications programmed into the location service. We
// expected the response time to increase with the number of programmed
// triggers but we found that the response time was almost independent of
// it. ... the first update requires a higher trigger response time than
// subsequent updates. This is due to the initial setup time."
//
// Setup mirrors the paper's: the Location Service runs behind the MicroOrb
// over TCP loopback (their Orbacus/CORBA); an adapter client pushes a
// location update; the response time is measured from the ingest call to
// the arrival of the notification event at a subscribed application client.
// N "programmed triggers" = N-1 region subscriptions the update does not
// satisfy plus 1 on the target region.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"

using namespace mw;
using Clock = std::chrono::steady_clock;

namespace {

struct Waiter {
  std::mutex m;
  std::condition_variable cv;
  int seen = 0;
  void notify() {
    {
      std::lock_guard lock(m);
      ++seen;
    }
    cv.notify_all();
  }
  void await(int target) {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return seen >= target; });
  }
};

}  // namespace

int main() {
  std::printf("# Figure 9: trigger response time per location update\n");
  std::printf("# stack: adapter -> TCP MicroOrb -> spatial DB -> fusion -> trigger -> TCP event\n");
  std::printf("%-18s %-8s %s\n", "triggers", "update", "response_us");

  util::SystemClock clock;
  const std::vector<int> triggerCounts{1, 10, 100, 1000, 10000};
  constexpr int kUpdates = 10;

  std::vector<std::vector<double>> series;
  for (int triggers : triggerCounts) {
    // Fresh stack per curve, so update #1 pays the paper's setup cost
    // (first-call marshalling paths, lattice/page warm-up).
    sim::Blueprint building =
        sim::generateBlueprint({.building = "SC", .floors = 1, .roomsPerSide = 8});
    core::Middlewhere mw(clock, building.universe, building.frames());
    building.populate(mw.database());

    db::SensorMeta ubi;
    ubi.sensorId = util::SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = util::sec(30);
    mw.database().registerSensor(ubi);

    std::uint16_t port = mw.listen();
    auto appClient = core::Middlewhere::connectRemote("127.0.0.1", port);
    auto adapterClient = core::Middlewhere::connectRemote("127.0.0.1", port);

    Waiter waiter;
    const geo::Rect target = building.roomNamed("101")->rect;
    // The live trigger: fires on every update into room 101.
    appClient->subscribe(target, std::nullopt, 0.1,
                         [&](const core::Notification&) { waiter.notify(); });
    // The other programmed triggers watch far-away slivers the update never
    // touches (the paper scales the number of *programmed* triggers, not the
    // number that fire).
    for (int t = 1; t < triggers; ++t) {
      double x = building.universe.hi().x - 1.0 - 0.001 * t;
      appClient->subscribe(geo::Rect::fromOrigin({x, 60.0}, 0.5, 0.5), std::nullopt, 0.99,
                           [](const core::Notification&) {});
    }

    std::vector<double> responses;
    for (int update = 1; update <= kUpdates; ++update) {
      db::SensorReading r;
      r.sensorId = util::SensorId{"ubi-1"};
      r.sensorType = "Ubisense";
      r.mobileObjectId = util::MobileObjectId{"alice"};
      r.location = target.center() + geo::Point2{0.01 * update, 0};
      r.detectionRadius = 0.5;
      r.detectionTime = clock.now();

      auto start = Clock::now();
      adapterClient->ingest(r);
      waiter.await(update);
      auto us = std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                    Clock::now() - start)
                    .count();
      responses.push_back(us);
      std::printf("%-18d %-8d %.1f\n", triggers, update, us);
    }
    series.push_back(responses);
  }

  // Shape summary: independence from trigger count and first-update spike.
  std::printf("\n# summary (mean of updates 2..10, us)\n");
  std::printf("%-18s %-14s %-14s\n", "triggers", "first_update", "steady_mean");
  for (std::size_t i = 0; i < series.size(); ++i) {
    double steady = 0;
    for (int u = 1; u < kUpdates; ++u) steady += series[i][static_cast<std::size_t>(u)];
    steady /= (kUpdates - 1);
    std::printf("%-18d %-14.1f %-14.1f\n", triggerCounts[i], series[i][0], steady);
  }

  // Beyond the paper: trigger response under sharded batch ingest. 64 people
  // report at once through ingestBatch; the live trigger watches one of them.
  // Response time = ingestBatch call to notification arrival, in-process (no
  // ORB hop) so the number isolates the fusion/trigger path.
  std::printf("\n# batch ingest: 64 people x 2 readings, trigger on 1 region\n");
  std::printf("%-8s %-8s %s\n", "shards", "update", "batch_us");
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    sim::Blueprint building =
        sim::generateBlueprint({.building = "SC", .floors = 1, .roomsPerSide = 8});
    core::Middlewhere mw(clock, building.universe, building.frames());
    building.populate(mw.database());

    db::SensorMeta ubi;
    ubi.sensorId = util::SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = util::sec(30);
    mw.database().registerSensor(ubi);
    db::SensorMeta ubi2 = ubi;
    ubi2.sensorId = util::SensorId{"ubi-2"};
    mw.database().registerSensor(ubi2);

    core::LocationService& service = mw.locationService();
    service.setIngestShards(shards);

    Waiter waiter;
    const geo::Rect target = building.roomNamed("101")->rect;
    service.subscribe({target, util::MobileObjectId{"p0"}, 0.1, std::nullopt, false,
                       [&](const core::Notification&) { waiter.notify(); }});

    for (int update = 1; update <= kUpdates; ++update) {
      std::vector<db::SensorReading> batch;
      for (int p = 0; p < 64; ++p) {
        geo::Point2 where = p == 0 ? target.center()
                                   : geo::Point2{1.0 + (p % 30) * 2.0, 1.0 + (p / 30) * 2.0};
        for (int s = 1; s <= 2; ++s) {
          db::SensorReading r;
          r.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
          r.sensorType = "Ubisense";
          r.mobileObjectId = util::MobileObjectId{"p" + std::to_string(p)};
          r.location = where + geo::Point2{0.01 * update, 0.005 * s};
          r.detectionRadius = 0.5;
          r.detectionTime = clock.now();
          batch.push_back(std::move(r));
        }
      }
      auto start = Clock::now();
      service.ingestBatch(batch);
      waiter.await(update);
      auto us = std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                    Clock::now() - start)
                    .count();
      std::printf("%-8zu %-8d %.1f\n", shards, update, us);
    }
  }
  return 0;
}
