// Rectangle-lattice construction scaling (Figs 5-6): cost of building the
// containment lattice, of the intersection closure, and of edge refresh.
#include <benchmark/benchmark.h>

#include "core/region_lattice.hpp"
#include "lattice/rect_lattice.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {
const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 500, 100);

std::vector<geo::Rect> clusteredRects(int n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<geo::Rect> rects;
  for (int i = 0; i < n; ++i) {
    double r = rng.uniform(0.5, 10.0);
    rects.push_back(geo::Rect::centeredSquare(
        {100 + rng.uniform(-6, 6), 50 + rng.uniform(-6, 6)}, r));
  }
  return rects;
}

std::vector<geo::Rect> scatteredRects(int n, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<geo::Rect> rects;
  for (int i = 0; i < n; ++i) {
    rects.push_back(geo::Rect::centeredSquare(
        {rng.uniform(20, 480), rng.uniform(10, 90)}, rng.uniform(0.5, 8.0)));
  }
  return rects;
}
}  // namespace

static void BM_LatticeBuildClustered(benchmark::State& state) {
  auto rects = clusteredRects(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    lattice::RectLattice lat(kUniverse);
    for (std::size_t i = 0; i < rects.size(); ++i) lat.insert(rects[i], std::to_string(i));
    benchmark::DoNotOptimize(lat.size());
  }
}
BENCHMARK(BM_LatticeBuildClustered)->RangeMultiplier(2)->Range(1, 16);

static void BM_LatticeBuildScattered(benchmark::State& state) {
  auto rects = scatteredRects(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    lattice::RectLattice lat(kUniverse);
    for (std::size_t i = 0; i < rects.size(); ++i) lat.insert(rects[i], std::to_string(i));
    benchmark::DoNotOptimize(lat.size());
  }
}
BENCHMARK(BM_LatticeBuildScattered)->RangeMultiplier(2)->Range(1, 64);

static void BM_LatticeEdgeRefresh(benchmark::State& state) {
  auto rects = clusteredRects(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    state.PauseTiming();
    lattice::RectLattice lat(kUniverse);
    for (std::size_t i = 0; i < rects.size(); ++i) lat.insert(rects[i], std::to_string(i));
    state.ResumeTiming();
    lat.refreshEdges();
    benchmark::DoNotOptimize(lat.bottomParents());
  }
}
BENCHMARK(BM_LatticeEdgeRefresh)->RangeMultiplier(2)->Range(2, 16);

static void BM_LatticeBottomParents(benchmark::State& state) {
  auto rects = clusteredRects(static_cast<int>(state.range(0)), 42);
  lattice::RectLattice lat(kUniverse);
  for (std::size_t i = 0; i < rects.size(); ++i) lat.insert(rects[i], std::to_string(i));
  lat.refreshEdges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat.bottomParents());
  }
}
BENCHMARK(BM_LatticeBottomParents)->Arg(4)->Arg(8)->Arg(16);

// --- symbolic-region lattice (§4.5) --------------------------------------------

static void BM_SymbolicLatticeBuild(benchmark::State& state) {
  sim::Blueprint bp = sim::generateBlueprint(
      {.floors = static_cast<int>(state.range(0)), .roomsPerSide = 8});
  for (auto _ : state) {
    core::RegionLattice lat;
    for (const auto& room : bp.rooms) lat.add(room.name, room.rect);
    for (std::size_t f = 0; f < bp.floorOutlines.size(); ++f) {
      lat.add("floor-" + std::to_string(f), bp.floorOutlines[f]);
    }
    lat.refreshEdges();
    benchmark::DoNotOptimize(lat.size());
  }
  state.SetLabel(std::to_string(bp.rooms.size() + bp.floorOutlines.size()) + " regions");
}
BENCHMARK(BM_SymbolicLatticeBuild)->Arg(1)->Arg(4)->Arg(16);

static void BM_SymbolicLatticeChainAt(benchmark::State& state) {
  sim::Blueprint bp = sim::generateBlueprint({.floors = 8, .roomsPerSide = 8});
  core::RegionLattice lat;
  for (const auto& room : bp.rooms) lat.add(room.name, room.rect);
  for (std::size_t f = 0; f < bp.floorOutlines.size(); ++f) {
    lat.add("floor-" + std::to_string(f), bp.floorOutlines[f]);
  }
  lat.refreshEdges();
  geo::Point2 inside = bp.roomNamed("101")->rect.center();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lat.chainAt(inside));
  }
}
BENCHMARK(BM_SymbolicLatticeChainAt);
