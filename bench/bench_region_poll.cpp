// Region polling ("who is in this region?") against the region population
// cache: a steady-state poll where 1 of N tracked people moved between polls
// must cost O(changed objects) — one re-fusion plus N cheap epoch checks —
// not O(N) re-fusions. BM_RegionPollCached vs BM_RegionPollUncached is the
// cache's speedup; the label carries the measured re-fusions per poll so the
// O(changed) claim is visible in the numbers, not just the wall clock.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/location_service.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

constexpr int kSensorsPerPerson = 2;

struct Fixture {
  util::VirtualClock clock;
  sim::Blueprint bp;
  std::unique_ptr<db::SpatialDatabase> database;
  std::unique_ptr<core::LocationService> service;
  geo::Rect region;

  explicit Fixture(int people) : bp(sim::generateBlueprint({.floors = 2, .roomsPerSide = 8})) {
    database = std::make_unique<db::SpatialDatabase>(clock, bp.universe, bp.frames());
    bp.populate(*database);
    service = std::make_unique<core::LocationService>(clock, *database);
    service->connectivity() = bp.connectivity();
    region = bp.universe;  // every tracked person is a member

    util::Rng rng{99};
    for (int s = 0; s < kSensorsPerPerson; ++s) {
      db::SensorMeta meta;
      meta.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
      meta.sensorType = "Ubisense";
      meta.errorSpec = quality::ubisenseSpec(1.0);
      meta.scaleMisidentifyByArea = true;
      meta.quality.ttl = util::minutes(10);
      database->registerSensor(meta);
    }
    for (int p = 0; p < people; ++p) {
      geo::Point2 where{rng.uniform(10, bp.universe.hi().x - 10),
                       rng.uniform(10, bp.universe.hi().y - 10)};
      move(p, where);
    }
  }

  void move(int person, geo::Point2 where) {
    for (int s = 0; s < kSensorsPerPerson; ++s) {
      db::SensorReading r;
      r.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
      r.sensorType = "Ubisense";
      r.mobileObjectId = util::MobileObjectId{"p" + std::to_string(person)};
      r.location = where;
      r.detectionRadius = 0.5 + s;
      r.detectionTime = clock.now();
      service->ingest(r);
    }
  }
};

}  // namespace

// Steady-state poll: person p0 moves between polls, everyone else is
// unchanged. The cached poll revalidates N member epochs and re-fuses only
// p0 — the per-poll fusion count in the label must stay at 1 regardless of N.
static void BM_RegionPollCached(benchmark::State& state) {
  const int people = static_cast<int>(state.range(0));
  Fixture f(people);
  (void)f.service->objectsInRegion(f.region, 0.2);  // warm both cache levels
  f.service->resetRegionCacheCounters();
  f.service->resetFusionCacheCounters();
  double x = 11.0;
  for (auto _ : state) {
    f.move(0, {x, 12.0});
    x = x < 40.0 ? x + 1.0 : 11.0;
    benchmark::DoNotOptimize(f.service->objectsInRegion(f.region, 0.2));
  }
  const double polls = static_cast<double>(state.iterations());
  const double refusedPerPoll =
      static_cast<double>(f.service->regionCacheRevalidations()) / polls;
  state.counters["refused_per_poll"] = refusedPerPoll;
  state.counters["hit_rate"] =
      static_cast<double>(f.service->regionCacheHits()) / polls;
  state.SetLabel(std::to_string(people) + " people, 1 moved (cached)");
}
BENCHMARK(BM_RegionPollCached)->Arg(16)->Arg(64)->Arg(256);

// The same poll with both cache levels flushed every iteration: candidate
// discovery plus N full fusions per poll. Cached/uncached at the same N is
// the region cache's speedup; its growth with N is the O(N) vs O(changed)
// separation.
static void BM_RegionPollUncached(benchmark::State& state) {
  const int people = static_cast<int>(state.range(0));
  Fixture f(people);
  double x = 11.0;
  for (auto _ : state) {
    f.move(0, {x, 12.0});
    x = x < 40.0 ? x + 1.0 : 11.0;
    f.service->invalidateFusionCache();  // flushes the region cache too
    benchmark::DoNotOptimize(f.service->objectsInRegion(f.region, 0.2));
  }
  state.SetLabel(std::to_string(people) + " people, 1 moved (uncached)");
}
BENCHMARK(BM_RegionPollUncached)->Arg(16)->Arg(64)->Arg(256);

// Pure repoll with nothing changed at all: the floor of the cached path —
// one catalog read, one R-tree pass, N epoch checks, zero fusions.
static void BM_RegionPollQuiescent(benchmark::State& state) {
  const int people = static_cast<int>(state.range(0));
  Fixture f(people);
  (void)f.service->objectsInRegion(f.region, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->objectsInRegion(f.region, 0.2));
  }
  state.SetLabel(std::to_string(people) + " people, unchanged");
}
BENCHMARK(BM_RegionPollQuiescent)->Arg(16)->Arg(64)->Arg(256);
