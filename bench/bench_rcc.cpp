// §4.6.1: "Evaluating the relation between 2 regions is just O(1) given the
// vertices of the two regions." This bench confirms constant per-pair cost
// regardless of how many regions exist, and measures the EC refinement and
// Datalog reachability saturation on top.
#include <benchmark/benchmark.h>

#include <cmath>

#include "reasoning/passages.hpp"
#include "reasoning/rcc8.hpp"
#include "reasoning/spatial_rules.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

static void BM_Rcc8PairEvaluation(benchmark::State& state) {
  // The number of OTHER regions present must not matter: rcc8 is pairwise.
  util::Rng rng{11};
  std::vector<geo::Rect> rects;
  for (int i = 0; i < state.range(0); ++i) {
    rects.push_back(geo::Rect::fromOrigin({rng.uniform(0, 480), rng.uniform(0, 80)},
                                          rng.uniform(1, 20), rng.uniform(1, 20)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const geo::Rect& a = rects[i % rects.size()];
    const geo::Rect& b = rects[(i * 7 + 1) % rects.size()];
    benchmark::DoNotOptimize(reasoning::rcc8(a, b));
    ++i;
  }
}
BENCHMARK(BM_Rcc8PairEvaluation)->Arg(8)->Arg(64)->Arg(512);

static void BM_Rcc8PolygonEvaluation(benchmark::State& state) {
  // Exact-outline RCC-8 (cf. §5.1's two-phase MBR-then-exact processing):
  // cost grows with vertex count, versus the O(1) rectangle path.
  int vertices = static_cast<int>(state.range(0));
  auto ring = [&](geo::Point2 c, double r) {
    std::vector<geo::Point2> pts;
    for (int i = 0; i < vertices; ++i) {
      double a = 2 * 3.14159265358979 * i / vertices;
      pts.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
    }
    return geo::Polygon{std::move(pts)};
  };
  geo::Polygon a = ring({0, 0}, 10);
  geo::Polygon b = ring({8, 0}, 10);  // partial overlap
  for (auto _ : state) {
    benchmark::DoNotOptimize(reasoning::rcc8(a, b));
  }
}
BENCHMARK(BM_Rcc8PolygonEvaluation)->Arg(4)->Arg(16)->Arg(64);

static void BM_EcClassification(benchmark::State& state) {
  // Cost of ECFP/ECRP/ECNP classification grows with the passage count only.
  geo::Rect a = geo::Rect::fromOrigin({0, 0}, 10, 10);
  geo::Rect b = geo::Rect::fromOrigin({10, 0}, 10, 10);
  std::vector<reasoning::Passage> passages;
  util::Rng rng{5};
  for (int i = 0; i < state.range(0); ++i) {
    double y = rng.uniform(0, 100);
    passages.push_back({"d" + std::to_string(i), {{200, y}, {200, y + 2}},
                        reasoning::PassageKind::Free});
  }
  passages.push_back({"real", {{10, 4}, {10, 6}}, reasoning::PassageKind::Free});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reasoning::classifyEc(a, b, passages));
  }
}
BENCHMARK(BM_EcClassification)->Arg(1)->Arg(16)->Arg(128);

static void BM_SpatialFactAssertion(benchmark::State& state) {
  // Asserting all pairwise RCC-8 facts for a building: O(n^2) pairs.
  sim::Blueprint bp = sim::generateBlueprint(
      {.floors = static_cast<int>(state.range(0)), .roomsPerSide = 4});
  std::vector<reasoning::NamedRegion> regions;
  for (const auto& room : bp.rooms) regions.push_back({room.name, room.rect});
  for (auto _ : state) {
    reasoning::Datalog db;
    reasoning::assertSpatialFacts(db, regions, bp.doors);
    benchmark::DoNotOptimize(db.factCount());
  }
}
BENCHMARK(BM_SpatialFactAssertion)->Arg(1)->Arg(2)->Arg(4);

static void BM_ReachabilitySaturation(benchmark::State& state) {
  // Datalog transitive closure over the building's free-passage graph.
  sim::Blueprint bp = sim::generateBlueprint(
      {.floors = static_cast<int>(state.range(0)), .roomsPerSide = 4});
  std::vector<reasoning::NamedRegion> regions;
  for (const auto& room : bp.rooms) regions.push_back({room.name, room.rect});
  for (auto _ : state) {
    reasoning::Datalog db;
    reasoning::assertSpatialFacts(db, regions, bp.doors);
    reasoning::installReachabilityRules(db);
    db.saturate();
    benchmark::DoNotOptimize(db.factCount());
  }
}
BENCHMARK(BM_ReachabilitySaturation)->Arg(1)->Arg(2);
