// Ablation: what does fusion buy, and what does a learned movement prior
// buy? (DESIGN.md "ablation benches for the design choices".)
//
// Part 1 — technology ablation: track a walking person with Ubisense only
// (covering half the building), RFID only, and both fused; report room-level
// accuracy and mean position error against simulated ground truth. Fusion
// should match the best room accuracy while beating every single technology
// on position error (UWB precision where covered, RFID coverage elsewhere).
//
// Part 2 — prior ablation (§4.1.2 movement patterns / §11): with only a
// coarse RFID fix covering several rooms, infer the room by arg-max of the
// per-room probability, under the uniform prior versus a dwell prior
// learned from the person's history. The learned prior should win for a
// person with strong habits.
#include <cstdio>
#include <map>
#include <memory>

#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "fusion/prior.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

using namespace mw;
using util::MobileObjectId;

namespace {

struct Tally {
  int trials = 0;
  int roomHits = 0;
  double errorSum = 0;
  void record(bool hit, double error) {
    ++trials;
    if (hit) ++roomHits;
    errorSum += error;
  }
  [[nodiscard]] double accuracy() const { return trials ? 100.0 * roomHits / trials : 0; }
  [[nodiscard]] double meanError() const { return trials ? errorSum / trials : 0; }
};

fusion::FusionInputs filterByType(const core::LocationService& svc,
                                  const db::SpatialDatabase& database,
                                  const MobileObjectId& who, const std::string& type) {
  fusion::FusionInputs out;
  for (auto& in : svc.fusionInputsFor(who)) {
    auto meta = database.sensorMeta(in.sensorId);
    if (meta && (type.empty() || meta->sensorType == type)) out.push_back(in);
  }
  return out;
}

}  // namespace

int main() {
  // --- Part 1: technology ablation ---------------------------------------------
  util::VirtualClock clock;
  sim::Blueprint bp = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw(clock, bp.universe, bp.frames());
  bp.populate(mw.database());
  mw.locationService().connectivity() = bp.connectivity();
  auto& svc = mw.locationService();
  sim::World world(bp, 2026);
  world.addPerson({MobileObjectId{"walker"}, "101", 4.0, 1.0, 1.0, 0.0});

  sim::Scenario scenario(clock, world, [&](const db::SensorReading& r) { svc.ingest(r); });
  // Ubisense covers only the WEST half of the building (§1: "different
  // location sensing technologies ... deployed in different environments");
  // in the east, only RFID sees the walker — fusion must degrade gracefully.
  geo::Rect westHalf = geo::Rect::fromCorners(
      bp.universe.lo(), {bp.universe.center().x, bp.universe.hi().y});
  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{westHalf, 0.5, 1.0, util::sec(5), ""});
  ubi->registerWith(mw.database());
  scenario.addAdapter(ubi, util::sec(1));
  // An RFID base station in every room.
  int rfIndex = 0;
  for (const auto* room : bp.properRooms()) {
    auto rf = std::make_shared<adapters::RfidBadgeAdapter>(
        util::AdapterId{"rf-" + room->name}, util::SensorId{"rf-" + std::to_string(rfIndex++)},
        adapters::RfidConfig{room->rect.center(), 15.0, 1.0, util::sec(20), ""});
    rf->registerWith(mw.database());
    scenario.addAdapter(rf, util::sec(2));
  }

  std::map<std::string, Tally> tallies;
  for (int step = 0; step < 300; ++step) {
    scenario.run(util::sec(2));
    auto truePos = *world.position(MobileObjectId{"walker"});
    auto trueRoom = world.currentRoom(MobileObjectId{"walker"});
    if (!trueRoom) continue;
    geo::Rect trueRect = bp.roomNamed(*trueRoom)->rect;
    for (const char* tech : {"Ubisense", "RF", ""}) {
      auto inputs = filterByType(svc, mw.database(), MobileObjectId{"walker"}, tech);
      auto est = svc.engine().infer(inputs);
      const char* label = *tech ? tech : "fused";
      if (!est) {
        tallies[label].record(false, 50.0);  // unlocatable: charge a large error
        continue;
      }
      bool hit = trueRect.contains(est->region.center());
      tallies[label].record(hit, geo::distance(est->region.center(), truePos));
    }
  }
  std::printf("# Part 1: technology ablation (300 checks over a 10-minute walk)\n");
  std::printf("%-12s %-16s %-16s\n", "inputs", "room_accuracy_%", "mean_error_ft");
  for (const char* label : {"Ubisense", "RF", "fused"}) {
    std::printf("%-12s %-16.1f %-16.2f\n", label, tallies[label].accuracy(),
                tallies[label].meanError());
  }

  // --- Part 2: prior ablation -----------------------------------------------------
  // A creature of habit: lives in 103, visits 102, never elsewhere. The only
  // sensor is one coarse RFID base whose area of interest spans several
  // rooms.
  util::VirtualClock clock2;
  sim::Blueprint bp2 = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
  core::Middlewhere mw2(clock2, bp2.universe, bp2.frames());
  bp2.populate(mw2.database());
  auto& svc2 = mw2.locationService();
  sim::World world2(bp2, 7);
  world2.addPerson({MobileObjectId{"habit"}, "103", 4.0, 0.0, 1.0, 0.0});

  sim::Scenario scenario2(clock2, world2,
                          [&](const db::SensorReading& r) { svc2.ingest(r); });
  // The base station sits slightly inside room 102, so the area-overlap
  // (uniform-prior) argmax prefers 102 — but the person's habit is 103.
  auto corridorRf = std::make_shared<adapters::RfidBadgeAdapter>(
      util::AdapterId{"rf-corridor"}, util::SensorId{"rf-corridor"},
      adapters::RfidConfig{{38, 14}, 30.0, 1.0, util::sec(20), ""});
  corridorRf->registerWith(mw2.database());
  scenario2.addAdapter(corridorRf, util::sec(2));

  // Phase A: learn the dwell prior from ground truth (the §11 user study).
  auto prior = svc2.makeDwellPrior(1.0);
  util::Rng hops{99};
  for (int i = 0; i < 40; ++i) {
    world2.sendTo(MobileObjectId{"habit"}, hops.chance(0.7) ? "103" : "102");
    for (int t = 0; t < 30; ++t) {
      scenario2.run(util::sec(2));
      prior->observe(*world2.position(MobileObjectId{"habit"}), util::sec(2));
    }
  }

  // Phase B: evaluate room inference by per-room probability arg-max.
  auto argmaxRoom = [&](bool learned) -> std::string {
    std::string best;
    double bestP = -1;
    auto inputs = svc2.fusionInputsFor(MobileObjectId{"habit"});
    for (const auto* room : bp2.properRooms()) {
      double p = learned ? fusion::regionProbabilityWithPrior(room->rect, inputs,
                                                              bp2.universe, *prior)
                         : fusion::regionProbability(room->rect, inputs, bp2.universe);
      if (p > bestP) {
        bestP = p;
        best = room->name;
      }
    }
    return best;
  };
  Tally uniformTally, learnedTally;
  for (int i = 0; i < 40; ++i) {
    world2.sendTo(MobileObjectId{"habit"}, hops.chance(0.7) ? "103" : "102");
    for (int t = 0; t < 15; ++t) scenario2.run(util::sec(2));
    auto trueRoom = world2.currentRoom(MobileObjectId{"habit"});
    if (!trueRoom) continue;
    uniformTally.record(argmaxRoom(false) == *trueRoom, 0);
    learnedTally.record(argmaxRoom(true) == *trueRoom, 0);
  }
  std::printf("\n# Part 2: prior ablation (coarse RFID only, habitual person)\n");
  std::printf("%-16s %-16s\n", "prior", "room_accuracy_%");
  std::printf("%-16s %-16.1f\n", "uniform", uniformTally.accuracy());
  std::printf("%-16s %-16.1f\n", "learned-dwell", learnedTally.accuracy());

  // --- Part 3: sampling-period ablation (Â§3.2 freshness) -------------------------
  // The slower the sensor reports, the staler its last reading when queried:
  // position error grows with the sampling period and the person's speed,
  // and past the TTL the subject is lost outright.
  std::printf("\n# Part 3: Ubisense sampling period vs tracking error (TTL 8 s, 4 ft/s walker)\n");
  std::printf("%-14s %-16s %-16s\n", "period_s", "mean_error_ft", "unlocatable_%");
  for (int periodS : {1, 2, 4, 6, 10}) {
    util::VirtualClock clock3;
    sim::Blueprint bp3 = sim::generateBlueprint({.building = "SC", .roomsPerSide = 4});
    core::Middlewhere mw3(clock3, bp3.universe, bp3.frames());
    bp3.populate(mw3.database());
    auto& svc3 = mw3.locationService();
    sim::World world3(bp3, 31337);
    world3.addPerson({MobileObjectId{"runner"}, "101", 4.0, 1.0, 0.0, 0.0});
    sim::Scenario scenario3(clock3, world3,
                            [&](const db::SensorReading& r) { svc3.ingest(r); });
    auto ubi3 = std::make_shared<adapters::UbisenseAdapter>(
        util::AdapterId{"ubi"}, util::SensorId{"ubi-1"},
        adapters::UbisenseConfig{bp3.universe, 0.5, 1.0, util::sec(8), ""});
    ubi3->registerWith(mw3.database());
    scenario3.addAdapter(ubi3, util::sec(periodS));

    double errorSum = 0;
    int located = 0, lost = 0;
    for (int step = 0; step < 200; ++step) {
      scenario3.run(util::sec(1));
      auto est = svc3.locateObject(MobileObjectId{"runner"});
      if (!est) {
        ++lost;
        continue;
      }
      ++located;
      errorSum +=
          geo::distance(est->region.center(), *world3.position(MobileObjectId{"runner"}));
    }
    std::printf("%-14d %-16.2f %-16.1f\n", periodS, located ? errorSum / located : 0.0,
                100.0 * lost / (located + lost));
  }
  return 0;
}
