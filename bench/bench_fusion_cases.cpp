// Reproduction of the fusion worked examples: Eqs 4-6 and the three
// two-sensor cases of §4.1.2 (Figs 2-4), plus the measured divergence of
// the paper's printed Eq. 7 from its own Eq. 4 derivation (see
// EXPERIMENTS.md fidelity note).
#include <cstdio>

#include "fusion/engine.hpp"

using namespace mw;
using fusion::FusionInput;
using fusion::FusionInputs;

namespace {
const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 500, 100);  // a building floor

FusionInput in(const char* id, geo::Rect r, double p, double q, bool moving = false) {
  return FusionInput{util::SensorId{id}, r, p, q, moving};
}
}  // namespace

int main() {
  fusion::FusionEngine engine(kUniverse);

  // --- Case 1 (Fig 2, Eq 4/5): rectangle A contained in B ----------------------
  std::printf("# Case 1: A (Ubisense, 1x1) inside B (RFID, 30x30); reinforcement\n");
  std::printf("%-8s %-12s %-16s %-16s %-12s\n", "p1", "P(B|s2)", "P(B|s1,s2)", "eq4_closed",
              "eq7_verbatim");
  geo::Rect b = geo::Rect::fromOrigin({100, 30}, 30, 30);
  geo::Rect a = geo::Rect::fromOrigin({110, 40}, 1, 1);
  FusionInput s2 = in("rfid", b, 0.75, 0.25 * b.area() / kUniverse.area());
  for (double p1 : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    FusionInput s1 = in("ubi", a, p1, 0.05 * a.area() / kUniverse.area());
    double single = fusion::regionProbability(b, {s2}, kUniverse);
    double both = fusion::regionProbability(b, {s1, s2}, kUniverse);
    double eq4 = fusion::containedPairProbability(s1.p, s1.q, a.area(), s2.p, s2.q, b.area(),
                                                  kUniverse.area());
    double verbatim = fusion::regionProbabilityPaperEq7(b, {s1, s2}, kUniverse);
    std::printf("%-8.2f %-12.4f %-16.4f %-16.4f %-12.4f\n", p1, single, both, eq4, verbatim);
  }

  // --- Case 2 (Fig 3, Eq 6): intersecting rectangles ----------------------------
  std::printf("\n# Case 2: A and B intersect; probability mass concentrates in C = A n B\n");
  std::printf("%-10s %-10s %-10s %-10s\n", "overlap", "P(C)", "P(A)", "P(B)");
  for (double shift : {2.0, 5.0, 8.0}) {
    geo::Rect ra = geo::Rect::fromOrigin({100, 40}, 10, 10);
    geo::Rect rb = geo::Rect::fromOrigin({100 + shift, 40}, 10, 10);
    FusionInputs ins{in("s1", ra, 0.9, 0.001), in("s2", rb, 0.9, 0.001)};
    geo::Rect c = *ra.intersection(rb);
    std::printf("%-10.0f %-10.4f %-10.4f %-10.4f\n", c.area(),
                fusion::regionProbability(c, ins, kUniverse),
                fusion::regionProbability(ra, ins, kUniverse),
                fusion::regionProbability(rb, ins, kUniverse));
  }

  // --- Case 3 (Fig 4): disjoint rectangles = conflict ---------------------------
  std::printf("\n# Case 3: disjoint readings; conflict resolution (rule 1 then rule 2)\n");
  std::printf("%-28s %-14s %-12s\n", "scenario", "winner", "discarded");
  struct Scenario {
    const char* name;
    FusionInputs inputs;
  };
  Scenario scenarios[] = {
      {"moving badge vs parked tag",
       {in("badge", geo::Rect::fromOrigin({50, 40}, 5, 5), 0.7, 0.001, true),
        in("tag", geo::Rect::fromOrigin({300, 40}, 5, 5), 0.95, 0.001, false)}},
      {"both parked, strong vs weak",
       {in("strong", geo::Rect::fromOrigin({50, 40}, 5, 5), 0.99, 0.0001),
        in("weak", geo::Rect::fromOrigin({300, 40}, 5, 5), 0.6, 0.01)}},
      {"3-way conflict",
       {in("a", geo::Rect::fromOrigin({50, 40}, 5, 5), 0.9, 0.001, true),
        in("b", geo::Rect::fromOrigin({200, 40}, 5, 5), 0.9, 0.001),
        in("c", geo::Rect::fromOrigin({400, 40}, 5, 5), 0.7, 0.01)}},
  };
  for (auto& s : scenarios) {
    auto est = engine.infer(s.inputs);
    std::string discarded;
    for (const auto& d : est->discarded) discarded += d.str() + " ";
    std::string winner;
    for (const auto& sup : est->supporting) winner += sup.str() + " ";
    std::printf("%-28s %-14s %-12s\n", s.name, winner.c_str(), discarded.c_str());
  }

  // --- Eq 7 fidelity gap ----------------------------------------------------------
  std::printf("\n# printed-Eq7 vs derivation-consistent formula, contained pair (see DESIGN.md)\n");
  std::printf("%-10s %-16s %-16s %-10s\n", "areaB", "derived(=eq4)", "printed_eq7", "gap");
  for (double side : {10.0, 20.0, 40.0, 80.0}) {
    geo::Rect outer = geo::Rect::fromOrigin({100, 10}, side, side);
    geo::Rect inner = geo::Rect::fromOrigin({102, 12}, 2, 2);
    FusionInputs ins{in("s1", inner, 0.9, 0.001), in("s2", outer, 0.8, 0.01)};
    double derived = fusion::regionProbability(outer, ins, kUniverse);
    double printedEq7 = fusion::regionProbabilityPaperEq7(outer, ins, kUniverse);
    std::printf("%-10.0f %-16.4f %-16.4f %-10.4f\n", outer.area(), derived, printedEq7,
                derived - printedEq7);
  }
  return 0;
}
