// MicroOrb microbenchmarks: wire codec, in-process RPC round trip, TCP
// loopback round trip, event publication fan-out — the marshalling/IPC
// costs underlying the Fig-9 trigger path.
#include <benchmark/benchmark.h>

#include "core/codec.hpp"
#include "orb/message.hpp"
#include "orb/rpc.hpp"
#include "orb/tcp.hpp"
#include "orb/transport.hpp"

using namespace mw;

static void BM_MessageEncode(benchmark::State& state) {
  orb::Message m;
  m.type = orb::MessageType::Request;
  m.requestId = 42;
  m.target = "probabilityInRegion";
  m.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.encode());
  }
}
BENCHMARK(BM_MessageEncode)->Arg(16)->Arg(256)->Arg(4096);

static void BM_MessageDecode(benchmark::State& state) {
  orb::Message m;
  m.target = "probabilityInRegion";
  m.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  util::Bytes frame = m.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(orb::Message::decode(frame));
  }
}
BENCHMARK(BM_MessageDecode)->Arg(16)->Arg(256)->Arg(4096);

static void BM_ReadingCodecRoundTrip(benchmark::State& state) {
  db::SensorReading r;
  r.sensorId = util::SensorId{"Ubi-18"};
  r.globPrefix = "SC/Floor3/3102";
  r.sensorType = "Ubisense";
  r.mobileObjectId = util::MobileObjectId{"ralph-bat"};
  r.location = {41, 3};
  r.detectionRadius = 0.5;
  r.symbolicRegion = geo::Rect::fromOrigin({40, 0}, 20, 30);
  for (auto _ : state) {
    util::ByteWriter w;
    core::encodeReading(w, r);
    util::ByteReader reader(w.bytes());
    benchmark::DoNotOptimize(core::decodeReading(reader));
  }
}
BENCHMARK(BM_ReadingCodecRoundTrip);

static void BM_InProcRpcRoundTrip(benchmark::State& state) {
  auto [clientSide, serverSide] = orb::makeInProcPair();
  orb::RpcServer server;
  server.registerMethod("echo", [](const util::Bytes& in) { return in; });
  server.serve(serverSide);
  orb::RpcClient client(clientSide);
  util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call("echo", payload));
  }
}
BENCHMARK(BM_InProcRpcRoundTrip)->Arg(16)->Arg(1024);

static void BM_TcpRpcRoundTrip(benchmark::State& state) {
  orb::RpcServer server;
  server.registerMethod("echo", [](const util::Bytes& in) { return in; });
  orb::TcpListener listener(0, [&](std::shared_ptr<orb::Transport> t) {
    server.serve(std::move(t));
  });
  orb::RpcClient client(orb::tcpConnect("127.0.0.1", listener.port()));
  util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call("echo", payload));
  }
}
BENCHMARK(BM_TcpRpcRoundTrip)->Arg(16)->Arg(1024);

static void BM_EventPublishFanOut(benchmark::State& state) {
  orb::RpcServer server;
  std::vector<std::shared_ptr<orb::Transport>> keepAlive;
  for (int i = 0; i < state.range(0); ++i) {
    auto [a, b] = orb::makeInProcPair();
    a->onReceive([](util::ByteView) {});
    keepAlive.push_back(a);
    server.serve(b);
  }
  util::Bytes payload(64, 0x11);
  for (auto _ : state) {
    server.publish("notify.1", payload);
  }
  state.SetLabel(std::to_string(state.range(0)) + " subscribers");
}
BENCHMARK(BM_EventPublishFanOut)->Arg(1)->Arg(8)->Arg(64);
