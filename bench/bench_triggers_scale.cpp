// Standing-rule scaling: per-update cost vs installed rule count.
//
// Figure 9's claim — trigger response independent of the number of
// programmed triggers — is reproduced end-to-end by
// bench_fig9_trigger_response up to 10^4 rules. This bench pushes the rule
// axis to 10^6 and isolates the two layers that make the claim hold at that
// scale:
//
//   * NetworkMatch: the Rete-style TriggerNetwork alone — match() cost for
//     one update against N installed productions, of which a constant 64
//     are affected. O(affected) means the curve stays flat as N grows
//     10^3 -> 10^6.
//   * ServiceIngest: the full LocationService ingest path (store, fuse,
//     discriminate, evaluate, notify) with N standing subscriptions, 8 of
//     them watching the reporting object's room.
//   * NetworkChurn: rule install+remove cost at size N — the control-plane
//     operation subscriptions/triggers pay, which must also not degrade
//     with the table size.
//
// Every benchmark reports the rule count as a counter so the JSON artifact
// (BENCH_triggers.json) carries the axis.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "core/location_service.hpp"
#include "cq/trigger_network.hpp"
#include "quality/error_model.hpp"
#include "spatialdb/database.hpp"
#include "util/clock.hpp"

using namespace mw;

namespace {

/// Distinct tiny rect #i on a dense grid clear of the hot region.
geo::Rect coldRect(int i) {
  const double x = 30.0 + (i % 1000) * 0.07;
  const double y = 30.0 + (i / 1000) * 0.02;
  return geo::Rect::fromOrigin({x, y}, 0.01, 0.01);
}

void BM_NetworkMatch(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  constexpr int kHot = 64;  // affected set: constant regardless of N
  cq::TriggerNetwork net;
  const geo::Rect hotRegion = geo::Rect::fromOrigin({0, 0}, 20, 20);
  cq::ProductionId next = 1;
  for (int i = 0; i < kHot; ++i) net.installProduction(next++, hotRegion, std::nullopt);
  for (int i = kHot; i < rules; ++i) {
    net.installProduction(next++, coldRect(i), std::nullopt);
  }

  const geo::Rect readingBox = geo::Rect::fromOrigin({4.5, 4.5}, 1, 1);
  std::vector<cq::ProductionId> matched;
  for (auto _ : state) {
    net.match(readingBox, "alice", matched);
    benchmark::DoNotOptimize(matched.data());
    if (matched.size() != kHot) state.SkipWithError("wrong match set");
  }
  state.counters["rules"] = rules;
  state.counters["alpha_nodes"] = static_cast<double>(net.alphaNodeCount());
  state.counters["matched"] = kHot;
  state.SetItemsProcessed(state.iterations());
}

void BM_NetworkChurn(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  cq::TriggerNetwork net;
  cq::ProductionId next = 1;
  for (int i = 0; i < rules; ++i) net.installProduction(next++, coldRect(i), std::nullopt);

  // A fresh rect each round so install exercises the R-tree path, not just
  // the shared-alpha fast path.
  const geo::Rect churnRegion = geo::Rect::fromOrigin({5, 5}, 3, 3);
  for (auto _ : state) {
    const cq::ProductionId id = next++;
    net.installProduction(id, churnRegion, std::nullopt);
    benchmark::DoNotOptimize(net.productionCount());
    net.removeProduction(id);
  }
  state.counters["rules"] = rules;
  state.SetItemsProcessed(state.iterations());
}

void BM_ServiceIngest(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  constexpr int kHot = 8;

  util::VirtualClock clock;
  db::SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  db::SensorMeta ubi;
  ubi.sensorId = util::SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  db.registerSensor(ubi);
  core::LocationService service(clock, db);

  std::uint64_t fired = 0;
  const geo::Rect room = geo::Rect::fromOrigin({0, 0}, 20, 20);
  for (int i = 0; i < kHot; ++i) {
    core::Subscription sub;
    sub.region = room;
    sub.threshold = 0.3;
    sub.callback = [&fired](const core::Notification&) { ++fired; };
    (void)service.subscribe(std::move(sub));
  }
  for (int i = kHot; i < rules; ++i) {
    core::Subscription sub;
    sub.region = coldRect(i);
    sub.threshold = 0.99;
    sub.callback = [](const core::Notification&) {};
    (void)service.subscribe(std::move(sub));
  }

  int tick = 0;
  for (auto _ : state) {
    db::SensorReading r;
    r.sensorId = util::SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = util::MobileObjectId{"alice"};
    r.location = {5.0 + 0.01 * (tick % 100), 5.0};
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    service.ingest(r);
    // Virtual time moves 1s per update, so the 30s TTL keeps the evidence
    // set (and the fusion cost) at a steady state instead of accreting.
    clock.advance(util::sec(1));
    ++tick;
  }
  if (fired == 0) state.SkipWithError("hot subscriptions never fired");
  state.counters["rules"] = rules;
  state.counters["alpha_nodes"] = static_cast<double>(service.standingRuleStats().alphaNodes);
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_NetworkMatch)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NetworkChurn)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ServiceIngest)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);
