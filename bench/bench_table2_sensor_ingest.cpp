// Table 2 / §5.2 reproduction: the sensor-reading table schema, the
// per-sensor calibration table (Confidence %, TTL) for the four §6
// technologies, reading-ingest throughput and a TTL/tdf freshness sweep.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "adapters/biometric.hpp"
#include "adapters/card_reader.hpp"
#include "adapters/gps.hpp"
#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "spatialdb/database.hpp"
#include "util/rng.hpp"

using namespace mw;
using Clock = std::chrono::steady_clock;

int main() {
  util::VirtualClock clock;
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 500, 100), "SC");

  // --- Table 2: sample sensor readings ---------------------------------------
  std::printf("# Table 2: sensor information table (sample readings)\n");
  std::printf("| %-8s | %-16s | %-10s | %-10s | %-12s | %-6s | %s\n", "SensorId", "GlobPrefix",
              "SensorType", "MObjectId", "ObjLocation", "Radius", "DetTime");
  db::SensorMeta rf;
  rf.sensorId = util::SensorId{"RF-12"};
  rf.sensorType = "RF";
  rf.errorSpec = quality::rfidBadgeSpec(0.8);
  rf.scaleMisidentifyByArea = true;
  rf.quality.ttl = util::sec(60);
  database.registerSensor(rf);
  db::SensorMeta ubi;
  ubi.sensorId = util::SensorId{"Ubi-18"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(0.9);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(3);
  database.registerSensor(ubi);

  auto printReading = [](const db::SensorReading& r) {
    std::ostringstream loc;
    loc << r.location;
    std::printf("| %-8s | %-16s | %-10s | %-10s | %-12s | %-6.0f | %lld\n",
                r.sensorId.str().c_str(), r.globPrefix.c_str(), r.sensorType.c_str(),
                r.mobileObjectId.str().c_str(), loc.str().c_str(), r.detectionRadius,
                static_cast<long long>(r.detectionTime.time_since_epoch().count()));
  };
  db::SensorReading sample1{util::SensorId{"RF-12"}, "SC", "RF",
                            util::MobileObjectId{"tom-pda"},
                            {5, 22}, 30, clock.now(), std::nullopt};
  db::SensorReading sample2{util::SensorId{"Ubi-18"}, "SC", "Ubisense",
                            util::MobileObjectId{"ralph-bat"},
                            {41, 3}, 0.5, clock.now(), std::nullopt};
  printReading(sample1);
  printReading(sample2);
  database.insertReading(sample1);
  database.insertReading(sample2);

  // --- the per-sensor table (Confidence %, TTL) for all §6 technologies -------
  std::printf("\n# Sensor calibration table (cf. §5.2)\n");
  std::printf("| %-12s | %-11s | %-14s | x=%-5s y=%-5s z=%s\n", "SensorId", "Confidence%",
              "TimeToLive(s)", "carry", "detect", "misid");
  adapters::UbisenseAdapter ubiA(util::AdapterId{"a1"}, util::SensorId{"Ubi-18"},
                                 {geo::Rect::fromOrigin({0, 0}, 500, 100), 0.5, 0.9,
                                  util::sec(3), ""});
  adapters::RfidBadgeAdapter rfA(util::AdapterId{"a2"}, util::SensorId{"RF-12"},
                                 {{50, 50}, 15, 0.8, util::sec(60), ""});
  adapters::BiometricAdapter bioA(
      util::AdapterId{"a3"}, util::SensorId{"fp-1"},
      adapters::BiometricConfig{.devicePosition = {5, 5},
                                .room = geo::Rect::fromOrigin({0, 0}, 20, 30)});
  adapters::GpsAdapter gpsA(util::AdapterId{"a4"}, util::SensorId{"gps-1"},
                            {15, 0.7, util::sec(10), ""});
  adapters::CardReaderAdapter cardA(util::AdapterId{"a5"}, util::SensorId{"card-1"},
                                    {geo::Rect::fromOrigin({0, 0}, 20, 30), util::sec(10), ""});
  const std::vector<const adapters::LocationAdapter*> allAdapters{&ubiA, &rfA, &bioA, &gpsA,
                                                                  &cardA};
  for (const adapters::LocationAdapter* a : allAdapters) {
    for (const auto& meta : a->metas()) {
      std::printf("| %-12s | %-11d | %-14lld | x=%-5.2f y=%-5.2f z=%.2f\n",
                  meta.sensorId.str().c_str(), meta.confidencePercent(),
                  static_cast<long long>(meta.quality.ttl.count() / 1000),
                  meta.errorSpec.carry, meta.errorSpec.detect, meta.errorSpec.misidentify);
    }
  }

  // --- ingest throughput --------------------------------------------------------
  std::printf("\n# reading-ingest throughput (no triggers)\n");
  std::printf("%-10s %-14s %-14s\n", "objects", "readings", "ingest_us/r");
  for (int objects : {1, 10, 100}) {
    constexpr int kReadings = 20'000;
    util::Rng rng{3};
    auto t0 = Clock::now();
    for (int i = 0; i < kReadings; ++i) {
      db::SensorReading r;
      r.sensorId = util::SensorId{"Ubi-18"};
      r.sensorType = "Ubisense";
      r.mobileObjectId = util::MobileObjectId{"person-" + std::to_string(i % objects)};
      r.location = {rng.uniform(0, 500), rng.uniform(0, 100)};
      r.detectionRadius = 0.5;
      r.detectionTime = clock.now();
      database.insertReading(r);
    }
    double us = std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
                    Clock::now() - t0)
                    .count() /
                kReadings;
    std::printf("%-10d %-14d %-14.3f\n", objects, kReadings, us);
  }

  // --- freshness sweep: readings decay and expire (§3.2, §5.2) --------------------
  std::printf("\n# freshness: Ubisense reading (TTL 3 s) vs card reader (TTL 10 s)\n");
  std::printf("%-10s %-18s %-18s\n", "age_s", "ubisense_alive", "cardreader_alive");
  db::SensorMeta card;
  card.sensorId = util::SensorId{"card-1"};
  card.sensorType = "CardReader";
  card.errorSpec = {1.0, 0.98, 0.01};
  card.quality.ttl = util::sec(10);
  database.registerSensor(card);
  for (int age : {0, 2, 3, 5, 9, 10, 12}) {
    auto ubiConf = database.sensorMeta(util::SensorId{"Ubi-18"})
                       ->confidenceFor(1.0, 50'000.0, util::sec(age));
    auto cardConf = database.sensorMeta(util::SensorId{"card-1"})
                        ->confidenceFor(600.0, 50'000.0, util::sec(age));
    std::printf("%-10d %-18s %-18s\n", age, ubiConf ? "yes" : "expired",
                cardConf ? "yes" : "expired");
  }
  return 0;
}
