// §4.2 query latency: object-based and region-based queries through the
// Location Service, as a function of tracked-population size and of the
// number of fresh readings per person.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/location_service.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

struct Fixture {
  util::VirtualClock clock;
  sim::Blueprint bp;
  std::unique_ptr<db::SpatialDatabase> database;
  std::unique_ptr<core::LocationService> service;

  Fixture(int people, int sensorsPerPerson)
      : bp(sim::generateBlueprint({.floors = 2, .roomsPerSide = 8})) {
    database = std::make_unique<db::SpatialDatabase>(clock, bp.universe, bp.frames());
    bp.populate(*database);
    service = std::make_unique<core::LocationService>(clock, *database);
    service->connectivity() = bp.connectivity();

    util::Rng rng{99};
    for (int s = 0; s < sensorsPerPerson; ++s) {
      db::SensorMeta meta;
      meta.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
      meta.sensorType = "Ubisense";
      meta.errorSpec = quality::ubisenseSpec(1.0);
      meta.scaleMisidentifyByArea = true;
      meta.quality.ttl = util::minutes(10);
      database->registerSensor(meta);
    }
    for (int p = 0; p < people; ++p) {
      geo::Point2 where{rng.uniform(10, bp.universe.hi().x - 10),
                        rng.uniform(10, bp.universe.hi().y - 10)};
      for (int s = 0; s < sensorsPerPerson; ++s) {
        db::SensorReading r;
        r.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
        r.sensorType = "Ubisense";
        r.mobileObjectId = util::MobileObjectId{"p" + std::to_string(p)};
        r.location = {where.x + rng.gaussian(0, 0.2), where.y + rng.gaussian(0, 0.2)};
        r.detectionRadius = 0.5 + s;
        r.detectionTime = clock.now();
        service->ingest(r);
      }
    }
  }
};

}  // namespace

// Default path: repeated queries on an unchanged object hit the per-object
// fusion cache (no conflict resolution, no lattice rebuild).
static void BM_LocateObject(benchmark::State& state) {
  Fixture f(10, static_cast<int>(state.range(0)));
  util::MobileObjectId who{"p0"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->locateObject(who));
  }
  state.SetLabel(std::to_string(state.range(0)) + " readings/person (cached)");
}
BENCHMARK(BM_LocateObject)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The same query with the cache flushed every iteration: full conflict
// resolution + lattice rebuild + inference each time. The ratio against
// BM_LocateObject is the memoization speedup.
static void BM_LocateObjectUncached(benchmark::State& state) {
  Fixture f(10, static_cast<int>(state.range(0)));
  util::MobileObjectId who{"p0"};
  for (auto _ : state) {
    f.service->invalidateFusionCache();
    benchmark::DoNotOptimize(f.service->locateObject(who));
  }
  state.SetLabel(std::to_string(state.range(0)) + " readings/person (uncached)");
}
BENCHMARK(BM_LocateObjectUncached)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Concurrent readers against one shared service: queries take only shared
// locks on the database and fusion cache, so threads proceed in parallel.
static Fixture& sharedQueryFixture() {
  static Fixture f(10, 4);
  return f;
}

static void BM_LocateObjectConcurrent(benchmark::State& state) {
  Fixture& f = sharedQueryFixture();
  util::MobileObjectId who{"p" + std::to_string(state.thread_index() % 10)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->locateObject(who));
  }
}
BENCHMARK(BM_LocateObjectConcurrent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

static void BM_LocateSymbolic(benchmark::State& state) {
  Fixture f(10, 2);
  util::MobileObjectId who{"p0"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->locateSymbolic(who));
  }
}
BENCHMARK(BM_LocateSymbolic);

static void BM_ProbabilityInRegion(benchmark::State& state) {
  Fixture f(10, 2);
  util::MobileObjectId who{"p0"};
  geo::Rect room = f.bp.roomNamed("101")->rect;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->probabilityInRegion(who, room));
  }
  state.SetLabel("cached");
}
BENCHMARK(BM_ProbabilityInRegion);

static void BM_ProbabilityInRegionUncached(benchmark::State& state) {
  Fixture f(10, 2);
  util::MobileObjectId who{"p0"};
  geo::Rect room = f.bp.roomNamed("101")->rect;
  for (auto _ : state) {
    f.service->invalidateFusionCache();
    benchmark::DoNotOptimize(f.service->probabilityInRegion(who, room));
  }
  state.SetLabel("uncached");
}
BENCHMARK(BM_ProbabilityInRegionUncached);

static void BM_ObjectsInRegion(benchmark::State& state) {
  Fixture f(static_cast<int>(state.range(0)), 2);
  geo::Rect wing = geo::Rect::fromOrigin({0, 0}, f.bp.universe.hi().x / 2,
                                         f.bp.universe.hi().y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->objectsInRegion(wing, 0.2));
  }
  state.SetLabel(std::to_string(state.range(0)) + " people");
}
BENCHMARK(BM_ObjectsInRegion)->Arg(1)->Arg(10)->Arg(100);

static void BM_ProximityQuery(benchmark::State& state) {
  Fixture f(10, 2);
  util::MobileObjectId a{"p0"}, b{"p1"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->proximity(a, b, 30.0));
  }
}
BENCHMARK(BM_ProximityQuery);

static void BM_IngestWithSubscriptions(benchmark::State& state) {
  Fixture f(1, 1);
  util::Rng rng{5};
  // N programmed subscriptions elsewhere + 1 live one (the Fig-9 in-process
  // analogue, without the ORB hop).
  geo::Rect target = f.bp.roomNamed("101")->rect;
  f.service->subscribe(
      {target, std::nullopt, 0.1, std::nullopt, false, [](const core::Notification&) {}});
  for (int i = 1; i < state.range(0); ++i) {
    f.service->subscribe({geo::Rect::fromOrigin({f.bp.universe.hi().x - 2, 2.0 + 0.01 * i}, 1, 1),
                          std::nullopt, 0.99, std::nullopt, false,
                          [](const core::Notification&) {}});
  }
  db::SensorReading r;
  r.sensorId = util::SensorId{"ubi-0"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = util::MobileObjectId{"p0"};
  r.detectionRadius = 0.5;
  for (auto _ : state) {
    r.location = target.center() + geo::Point2{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    r.detectionTime = f.clock.now();
    f.service->ingest(r);
    f.clock.advance(util::msec(100));
  }
  state.SetLabel(std::to_string(state.range(0)) + " subscriptions");
}
BENCHMARK(BM_IngestWithSubscriptions)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
