// Eq. 7 / fusion-engine scaling with the number of sensor readings
// (DESIGN.md experiment index: "Eq 7 evaluation cost vs n").
#include <benchmark/benchmark.h>

#include "fusion/engine.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 500, 100);

fusion::FusionInputs makeInputs(int n, std::uint64_t seed) {
  util::Rng rng{seed};
  fusion::FusionInputs inputs;
  // Overlapping cluster around one spot — the realistic multi-sensor case.
  for (int i = 0; i < n; ++i) {
    double r = rng.uniform(0.5, 12.0);
    geo::Point2 c{100 + rng.uniform(-4, 4), 50 + rng.uniform(-4, 4)};
    inputs.push_back(fusion::FusionInput{util::SensorId{"s" + std::to_string(i)},
                                         geo::Rect::centeredSquare(c, r), 0.9,
                                         0.05 * r * r / kUniverse.area(), i % 3 == 0});
  }
  return inputs;
}

}  // namespace

static void BM_RegionProbability(benchmark::State& state) {
  auto inputs = makeInputs(static_cast<int>(state.range(0)), 42);
  geo::Rect region = geo::Rect::centeredSquare({100, 50}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion::regionProbability(region, inputs, kUniverse));
  }
}
BENCHMARK(BM_RegionProbability)->RangeMultiplier(2)->Range(1, 64);

static void BM_FusionInfer(benchmark::State& state) {
  fusion::FusionEngine engine(kUniverse);
  auto inputs = makeInputs(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer(inputs));
  }
}
BENCHMARK(BM_FusionInfer)->RangeMultiplier(2)->Range(1, 16);

static void BM_FusionInferWithConflicts(benchmark::State& state) {
  // Half the sensors agree, half report disjoint far-away regions.
  fusion::FusionEngine engine(kUniverse);
  auto inputs = makeInputs(static_cast<int>(state.range(0)), 42);
  util::Rng rng{7};
  for (int i = 0; i < state.range(0); ++i) {
    inputs.push_back(fusion::FusionInput{
        util::SensorId{"conflict" + std::to_string(i)},
        geo::Rect::centeredSquare({rng.uniform(300, 480), rng.uniform(10, 90)}, 2), 0.8,
        0.0005});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.infer(inputs));
  }
}
BENCHMARK(BM_FusionInferWithConflicts)->RangeMultiplier(2)->Range(1, 8);

static void BM_Distribution(benchmark::State& state) {
  fusion::FusionEngine engine(kUniverse);
  auto inputs = makeInputs(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distribution(inputs, true));
  }
}
BENCHMARK(BM_Distribution)->RangeMultiplier(2)->Range(1, 8);

static void BM_Classification(benchmark::State& state) {
  std::vector<double> ps;
  for (int i = 0; i < state.range(0); ++i) ps.push_back(0.5 + 0.4 * i / state.range(0));
  for (auto _ : state) {
    auto thresholds = fusion::computeThresholds(ps);
    benchmark::DoNotOptimize(fusion::classify(0.87, thresholds));
  }
}
BENCHMARK(BM_Classification)->Arg(4)->Arg(16);
