// §6/§7 adapter fan-in: throughput of the full sensing loop — simulated
// world -> adapters -> location service — for growing populations and
// technology mixes.
#include <benchmark/benchmark.h>

#include <memory>

#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

using namespace mw;

static void BM_ScenarioSensingLoop(benchmark::State& state) {
  const int people = static_cast<int>(state.range(0));
  util::VirtualClock clock;
  sim::Blueprint bp = sim::generateBlueprint({.floors = 1, .roomsPerSide = 8});
  core::Middlewhere mw(clock, bp.universe, bp.frames());
  bp.populate(mw.database());
  mw.locationService().connectivity() = bp.connectivity();
  sim::World world(bp, 17);
  for (int p = 0; p < people; ++p) {
    world.addPerson({util::MobileObjectId{"p" + std::to_string(p)},
                     "10" + std::to_string(1 + p % 8), 4.0, 1.0, 1.0, 0.0});
  }
  sim::Scenario scenario(clock, world,
                         [&](const db::SensorReading& r) { mw.locationService().ingest(r); });
  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{bp.universe, 0.5, 0.9, util::sec(5), ""});
  ubi->registerWith(mw.database());
  scenario.addAdapter(ubi, util::sec(1));
  auto rf = std::make_shared<adapters::RfidBadgeAdapter>(
      util::AdapterId{"rf"}, util::SensorId{"rf-1"},
      adapters::RfidConfig{bp.centerOf("104"), 15.0, 0.9, util::sec(60), ""});
  rf->registerWith(mw.database());
  scenario.addAdapter(rf, util::sec(2));

  std::size_t readings = 0;
  for (auto _ : state) {
    readings += scenario.run(util::sec(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(readings));
  state.SetLabel(std::to_string(people) + " people, 10 sim-seconds/iter");
}
BENCHMARK(BM_ScenarioSensingLoop)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

static void BM_AdapterSampleOnly(benchmark::State& state) {
  // Isolates the adapter sampling cost (no service behind it).
  util::VirtualClock clock;
  sim::Blueprint bp = sim::generateBlueprint({.floors = 1, .roomsPerSide = 8});
  sim::World world(bp, 17);
  for (int p = 0; p < state.range(0); ++p) {
    world.addPerson({util::MobileObjectId{"p" + std::to_string(p)},
                     "10" + std::to_string(1 + p % 8), 4.0, 1.0, 1.0, 0.0});
  }
  adapters::UbisenseAdapter ubi(util::AdapterId{"ubi"}, util::SensorId{"ubi-1"},
                                adapters::UbisenseConfig{bp.universe, 0.5, 0.9, util::sec(5),
                                                         ""});
  std::size_t sink = 0;
  ubi.connect([&](const db::SensorReading&) { ++sink; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ubi.sample(world, clock, world.rng()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sink));
}
BENCHMARK(BM_AdapterSampleOnly)->Arg(1)->Arg(16)->Arg(64);
