// Sharded location-service cluster: routed and scatter-gather costs as the
// cluster widens (1, 2, 4 shard processes behind one registry). Width 1 is
// the baseline — the router in front of a single shard measures pure
// indirection overhead; wider clusters show what hash-routing buys on the
// object-keyed path and what fan-out costs on the region path. The router's
// scatter/degraded counters land in the JSON so a degraded run is visible in
// the artifact, and "hardware_concurrency" in the context makes the width
// curve interpretable per host.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_location_service.hpp"
#include "cluster/shard_host.hpp"
#include "cluster/territory_map.hpp"
#include "core/remote_registry.hpp"
#include "quality/error_model.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

geo::Rect benchUniverse() { return geo::Rect::fromOrigin({0, 0}, 100, 50); }

std::vector<std::string> spaceTokens(std::size_t shards) {
  std::vector<std::string> tokens;
  for (std::size_t i = 0; i < shards; ++i) tokens.push_back("s" + std::to_string(i));
  return tokens;
}

/// A registry, N shard hosts sharing one world config, and the router.
/// `spatial` switches both sides to territory partitioning (spaceToken
/// members + a Partitioning::Spatial router) instead of object hashing.
struct ClusterFixture {
  util::VirtualClock clock;
  core::RegistryServer registry;
  std::vector<std::unique_ptr<cluster::ShardHost>> hosts;
  std::unique_ptr<cluster::ClusterLocationService> router;

  explicit ClusterFixture(std::size_t shards, bool enableShm = true, bool spatial = false) {
    const auto tokens = spaceTokens(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      cluster::ShardHost::Options opts;
      if (spatial) {
        opts.spaceToken = tokens[i];
      } else {
        opts.index = i;
        opts.total = shards;
      }
      opts.enableShm = enableShm;
      auto host = std::make_unique<cluster::ShardHost>(clock, benchUniverse(), "SC",
                                                       "127.0.0.1", registry.port(), opts);
      configureWorld(host->core());
      host->start();
      hosts.push_back(std::move(host));
    }
    if (spatial) {
      cluster::ClusterLocationService::Options opts;
      opts.partitioning = cluster::ClusterLocationService::Partitioning::Spatial;
      opts.universe = benchUniverse();
      router = std::make_unique<cluster::ClusterLocationService>("127.0.0.1", registry.port(),
                                                                 opts);
    } else {
      router = std::make_unique<cluster::ClusterLocationService>("127.0.0.1", registry.port());
    }
  }

  static void configureWorld(core::Middlewhere& mw) {
    db::SpatialObjectRow room;
    room.id = util::SpatialObjectId{"roomA"};
    room.globPrefix = "SC";
    room.objectType = db::ObjectType::Room;
    room.geometryType = db::GeometryType::Polygon;
    room.points = {{0, 0}, {40, 0}, {40, 40}, {0, 40}};
    mw.database().addObject(room);

    db::SensorMeta ubi;
    ubi.sensorId = util::SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = util::minutes(10);
    mw.database().registerSensor(ubi);
  }

  db::SensorReading makeReading(const std::string& object, geo::Point2 where) const {
    db::SensorReading r;
    r.sensorId = util::SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = util::MobileObjectId{object};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    return r;
  }

  void exportStats(benchmark::State& state) const {
    const auto stats = router->stats();
    state.counters["scatter_gathers"] = static_cast<double>(stats.scatterGathers);
    state.counters["degraded_queries"] = static_cast<double>(stats.degradedQueries);
    state.counters["failed_routed_calls"] = static_cast<double>(stats.failedRoutedCalls);
    state.counters["targeted_region_queries"] = static_cast<double>(stats.targetedRegionQueries);
    state.counters["region_shard_calls"] = static_cast<double>(stats.regionShardsQueried);
    state.counters["object_migrations"] = static_cast<double>(stats.objectMigrations);
    std::uint64_t reconnects = 0;
    for (const auto& shard : stats.shards) reconnects += shard.reconnects;
    state.counters["reconnects"] = static_cast<double>(reconnects);
  }
};

}  // namespace

// Object-keyed path: blocking ingest + locate round trips routed by
// hash(object) to the owning shard. Arg = cluster width.
static void BM_ClusterRoutedIngestLocate(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  ClusterFixture f(shards);

  constexpr int kObjects = 16;
  util::Rng rng{7};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (int i = 0; i < kObjects; ++i) {
      const std::string object = "p" + std::to_string(i);
      f.router->ingest(f.makeReading(object, {rng.uniform(1, 39), rng.uniform(1, 39)}));
      benchmark::DoNotOptimize(f.router->locate(util::MobileObjectId{object}));
      ops += 2;
    }
  }

  f.exportStats(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(std::to_string(shards) + " shard(s)");
}
BENCHMARK(BM_ClusterRoutedIngestLocate)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Region path: every poll scatters to all N shards and merges — the fan-out
// cost the router pays for cluster-wide answers.
static void BM_ClusterRegionPoll(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  ClusterFixture f(shards);

  constexpr int kObjects = 32;
  util::Rng rng{11};
  for (int i = 0; i < kObjects; ++i) {
    f.router->ingest(
        f.makeReading("p" + std::to_string(i), {rng.uniform(1, 39), rng.uniform(1, 39)}));
  }

  const auto region = geo::Rect::fromOrigin({0, 0}, 40, 40);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.router->objectsInRegion(region, 0.2));
    benchmark::DoNotOptimize(f.router->probabilityInRegion(util::MobileObjectId{"p0"}, region));
    ops += 2;
  }

  f.exportStats(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(std::to_string(shards) + " shard(s)");
}
BENCHMARK(BM_ClusterRegionPoll)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Transport lane comparison: the same 2-shard routed ingest+locate workload
// over TCP loopback (shm disabled) vs the shared-memory lane the shards
// announce when colocated. The "shm_lanes" counter records how many shards
// actually published a lane — 0 on hosts without POSIX shm, where both rows
// degenerate to loopback and should read identically.
static void BM_ClusterTransportLane(benchmark::State& state) {
  const bool shm = state.range(0) != 0;
  ClusterFixture f(2, shm);

  double shmLanes = 0;
  for (const auto& host : f.hosts) {
    if (!host->shmName().empty()) ++shmLanes;
  }

  constexpr int kObjects = 16;
  util::Rng rng{13};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (int i = 0; i < kObjects; ++i) {
      const std::string object = "p" + std::to_string(i);
      f.router->ingest(f.makeReading(object, {rng.uniform(1, 39), rng.uniform(1, 39)}));
      benchmark::DoNotOptimize(f.router->locate(util::MobileObjectId{object}));
      ops += 2;
    }
  }

  f.exportStats(state);
  state.counters["shm_lanes"] = shmLanes;
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(shm ? "shm lane" : "tcp loopback");
}
BENCHMARK(BM_ClusterTransportLane)->Arg(0)->Arg(1)->UseRealTime();

// Replication lane: the same routed ingest+locate workload against a single
// shard without (Arg 0) and with (Arg 1) a warm-standby backup. With a
// backup, every acked ingest was synchronously mirrored before the local
// apply — the row prices that durability: the delta over the bare row is the
// cost of kill-one-shard losing nothing. "mirrored_readings" in the counters
// proves the replica actually rode along.
static void BM_ClusterReplicatedIngest(benchmark::State& state) {
  const bool replicated = state.range(0) != 0;
  ClusterFixture f(1);

  std::unique_ptr<cluster::ShardHost> backup;
  if (replicated) {
    cluster::ShardHost::Options opts;
    opts.index = 0;
    opts.total = 1;
    opts.role = cluster::ShardHost::Role::Backup;
    opts.heartbeatPeriod = util::msec(50);
    backup = std::make_unique<cluster::ShardHost>(
        f.clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC", "127.0.0.1", f.registry.port(),
        opts);
    ClusterFixture::configureWorld(backup->core());
    backup->start();
    // Measure the steady mirror, not the discovery/sync ramp.
    for (int i = 0; i < 200; ++i) {
      auto link = f.hosts[0]->replicationLink();
      if (link && link->live()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  constexpr int kObjects = 16;
  util::Rng rng{17};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    for (int i = 0; i < kObjects; ++i) {
      const std::string object = "p" + std::to_string(i);
      f.router->ingest(f.makeReading(object, {rng.uniform(1, 39), rng.uniform(1, 39)}));
      benchmark::DoNotOptimize(f.router->locate(util::MobileObjectId{object}));
      ops += 2;
    }
  }

  f.exportStats(state);
  const auto link = f.hosts[0]->replicationLink();
  state.counters["mirrored_readings"] =
      link ? static_cast<double>(link->mirroredReadings()) : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(replicated ? "primary+backup" : "bare primary");
}
BENCHMARK(BM_ClusterReplicatedIngest)->Arg(0)->Arg(1)->UseRealTime();

// Region-keyed partitioning: the identical small-region population query
// against an object-hash cluster (scatter to all N shards, merge) and a
// spatial cluster (targeted at the territory owners intersecting the
// region — one shard here, by construction). The region geometry is the
// same in both rows: a small square inside the first territory leaf of the
// uniform kd split, so the spatial rows price exactly what partitioning by
// WHERE buys as the cluster widens. "region_shard_calls" divided by
// iterations is the per-query fan-out: N for scatter, 1 for targeted.
// Args: {width, 0 = object-hash scatter | 1 = spatial targeted}.
static void BM_ClusterRegionQuerySmall(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool spatial = state.range(1) != 0;
  ClusterFixture f(shards, true, spatial);

  constexpr int kObjects = 32;
  util::Rng rng{23};
  for (int i = 0; i < kObjects; ++i) {
    f.router->ingest(
        f.makeReading("p" + std::to_string(i), {rng.uniform(1, 99), rng.uniform(1, 49)}));
  }

  const auto map = cluster::TerritoryMap::uniform(benchUniverse(), spaceTokens(shards));
  const auto region = geo::Rect::centeredSquare(map.leaves().front().rect.center(), 2.0);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.router->objectsInRegion(region, 0.2));
    ++ops;
  }

  f.exportStats(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(std::to_string(shards) + " shard(s), " +
                 (spatial ? "spatial targeted" : "object-hash scatter"));
}
BENCHMARK(BM_ClusterRegionQuerySmall)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->UseRealTime();

// Boundary-crossing cost: ingest a fresh object on one side of a 2-shard
// territory split, then a second reading either on the same side (Arg 0 —
// plain two-reading ingest, the baseline) or across the boundary (Arg 1 —
// the router migrates the object's log over a live handoff session:
// begin/adopt/export/import/flush/end plus the home flip). The delta
// between the rows is the full price of one online migration;
// "object_migrations" proves the crossing rows actually migrated.
static void BM_ClusterTerritoryMigration(benchmark::State& state) {
  const bool crossing = state.range(0) != 0;
  ClusterFixture f(2, true, true);

  // A resident background population on both sides, so migrations run
  // against non-empty shards.
  util::Rng rng{29};
  for (int i = 0; i < 16; ++i) {
    f.router->ingest(
        f.makeReading("bg" + std::to_string(i), {rng.uniform(1, 99), rng.uniform(1, 49)}));
  }

  // The uniform 2-way split halves the universe at x = 50.
  std::uint64_t ops = 0;
  int seq = 0;
  for (auto _ : state) {
    const std::string object = "m" + std::to_string(seq++);
    f.router->ingest(f.makeReading(object, {25.0, 25.0}));
    f.router->ingest(f.makeReading(object, {crossing ? 75.0 : 26.0, 25.0}));
    ops += 2;
  }

  f.exportStats(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(crossing ? "boundary crossing (migrates)" : "same territory");
}
BENCHMARK(BM_ClusterTerritoryMigration)->Arg(0)->Arg(1)->UseRealTime();

// Custom main: record the host's core count next to the width curve.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
