// City-scale open-loop load harness: a procedurally generated multi-building
// city, a 10^5-agent population, and a live 4-shard spatial cluster driven by
// the coordinated-omission-corrected generator in citysim/loadgen.hpp.
//
// Unlike the google-benchmark micro-benches, closed-loop timing is exactly
// what this harness exists to avoid, so this is a plain main() that runs the
// open-loop schedule and writes google-benchmark-COMPATIBLE JSON by hand
// (context.hardware_concurrency + one "iteration" entry per operation class,
// real_time = corrected p99) so scripts/bench_compare.py can gate it like any
// other artifact. Per class the entry carries p50/p99/p999 for both the
// corrected (completion - intended arrival) and service (completion - actual
// start) distributions; the gap between them is the queueing a closed-loop
// bench would have silently dropped.
//
// Operation classes:
//   ingest        routed sensor-reading ingest (pre-generated behavioural
//                 trace, so generation cost is off the measured path)
//   locate        object-keyed routed locate()
//   region_poll   territory-targeted objectsInRegion over watched regions
//   alarm_latency ingest-to-density-callback propagation through the
//                 cluster-wide counting rule (event-driven: samples are the
//                 alarm-relevant ingests, not a fixed-rate schedule)
//
// Scale knobs (env): CITY_AGENTS (default 100000), CITY_SHARDS (4),
// CITY_DURATION seconds (3), CITY_INGEST_RATE (1500), CITY_LOCATE_RATE (400),
// CITY_POLL_RATE (60).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "citysim/city.hpp"
#include "citysim/loadgen.hpp"
#include "citysim/population.hpp"
#include "cluster/cluster_location_service.hpp"
#include "cluster/shard_host.hpp"
#include "core/remote_registry.hpp"
#include "util/clock.hpp"

using namespace mw;
using SteadyClock = std::chrono::steady_clock;

namespace {

std::size_t envSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<std::size_t>(std::strtoull(value, nullptr, 10))
                          : fallback;
}

double envDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtod(value, nullptr) : fallback;
}

/// Send-time table for the alarm-latency class: ingest stamps its object,
/// the density callback consumes the stamp. Event-driven by nature — only
/// membership-changing ingests produce a sample.
struct AlarmTimes {
  std::mutex mutex;
  std::unordered_map<std::string, SteadyClock::time_point> sent;
  citysim::LatencyHistogram latency;
  std::atomic<std::uint64_t> alarms{0};

  void stamp(const std::string& object, SteadyClock::time_point when) {
    std::lock_guard lock(mutex);
    sent[object] = when;
  }
  void onNotify(const core::DensityNotification& n) {
    const auto now = SteadyClock::now();
    alarms.fetch_add(n.edge != cq::CountEdge::None ? 1 : 0, std::memory_order_relaxed);
    std::lock_guard lock(mutex);
    auto it = sent.find(n.object.str());
    if (it == sent.end()) return;  // seeded count or stale entry
    latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - it->second).count()));
    sent.erase(it);
  }
};

void appendHistogram(std::string& json, const char* prefix,
                     const citysim::LatencyHistogram& h) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "        \"%s_p50\": %llu,\n        \"%s_p99\": %llu,\n",
                prefix, static_cast<unsigned long long>(h.valueAtPercentile(50)), prefix,
                static_cast<unsigned long long>(h.valueAtPercentile(99)));
  json += buf;
  std::snprintf(buf, sizeof buf, "        \"%s_p999\": %llu,\n", prefix,
                static_cast<unsigned long long>(h.valueAtPercentile(99.9)));
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    // Accept (and mostly ignore) the google-benchmark flags bench_json.sh
    // passes so this binary slots into the same harness.
    const std::string arg = argv[i];
    if (arg.rfind("--benchmark_out=", 0) == 0) outPath = arg.substr(std::strlen("--benchmark_out="));
  }

  const std::size_t agents = envSize("CITY_AGENTS", 100000);
  const std::size_t shards = envSize("CITY_SHARDS", 4);
  const double duration = envDouble("CITY_DURATION", 3.0);
  const double ingestRate = envDouble("CITY_INGEST_RATE", 1500);
  const double locateRate = envDouble("CITY_LOCATE_RATE", 400);
  const double pollRate = envDouble("CITY_POLL_RATE", 60);

  // --- city + population -----------------------------------------------------
  citysim::CityConfig cityConfig;
  cityConfig.rows = 2;
  cityConfig.cols = 2;
  const citysim::CityBlueprint city = citysim::generateCity(cityConfig);

  citysim::PopulationConfig popConfig;
  popConfig.commuters = agents * 4 / 10;
  popConfig.crowd = agents * 3 / 10;
  popConfig.vehicles = agents * 2 / 10;
  popConfig.staff = agents - popConfig.commuters - popConfig.crowd - popConfig.vehicles;
  // Thin per-tick sampling: the trace needs rate*duration readings, not one
  // per agent per tick, and generation happens before the measured window.
  popConfig.sampleFraction = 0.05;
  citysim::Population population(city, popConfig);

  const citysim::OutdoorRegion* venue = city.outdoorNamed("plaza-0-1");
  if (venue == nullptr) {
    std::fprintf(stderr, "bench_city: venue plaza missing from generated city\n");
    return 1;
  }
  population.announceEvent(venue->rect);

  // Pre-generate the behavioural trace on a virtual clock; readings keep
  // their virtual detection times (fusion TTLs never lapse mid-run because
  // the virtual clock stands still while the real-time schedule executes).
  util::VirtualClock clock;
  const std::size_t needed =
      static_cast<std::size_t>((ingestRate * duration) * 1.25) + 1000;
  std::vector<db::SensorReading> trace;
  trace.reserve(needed);
  std::vector<db::SensorReading> tick;
  while (trace.size() < needed) {
    clock.advance(util::sec(1));
    tick.clear();
    population.step(clock.now(), util::sec(1), tick);
    trace.insert(trace.end(), tick.begin(), tick.end());
  }

  // --- live cluster ----------------------------------------------------------
  core::RegistryServer registry;
  std::vector<std::unique_ptr<cluster::ShardHost>> hosts;
  for (std::size_t i = 0; i < shards; ++i) {
    cluster::ShardHost::Options opts;
    opts.spaceToken = "s" + std::to_string(i);
    auto host = std::make_unique<cluster::ShardHost>(clock, city.universe, city.name,
                                                     "127.0.0.1", registry.port(), opts);
    city.installFrames(host->core().database().frames());
    city.populate(host->core().database());
    citysim::CitySensors::registerAll(host->core().database());
    host->start();
    hosts.push_back(std::move(host));
  }
  cluster::ClusterLocationService::Options routerOpts;
  routerOpts.partitioning = cluster::ClusterLocationService::Partitioning::Spatial;
  routerOpts.universe = city.universe;
  routerOpts.regionSlack = 16;  // GPS detection radius is the widest evidence
  cluster::ClusterLocationService router("127.0.0.1", registry.port(), routerOpts);

  // Crowd-monitoring rule: overcrowding alarm on the event venue. The 0.35
  // threshold sits below the ~0.49 a single small-box reading fuses to under
  // the uniform-area prior, so GPS-only members count.
  AlarmTimes alarm;
  const std::size_t alarmLimit = envSize("CITY_ALARM_LIMIT", 32);
  router.subscribeDensity(venue->rect, 0.35, alarmLimit,
                          [&](const core::DensityNotification& n) { alarm.onNotify(n); });

  // Watched regions for the poll class: every street and plaza.
  std::vector<geo::Rect> watched;
  for (const citysim::OutdoorRegion& region : city.outdoors) watched.push_back(region.rect);

  // Locate targets: objects that actually appear in the trace.
  std::vector<util::MobileObjectId> targets;
  for (std::size_t i = 0; i < trace.size(); i += 7) targets.push_back(trace[i].mobileObjectId);

  // Warm the cluster so locate/region-poll see a populated world.
  for (std::size_t i = 0; i < std::min<std::size_t>(trace.size(), 2000); ++i)
    router.ingest(trace[i]);

  // --- open-loop schedule ----------------------------------------------------
  std::atomic<std::uint64_t> regionMembers{0};
  citysim::OpenLoopLoadGen gen(duration);
  gen.addClass({"ingest", ingestRate, 1, [&](std::uint64_t seq) {
                  const db::SensorReading& r = trace[seq % trace.size()];
                  alarm.stamp(r.mobileObjectId.str(), SteadyClock::now());
                  router.ingest(r);
                }});
  gen.addClass({"locate", locateRate, 1, [&](std::uint64_t seq) {
                  (void)router.locate(targets[seq % targets.size()]);
                }});
  gen.addClass({"region_poll", pollRate, 1, [&](std::uint64_t seq) {
                  const auto members =
                      router.objectsInRegion(watched[seq % watched.size()], 0.35);
                  regionMembers.fetch_add(members.size(), std::memory_order_relaxed);
                }});
  std::vector<citysim::OpClassResult> results = gen.run();

  // Alarm latency rides along as a fourth, event-driven class.
  {
    citysim::OpClassResult alarmResult;
    alarmResult.name = "alarm_latency";
    alarmResult.durationSeconds = duration;
    alarmResult.completed = alarm.latency.count();
    alarmResult.corrected = alarm.latency;
    alarmResult.service = alarm.latency;
    results.push_back(std::move(alarmResult));
  }

  const auto stats = router.stats();
  for (const citysim::OpClassResult& r : results) {
    std::printf("%-14s completed=%8llu achieved=%8.1f/s corrected p50/p99/p999 = "
                "%.3f/%.3f/%.3f ms  service p99 = %.3f ms\n",
                r.name.c_str(), static_cast<unsigned long long>(r.completed),
                r.achievedRate(), r.corrected.valueAtPercentile(50) / 1e6,
                r.corrected.valueAtPercentile(99) / 1e6,
                r.corrected.valueAtPercentile(99.9) / 1e6,
                r.service.valueAtPercentile(99) / 1e6);
  }
  std::printf("agents=%zu shards=%zu alarms=%llu density_samples=%llu region_members=%llu "
              "dropped_ingest=%llu\n",
              agents, shards, static_cast<unsigned long long>(alarm.alarms.load()),
              static_cast<unsigned long long>(alarm.latency.count()),
              static_cast<unsigned long long>(regionMembers.load()),
              static_cast<unsigned long long>(stats.droppedIngestReadings));

  if (!outPath.empty()) {
    std::FILE* f = std::fopen(outPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_city: cannot write %s\n", outPath.c_str());
      return 1;
    }
    std::string json = "{\n  \"context\": {\n";
    char buf[256];
    std::snprintf(buf, sizeof buf, "    \"executable\": \"%s\",\n", argv[0]);
    json += buf;
    std::snprintf(buf, sizeof buf, "    \"num_cpus\": %u,\n",
                  std::thread::hardware_concurrency());
    json += buf;
    std::snprintf(buf, sizeof buf, "    \"hardware_concurrency\": \"%u\",\n",
                  std::thread::hardware_concurrency());
    json += buf;
    std::snprintf(buf, sizeof buf,
                  "    \"city_agents\": %zu,\n    \"city_shards\": %zu,\n"
                  "    \"open_loop\": true\n  },\n  \"benchmarks\": [\n",
                  agents, shards);
    json += buf;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const citysim::OpClassResult& r = results[i];
      json += "    {\n";
      std::snprintf(buf, sizeof buf,
                    "      \"name\": \"city/%s\",\n      \"run_name\": \"city/%s\",\n",
                    r.name.c_str(), r.name.c_str());
      json += buf;
      json += "      \"run_type\": \"iteration\",\n      \"repetitions\": 1,\n"
              "      \"repetition_index\": 0,\n      \"threads\": 1,\n";
      std::snprintf(buf, sizeof buf, "      \"iterations\": %llu,\n",
                    static_cast<unsigned long long>(std::max<std::uint64_t>(r.completed, 1)));
      json += buf;
      // The gated number: corrected p99 (the honest tail, not the mean).
      std::snprintf(buf, sizeof buf,
                    "      \"real_time\": %llu,\n      \"cpu_time\": %llu,\n"
                    "      \"time_unit\": \"ns\",\n",
                    static_cast<unsigned long long>(r.corrected.valueAtPercentile(99)),
                    static_cast<unsigned long long>(r.service.valueAtPercentile(99)));
      json += buf;
      json += "      \"counters\": {\n";
      appendHistogram(json, "corrected", r.corrected);
      appendHistogram(json, "service", r.service);
      std::snprintf(buf, sizeof buf,
                    "        \"target_rate\": %.1f,\n        \"achieved_rate\": %.1f\n",
                    r.targetRate, r.achievedRate());
      json += buf;
      json += "      }\n";
      json += (i + 1 < results.size()) ? "    },\n" : "    }\n";
    }
    json += "  ]\n}\n";
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());
  }
  return 0;
}
