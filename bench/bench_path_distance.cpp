// §4.6 distance measures: Euclidean vs path distance, and path-query cost
// versus building size (rooms in the connectivity graph).
#include <benchmark/benchmark.h>

#include "reasoning/connectivity.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {
reasoning::ConnectivityGraph buildingGraph(int floors) {
  sim::Blueprint bp = sim::generateBlueprint({.floors = floors, .roomsPerSide = 8});
  auto graph = bp.connectivity();
  // Stitch consecutive floors with a stairwell between their corridors.
  for (int f = 1; f < floors; ++f) {
    std::string a = std::to_string(f) + "00";
    std::string b = std::to_string(f + 1) + "00";
    graph.connect(a, b, graph.regionRect(a).center());
  }
  return graph;
}
}  // namespace

static void BM_EuclideanDistance(benchmark::State& state) {
  auto graph = buildingGraph(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.euclideanDistance("101", "158"));
  }
}
BENCHMARK(BM_EuclideanDistance);

static void BM_PathDistanceSameFloor(benchmark::State& state) {
  auto graph = buildingGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.pathDistance("101", "158"));
  }
  state.SetLabel(std::to_string(graph.regionCount()) + " regions");
}
BENCHMARK(BM_PathDistanceSameFloor)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

static void BM_PathDistanceAcrossBuilding(benchmark::State& state) {
  int floors = static_cast<int>(state.range(0));
  auto graph = buildingGraph(floors);
  std::string far = std::to_string(floors) + "58";
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.pathDistance("101", far));
  }
  state.SetLabel(std::to_string(graph.regionCount()) + " regions");
}
BENCHMARK(BM_PathDistanceAcrossBuilding)->Arg(2)->Arg(8)->Arg(32);

static void BM_RouteWithRegionSequence(benchmark::State& state) {
  auto graph = buildingGraph(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.route("101", "458"));
  }
}
BENCHMARK(BM_RouteWithRegionSequence);

static void BM_RouteAStarCrossBuilding(benchmark::State& state) {
  // Same query as Dijkstra's cross-building case: the Euclidean heuristic
  // should cut expanded states on long corridor-heavy routes.
  int floors = static_cast<int>(state.range(0));
  auto graph = buildingGraph(floors);
  std::string far = std::to_string(floors) + "58";
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.routeAStar("101", far));
  }
  state.SetLabel(std::to_string(graph.regionCount()) + " regions");
}
BENCHMARK(BM_RouteAStarCrossBuilding)->Arg(2)->Arg(8)->Arg(32);

static void BM_RegionAtPoint(benchmark::State& state) {
  auto graph = buildingGraph(static_cast<int>(state.range(0)));
  util::Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.regionAt({rng.uniform(0, 600), rng.uniform(0, 60)}));
  }
}
BENCHMARK(BM_RegionAtPoint)->Arg(1)->Arg(16);
