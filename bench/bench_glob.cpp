// GLOB parse/format and coordinate-frame conversion micro-benchmarks (§3):
// these sit on every symbolic query and every cross-frame reading ingest.
#include <benchmark/benchmark.h>

#include "glob/frame.hpp"
#include "glob/glob.hpp"

using namespace mw;

static void BM_GlobParseSymbolic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(glob::Glob::parse("SC/3/3216/lightswitch1"));
  }
}
BENCHMARK(BM_GlobParseSymbolic);

static void BM_GlobParseCoordinatePolygon(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(glob::Glob::parse("SC/3/(45,12),(45,40),(65,40),(65,12)"));
  }
}
BENCHMARK(BM_GlobParseCoordinatePolygon);

static void BM_GlobFormat(benchmark::State& state) {
  glob::Glob g = glob::Glob::parse("SC/3/3216/(12,3,4)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.str());
  }
}
BENCHMARK(BM_GlobFormat);

static void BM_FrameConvertDeepHierarchy(benchmark::State& state) {
  // Building -> floor -> room -> desk, converting desk-local to building.
  glob::FrameTree tree;
  tree.addRoot("SC");
  std::string parent = "SC";
  for (int depth = 0; depth < state.range(0); ++depth) {
    std::string name = parent + "/f" + std::to_string(depth);
    tree.addFrame(name, parent, glob::Transform2{{10.0 + depth, 5.0}, 0.1});
    parent = name;
  }
  geo::Point2 p{1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.toRoot(parent, p));
  }
  state.SetLabel(std::to_string(state.range(0)) + " levels");
}
BENCHMARK(BM_FrameConvertDeepHierarchy)->Arg(2)->Arg(4)->Arg(8);

static void BM_FrameConvertRect(benchmark::State& state) {
  glob::FrameTree tree;
  tree.addRoot("SC");
  tree.addFrame("SC/3", "SC", glob::Transform2{{100, 50}, 0});
  tree.addFrame("SC/3/3216", "SC/3", glob::Transform2{{45, 12}, 0});
  geo::Rect r = geo::Rect::fromOrigin({1, 1}, 5, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.convertRect("SC/3/3216", "SC", r));
  }
}
BENCHMARK(BM_FrameConvertRect);
