// Sharded batch ingest: throughput of LocationService::ingestBatch at
// 1/2/4/8 shards, with and without live subscriptions. One shard is the
// sequential baseline; scaling beyond it depends on the host's core count —
// recorded in the JSON context as "hardware_concurrency" so per-host curves
// are interpretable. Shards append to the reading store's stripes without a
// database-wide lock; the per-iteration counters report how often they still
// met on a per-object writer lock.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"
#include "sim/blueprint.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

struct Fixture {
  util::VirtualClock clock;
  sim::Blueprint bp;
  std::unique_ptr<db::SpatialDatabase> database;
  std::unique_ptr<core::LocationService> service;

  explicit Fixture(int sensors = 2)
      : bp(sim::generateBlueprint({.floors = 2, .roomsPerSide = 8})) {
    database = std::make_unique<db::SpatialDatabase>(clock, bp.universe, bp.frames());
    bp.populate(*database);
    service = std::make_unique<core::LocationService>(clock, *database);
    for (int s = 0; s < sensors; ++s) {
      db::SensorMeta meta;
      meta.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
      meta.sensorType = "Ubisense";
      meta.errorSpec = quality::ubisenseSpec(1.0);
      meta.scaleMisidentifyByArea = true;
      meta.quality.ttl = util::minutes(10);
      database->registerSensor(meta);
    }
  }

  /// One reading per (person, sensor), people scattered over the universe.
  std::vector<db::SensorReading> makeBatch(int people, int sensors) {
    util::Rng rng{7};
    std::vector<db::SensorReading> batch;
    batch.reserve(static_cast<std::size_t>(people) * sensors);
    for (int p = 0; p < people; ++p) {
      geo::Point2 where{rng.uniform(10, bp.universe.hi().x - 10),
                        rng.uniform(10, bp.universe.hi().y - 10)};
      for (int s = 0; s < sensors; ++s) {
        db::SensorReading r;
        r.sensorId = util::SensorId{"ubi-" + std::to_string(s)};
        r.sensorType = "Ubisense";
        r.mobileObjectId = util::MobileObjectId{"p" + std::to_string(p)};
        r.location = {where.x + rng.gaussian(0, 0.2), where.y + rng.gaussian(0, 0.2)};
        r.detectionRadius = 0.5 + s;
        r.detectionTime = clock.now();
        batch.push_back(std::move(r));
      }
    }
    return batch;
  }
};

}  // namespace

// Pure storage path: no subscriptions, so each ingest is an insert + trigger
// scan only (no fusion).
static void BM_IngestBatch(benchmark::State& state) {
  Fixture f;
  f.service->setIngestShards(static_cast<std::size_t>(state.range(0)));
  std::vector<db::SensorReading> batch = f.makeBatch(64, 2);
  for (auto _ : state) {
    for (auto& r : batch) r.detectionTime = f.clock.now();
    f.service->ingestBatch(batch);
    f.clock.advance(util::msec(100));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
  state.counters["writer_contentions"] =
      static_cast<double>(f.service->ingestWriterContentions());
  state.counters["snapshot_retries"] = static_cast<double>(f.service->ingestSnapshotRetries());
  state.SetLabel(std::to_string(state.range(0)) + " shards");
}
BENCHMARK(BM_IngestBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// With live subscriptions each reading that touches a subscribed region pays
// a fused evaluation — the dominant per-reading cost, and the one the shards
// parallelize.
static void BM_IngestBatchWithSubscriptions(benchmark::State& state) {
  Fixture f;
  f.service->setIngestShards(static_cast<std::size_t>(state.range(0)));
  // A wall-to-wall subscription: every reading triggers an evaluation.
  f.service->subscribe({f.bp.universe, std::nullopt, 0.01, std::nullopt, false,
                        [](const core::Notification&) {}});
  std::vector<db::SensorReading> batch = f.makeBatch(64, 2);
  for (auto _ : state) {
    for (auto& r : batch) r.detectionTime = f.clock.now();
    f.service->ingestBatch(batch);
    f.clock.advance(util::msec(100));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
  state.counters["writer_contentions"] =
      static_cast<double>(f.service->ingestWriterContentions());
  state.counters["snapshot_retries"] = static_cast<double>(f.service->ingestSnapshotRetries());
  state.SetLabel(std::to_string(state.range(0)) + " shards, 1 region sub");
}
BENCHMARK(BM_IngestBatchWithSubscriptions)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Sequential loop over the same batch for an apples-to-apples baseline
// against BM_IngestBatch (shards=1 goes through the same code path minus the
// pool hop).
static void BM_IngestSequentialLoop(benchmark::State& state) {
  Fixture f;
  std::vector<db::SensorReading> batch = f.makeBatch(64, 2);
  for (auto _ : state) {
    for (auto& r : batch) {
      r.detectionTime = f.clock.now();
      f.service->ingest(r);
    }
    f.clock.advance(util::msec(100));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_IngestSequentialLoop)->UseRealTime();

// Custom main: stamp the host's core count into the JSON context so the
// shard-scaling curve in BENCH_ingest.json is interpretable per host (a
// 1-core runner cannot show >1x scaling no matter what the store does).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
