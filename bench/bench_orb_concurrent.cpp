// Concurrent MicroOrb serving path: multi-client mixed read/ingest workload
// and wire-batched ingest over TCP loopback. Lane count 0 is the historical
// single-threaded POA (inline on the reader thread); 1 and 4 exercise the
// dispatcher. Batch size 1 is the per-reading ingestAsync baseline the
// BatchingIngestClient has to beat. p50/p99 call latencies and the server's
// serving-path stats land in the JSON counters; "hardware_concurrency" in
// the context makes the lane curve interpretable per host.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"
#include "core/remote.hpp"
#include "orb/rpc.hpp"
#include "orb/tcp.hpp"
#include "quality/error_model.hpp"
#include "spatialdb/database.hpp"
#include "util/rng.hpp"

using namespace mw;

namespace {

/// The serving stack assembled by hand (instead of core::Middlewhere) so the
/// lane count is a benchmark axis.
struct ServerFixture {
  util::VirtualClock clock;
  db::SpatialDatabase database;
  core::LocationService service;
  orb::RpcServer server;
  std::unique_ptr<orb::TcpListener> listener;

  explicit ServerFixture(std::size_t lanes)
      : database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC"),
        service(clock, database) {
    db::SpatialObjectRow room;
    room.id = util::SpatialObjectId{"roomA"};
    room.globPrefix = "SC";
    room.objectType = db::ObjectType::Room;
    room.geometryType = db::GeometryType::Polygon;
    room.points = {{0, 0}, {40, 0}, {40, 40}, {0, 40}};
    database.addObject(room);

    db::SensorMeta ubi;
    ubi.sensorId = util::SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = util::minutes(10);
    database.registerSensor(ubi);

    core::exposeLocationService(server, service);
    if (lanes > 0) server.enableDispatcher(lanes);
    listener = std::make_unique<orb::TcpListener>(
        0, [this](std::shared_ptr<orb::Transport> t) { server.serve(std::move(t)); });
  }

  [[nodiscard]] std::uint16_t port() const { return listener->port(); }

  db::SensorReading makeReading(const std::string& object, geo::Point2 where) const {
    db::SensorReading r;
    r.sensorId = util::SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = util::MobileObjectId{object};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    return r;
  }

  /// Spins until `expected` readings have been accepted (oneway traffic).
  void drainTo(std::uint64_t expected) const {
    while (service.ingestedReadings() < expected) std::this_thread::yield();
  }
};

/// Live thread count of this process (reads /proc/self/status).
double processThreads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::stod(line.substr(8));
  }
  return 0.0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void exportServerStats(benchmark::State& state, const ServerFixture& f) {
  const auto stats = f.server.stats();
  state.counters["dispatched_requests"] = static_cast<double>(stats.dispatchedRequests);
  state.counters["inline_requests"] = static_cast<double>(stats.inlineRequests);
  state.counters["undecodable_frames"] = static_cast<double>(stats.undecodableFrames);
  state.counters["unknown_method_errors"] = static_cast<double>(stats.unknownMethodErrors);
  state.counters["oneway_exceptions"] = static_cast<double>(stats.onewayExceptions);
}

}  // namespace

// Mixed workload: half the client threads issue blocking pull queries
// (locate/probabilityInRegion), half push readings (blocking ingest, so every
// op is a measured round trip). Arg = executor lanes; 0 = inline POA.
static void BM_MixedRemoteWorkload(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  ServerFixture f(lanes);

  constexpr int kThreads = 4;  // 2 readers + 2 ingesters
  constexpr int kOpsPerThread = 64;
  std::vector<double> latenciesUs;

  for (auto _ : state) {
    std::vector<std::vector<double>> perThread(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&f, &perThread, t] {
        core::RemoteLocationClient client(
            std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", f.port())));
        const bool reader = (t % 2 == 0);
        const std::string object = "p" + std::to_string(t / 2);
        auto& lat = perThread[static_cast<std::size_t>(t)];
        lat.reserve(kOpsPerThread);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const auto start = std::chrono::steady_clock::now();
          if (reader) {
            if (i % 2 == 0) {
              benchmark::DoNotOptimize(client.locate(util::MobileObjectId{object}));
            } else {
              benchmark::DoNotOptimize(client.probabilityInRegion(
                  util::MobileObjectId{object}, geo::Rect::fromOrigin({0, 0}, 40, 40)));
            }
          } else {
            client.ingest(f.makeReading(object, {5.0 + t, 5.0 + (i % 30)}));
          }
          const auto stop = std::chrono::steady_clock::now();
          lat.push_back(std::chrono::duration<double, std::micro>(stop - start).count());
        }
      });
    }
    for (auto& w : workers) w.join();
    for (auto& lat : perThread) {
      latenciesUs.insert(latenciesUs.end(), lat.begin(), lat.end());
    }
  }

  std::sort(latenciesUs.begin(), latenciesUs.end());
  state.counters["p50_us"] = percentile(latenciesUs, 0.50);
  state.counters["p99_us"] = percentile(latenciesUs, 0.99);
  exportServerStats(state, f);
  state.SetItemsProcessed(state.iterations() * kThreads * kOpsPerThread);
  state.SetLabel(std::to_string(lanes) + " lanes");
}
BENCHMARK(BM_MixedRemoteWorkload)->Arg(0)->Arg(1)->Arg(4)->UseRealTime();

// End-to-end ingest throughput: readings pushed over the wire until the
// service has processed all of them. Batch size 1 sends one oneway frame per
// reading (the ingestAsync path); larger sizes coalesce through the
// BatchingIngestClient into single "ingestBatch" frames.
static void BM_RemoteIngestBatched(benchmark::State& state) {
  const auto batchSize = static_cast<std::size_t>(state.range(0));
  ServerFixture f(4);
  core::RemoteLocationClient client(
      std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", f.port())));

  constexpr std::uint64_t kReadings = 1024;
  util::Rng rng{7};
  std::vector<db::SensorReading> readings;
  readings.reserve(kReadings);
  for (std::uint64_t i = 0; i < kReadings; ++i) {
    readings.push_back(f.makeReading("p" + std::to_string(i % 16),
                                     {rng.uniform(1, 39), rng.uniform(1, 39)}));
  }

  std::uint64_t sent = 0;
  for (auto _ : state) {
    if (batchSize <= 1) {
      for (const auto& r : readings) client.ingestAsync(r);
    } else {
      auto rpc = std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", f.port()));
      core::BatchingIngestClient::Options opts;
      opts.maxBatch = batchSize;
      opts.maxDelay = util::msec(50);
      core::BatchingIngestClient batcher(rpc, opts);
      for (const auto& r : readings) batcher.ingest(r);
      batcher.flush();
    }
    sent += kReadings;
    f.drainTo(sent);  // throughput includes server-side processing
  }

  exportServerStats(state, f);
  state.SetItemsProcessed(static_cast<std::int64_t>(sent));
  state.SetLabel(batchSize <= 1 ? "per-reading ingestAsync"
                                : "batch " + std::to_string(batchSize));
}
BENCHMARK(BM_RemoteIngestBatched)->Arg(1)->Arg(16)->Arg(64)->Arg(256)->UseRealTime();

// Connection-count axis: C persistent client connections served by the epoll
// reactor, with 4 caller threads issuing blocking locate round trips spread
// across all of them. Before the reactor this cost O(C) reader threads; the
// "process_threads" counter is the evidence that it no longer does — it stays
// flat from 1 to 256 connections (event loops are clamp(cores,1,4)).
static void BM_ConnectionScaling(benchmark::State& state) {
  const auto connections = static_cast<std::size_t>(state.range(0));
  ServerFixture f(2);
  f.service.ingest(f.makeReading("p0", {5.0, 5.0}));

  std::vector<std::unique_ptr<core::RemoteLocationClient>> pool;
  pool.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    pool.push_back(std::make_unique<core::RemoteLocationClient>(
        std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", f.port()))));
  }
  state.counters["process_threads"] = processThreads();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 64;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&pool, connections, t] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          auto& client = *pool[(static_cast<std::size_t>(t) * kOpsPerThread +
                                static_cast<std::size_t>(i)) %
                               connections];
          benchmark::DoNotOptimize(client.locate(util::MobileObjectId{"p0"}));
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  exportServerStats(state, f);
  state.SetItemsProcessed(state.iterations() * kThreads * kOpsPerThread);
  state.SetLabel(std::to_string(connections) + " connection(s)");
}
BENCHMARK(BM_ConnectionScaling)->Arg(1)->Arg(16)->Arg(64)->Arg(256)->UseRealTime();

// Custom main: record the host's core count next to the lane curve.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
