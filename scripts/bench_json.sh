#!/usr/bin/env bash
# Writes the committed machine-readable benchmark artifacts:
#   BENCH_query_latency.json  — cached/uncached/concurrent query latency
#   BENCH_ingest.json         — sharded batch-ingest throughput
#   BENCH_region_poll.json    — region population cache repolling
#   BENCH_orb.json            — concurrent ORB serving path + wire batches
#   BENCH_cluster.json        — sharded cluster routed + scatter-gather paths
#   BENCH_triggers.json       — standing-rule scaling (rule axis 10^3..10^6)
#   BENCH_city.json           — open-loop city workload vs a 4-shard spatial
#                               cluster (corrected p99 per operation class)
#
# Usage: scripts/bench_json.sh [build-dir] [out-dir]
# Or via CMake: cmake --build build --target bench_json
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"

run() {
  local bin="$1" out="$2"
  if [[ ! -x "$bin" ]]; then
    echo "bench_json.sh: missing $bin (build the bench targets first)" >&2
    exit 1
  fi
  "$bin" --benchmark_out="$out" --benchmark_out_format=json \
         --benchmark_min_time=0.05
  echo "wrote $out"
}

run "$BUILD_DIR/bench/bench_query_latency" "$OUT_DIR/BENCH_query_latency.json"
run "$BUILD_DIR/bench/bench_ingest_parallel" "$OUT_DIR/BENCH_ingest.json"
run "$BUILD_DIR/bench/bench_region_poll" "$OUT_DIR/BENCH_region_poll.json"
run "$BUILD_DIR/bench/bench_orb_concurrent" "$OUT_DIR/BENCH_orb.json"
run "$BUILD_DIR/bench/bench_cluster" "$OUT_DIR/BENCH_cluster.json"
run "$BUILD_DIR/bench/bench_triggers_scale" "$OUT_DIR/BENCH_triggers.json"
run "$BUILD_DIR/bench/bench_city" "$OUT_DIR/BENCH_city.json"
