#!/usr/bin/env python3
"""Regression gate for the committed benchmark artifacts.

Compares freshly produced google-benchmark JSON (bench-json/BENCH_*.json from
the CI bench-smoke job, or a local scripts/bench_json.sh run) against the
baselines committed at the repo root. Per benchmark, the gate is on real_time:

  slower by more than --warn (default 15%)  ->  WARN
  slower by more than --fail (default 40%)  ->  FAIL (nonzero exit)

Benchmarks compare honestly only on comparable hosts, so the gate is keyed on
the "hardware_concurrency" context the benches record (scripts/bench_json.sh
baselines come from a developer machine; CI runners differ): when the widths
disagree, FAILs are downgraded to report-only warnings instead of failing the
build on hardware we never measured.

Usage:
  scripts/bench_compare.py --baseline . --current bench-json \
      [--warn 0.15] [--fail 0.40] [--summary "$GITHUB_STEP_SUMMARY"]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

OK, WARN, FAIL = "ok", "warn", "FAIL"


def load_benchmarks(path: pathlib.Path) -> tuple[dict[str, float], str]:
    """Returns {benchmark name: real_time in ns} and the context's
    hardware_concurrency ("" when the file predates the context field)."""
    with path.open() as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue  # compare raw runs, not mean/median/stddev rows
        unit = TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
        if unit is None or "real_time" not in entry:
            continue
        times[entry["name"]] = float(entry["real_time"]) * unit
    context = doc.get("context", {})
    width = context.get("hardware_concurrency") or str(context.get("num_cpus", ""))
    return times, str(width)


def fmt_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.0f} ns"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=".", help="dir holding committed BENCH_*.json")
    parser.add_argument("--current", default="bench-json", help="dir holding fresh BENCH_*.json")
    parser.add_argument("--warn", type=float, default=0.15, help="warn when slower by this ratio")
    parser.add_argument("--fail", type=float, default=0.40, help="fail when slower by this ratio")
    parser.add_argument("--summary", default="", help="markdown summary file to append to")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_compare: no BENCH_*.json baselines under {baseline_dir}", file=sys.stderr)
        return 2

    rows = []  # (status, artifact, benchmark, baseline ns, current ns, delta)
    comparable = True
    notes = []
    for base_path in baselines:
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            rows.append((FAIL, base_path.name, "(artifact missing from current run)", 0.0, 0.0, 0.0))
            continue
        base, base_width = load_benchmarks(base_path)
        cur, cur_width = load_benchmarks(cur_path)
        if base_width and cur_width and base_width != cur_width:
            comparable = False
            notes.append(
                f"{base_path.name}: hardware_concurrency {base_width} (baseline) vs "
                f"{cur_width} (current) — not comparable, report-only"
            )
        for name, base_ns in sorted(base.items()):
            if name not in cur:
                rows.append((FAIL, base_path.name, f"{name} (missing)", base_ns, 0.0, 0.0))
                continue
            delta = cur[name] / base_ns - 1.0
            status = FAIL if delta > args.fail else WARN if delta > args.warn else OK
            rows.append((status, base_path.name, name, base_ns, cur[name], delta))
        for name in sorted(set(cur) - set(base)):
            notes.append(f"{cur_path.name}: new benchmark {name} (no baseline yet)")

    hard_fail = any(status == FAIL for status, *_ in rows) and comparable
    if not comparable:
        rows = [(WARN if status == FAIL else status, *rest) for status, *rest in rows]

    lines = ["# Bench regression check", ""]
    if notes:
        lines += [f"> {note}" for note in notes] + [""]
    lines += [
        "| status | artifact | benchmark | baseline | current | delta |",
        "|---|---|---|---:|---:|---:|",
    ]
    for status, artifact, name, base_ns, cur_ns, delta in rows:
        if status == OK and len(rows) > 40:
            continue  # keep huge tables to the interesting rows
        lines.append(
            f"| {status} | {artifact} | {name} | {fmt_ns(base_ns)} | "
            f"{fmt_ns(cur_ns)} | {delta:+.1%} |"
        )
    counts = {s: sum(1 for status, *_ in rows if status == s) for s in (OK, WARN, FAIL)}
    lines += ["", f"{counts[OK]} ok, {counts[WARN]} warn, {counts[FAIL]} fail "
                  f"(warn > {args.warn:.0%} slower, fail > {args.fail:.0%} slower)"]
    report = "\n".join(lines)
    print(report)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(report + "\n")

    return 1 if hard_fail else 0


if __name__ == "__main__":
    sys.exit(main())
