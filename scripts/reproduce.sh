#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every paper table and
# figure, and run the example applications. Outputs land in test_output.txt
# and bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when it is installed, but don't require it — fall back to
# CMake's default generator (usually Makefiles) otherwise.
GEN=()
if command -v ninja >/dev/null 2>&1; then
  GEN=(-G Ninja)
fi

cmake -B build "${GEN[@]}"
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Concurrency discipline under ThreadSanitizer: a separate build tree so the
# instrumented binaries never mix with the regular ones. Only the suites that
# exercise threads are run (the rest are covered above).
cmake -B build-tsan "${GEN[@]}" -DMW_SANITIZE=thread
cmake --build build-tsan
ctest --test-dir build-tsan \
      -R 'Concurrency|ContinuousQuery|FusionCache|IngestBatch|WorkerPool|RegionCache|ReadingStore|RpcDispatcher|Cluster|RpcTimeout|EventLoop|ShmRing|OpenLoopLoadGen|CrowdMonitor|DensityRules' \
      --output-on-failure 2>&1 | tee tsan_output.txt

# Machine-readable benchmark artifacts committed at the repo root.
scripts/bench_json.sh build .

{
  for b in build/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "===== $b ====="
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo "===== examples ====="
for e in quickstart follow_me anywhere_messaging location_notifications \
         personnel_locator route_finder campus_handoff ops_dashboard \
         cluster_demo city_crowd_demo; do
  echo "--- $e ---"
  "build/examples/$e"
done
