# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/glob_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/spatialdb_test[1]_include.cmake")
include("/root/repo/build/tests/spatialdb_history_test[1]_include.cmake")
include("/root/repo/build/tests/spatialdb_query_language_test[1]_include.cmake")
include("/root/repo/build/tests/spatialdb_snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/lattice_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/reasoning_test[1]_include.cmake")
include("/root/repo/build/tests/orb_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/core_region_relations_test[1]_include.cmake")
include("/root/repo/build/tests/core_remote_registry_test[1]_include.cmake")
include("/root/repo/build/tests/core_reading_log_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/adapters_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
