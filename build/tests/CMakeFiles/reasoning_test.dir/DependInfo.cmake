
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reasoning_connectivity_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_connectivity_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_connectivity_test.cpp.o.d"
  "/root/repo/tests/reasoning_datalog_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_datalog_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_datalog_test.cpp.o.d"
  "/root/repo/tests/reasoning_passages_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_passages_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_passages_test.cpp.o.d"
  "/root/repo/tests/reasoning_rcc8_polygon_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_rcc8_polygon_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_rcc8_polygon_test.cpp.o.d"
  "/root/repo/tests/reasoning_rcc8_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_rcc8_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_rcc8_test.cpp.o.d"
  "/root/repo/tests/reasoning_relations_test.cpp" "tests/CMakeFiles/reasoning_test.dir/reasoning_relations_test.cpp.o" "gcc" "tests/CMakeFiles/reasoning_test.dir/reasoning_relations_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoning/CMakeFiles/mw_reasoning.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mw_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
