file(REMOVE_RECURSE
  "CMakeFiles/reasoning_test.dir/reasoning_connectivity_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_connectivity_test.cpp.o.d"
  "CMakeFiles/reasoning_test.dir/reasoning_datalog_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_datalog_test.cpp.o.d"
  "CMakeFiles/reasoning_test.dir/reasoning_passages_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_passages_test.cpp.o.d"
  "CMakeFiles/reasoning_test.dir/reasoning_rcc8_polygon_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_rcc8_polygon_test.cpp.o.d"
  "CMakeFiles/reasoning_test.dir/reasoning_rcc8_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_rcc8_test.cpp.o.d"
  "CMakeFiles/reasoning_test.dir/reasoning_relations_test.cpp.o"
  "CMakeFiles/reasoning_test.dir/reasoning_relations_test.cpp.o.d"
  "reasoning_test"
  "reasoning_test.pdb"
  "reasoning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reasoning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
