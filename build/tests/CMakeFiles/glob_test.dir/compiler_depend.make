# Empty compiler generated dependencies file for glob_test.
# This may be replaced when dependencies are built.
