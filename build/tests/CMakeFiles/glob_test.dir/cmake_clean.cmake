file(REMOVE_RECURSE
  "CMakeFiles/glob_test.dir/glob_frame_test.cpp.o"
  "CMakeFiles/glob_test.dir/glob_frame_test.cpp.o.d"
  "CMakeFiles/glob_test.dir/glob_test.cpp.o"
  "CMakeFiles/glob_test.dir/glob_test.cpp.o.d"
  "glob_test"
  "glob_test.pdb"
  "glob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
