
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fusion_engine_test.cpp" "tests/CMakeFiles/fusion_test.dir/fusion_engine_test.cpp.o" "gcc" "tests/CMakeFiles/fusion_test.dir/fusion_engine_test.cpp.o.d"
  "/root/repo/tests/fusion_math_test.cpp" "tests/CMakeFiles/fusion_test.dir/fusion_math_test.cpp.o" "gcc" "tests/CMakeFiles/fusion_test.dir/fusion_math_test.cpp.o.d"
  "/root/repo/tests/fusion_prior_test.cpp" "tests/CMakeFiles/fusion_test.dir/fusion_prior_test.cpp.o" "gcc" "tests/CMakeFiles/fusion_test.dir/fusion_prior_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mw_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
