file(REMOVE_RECURSE
  "CMakeFiles/spatialdb_test.dir/spatialdb_test.cpp.o"
  "CMakeFiles/spatialdb_test.dir/spatialdb_test.cpp.o.d"
  "spatialdb_test"
  "spatialdb_test.pdb"
  "spatialdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatialdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
