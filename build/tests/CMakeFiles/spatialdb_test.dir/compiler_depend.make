# Empty compiler generated dependencies file for spatialdb_test.
# This may be replaced when dependencies are built.
