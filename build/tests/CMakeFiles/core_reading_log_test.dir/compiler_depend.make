# Empty compiler generated dependencies file for core_reading_log_test.
# This may be replaced when dependencies are built.
