file(REMOVE_RECURSE
  "CMakeFiles/core_reading_log_test.dir/core_reading_log_test.cpp.o"
  "CMakeFiles/core_reading_log_test.dir/core_reading_log_test.cpp.o.d"
  "core_reading_log_test"
  "core_reading_log_test.pdb"
  "core_reading_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reading_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
