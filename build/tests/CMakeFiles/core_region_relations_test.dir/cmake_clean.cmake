file(REMOVE_RECURSE
  "CMakeFiles/core_region_relations_test.dir/core_region_relations_test.cpp.o"
  "CMakeFiles/core_region_relations_test.dir/core_region_relations_test.cpp.o.d"
  "core_region_relations_test"
  "core_region_relations_test.pdb"
  "core_region_relations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_region_relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
