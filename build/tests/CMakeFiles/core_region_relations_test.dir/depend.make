# Empty dependencies file for core_region_relations_test.
# This may be replaced when dependencies are built.
