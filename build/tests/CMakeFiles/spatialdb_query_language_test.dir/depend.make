# Empty dependencies file for spatialdb_query_language_test.
# This may be replaced when dependencies are built.
