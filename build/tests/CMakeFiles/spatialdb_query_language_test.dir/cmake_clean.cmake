file(REMOVE_RECURSE
  "CMakeFiles/spatialdb_query_language_test.dir/spatialdb_query_language_test.cpp.o"
  "CMakeFiles/spatialdb_query_language_test.dir/spatialdb_query_language_test.cpp.o.d"
  "spatialdb_query_language_test"
  "spatialdb_query_language_test.pdb"
  "spatialdb_query_language_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatialdb_query_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
