
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spatialdb_query_language_test.cpp" "tests/CMakeFiles/spatialdb_query_language_test.dir/spatialdb_query_language_test.cpp.o" "gcc" "tests/CMakeFiles/spatialdb_query_language_test.dir/spatialdb_query_language_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spatialdb/CMakeFiles/mw_spatialdb.dir/DependInfo.cmake"
  "/root/repo/build/src/glob/CMakeFiles/mw_glob.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mw_quality.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
