
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geometry_point_test.cpp" "tests/CMakeFiles/geometry_test.dir/geometry_point_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_test.dir/geometry_point_test.cpp.o.d"
  "/root/repo/tests/geometry_polygon_test.cpp" "tests/CMakeFiles/geometry_test.dir/geometry_polygon_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_test.dir/geometry_polygon_test.cpp.o.d"
  "/root/repo/tests/geometry_rect_test.cpp" "tests/CMakeFiles/geometry_test.dir/geometry_rect_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_test.dir/geometry_rect_test.cpp.o.d"
  "/root/repo/tests/geometry_rtree_test.cpp" "tests/CMakeFiles/geometry_test.dir/geometry_rtree_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_test.dir/geometry_rtree_test.cpp.o.d"
  "/root/repo/tests/geometry_segment_test.cpp" "tests/CMakeFiles/geometry_test.dir/geometry_segment_test.cpp.o" "gcc" "tests/CMakeFiles/geometry_test.dir/geometry_segment_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
