# Empty dependencies file for spatialdb_history_test.
# This may be replaced when dependencies are built.
