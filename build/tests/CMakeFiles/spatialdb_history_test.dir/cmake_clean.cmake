file(REMOVE_RECURSE
  "CMakeFiles/spatialdb_history_test.dir/spatialdb_history_test.cpp.o"
  "CMakeFiles/spatialdb_history_test.dir/spatialdb_history_test.cpp.o.d"
  "spatialdb_history_test"
  "spatialdb_history_test.pdb"
  "spatialdb_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatialdb_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
