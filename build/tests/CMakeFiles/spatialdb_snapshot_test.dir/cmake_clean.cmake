file(REMOVE_RECURSE
  "CMakeFiles/spatialdb_snapshot_test.dir/spatialdb_snapshot_test.cpp.o"
  "CMakeFiles/spatialdb_snapshot_test.dir/spatialdb_snapshot_test.cpp.o.d"
  "spatialdb_snapshot_test"
  "spatialdb_snapshot_test.pdb"
  "spatialdb_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatialdb_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
