# Empty dependencies file for spatialdb_snapshot_test.
# This may be replaced when dependencies are built.
