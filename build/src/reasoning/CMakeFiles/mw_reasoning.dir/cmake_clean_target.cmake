file(REMOVE_RECURSE
  "libmw_reasoning.a"
)
