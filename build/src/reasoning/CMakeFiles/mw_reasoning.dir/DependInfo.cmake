
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reasoning/connectivity.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/connectivity.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/connectivity.cpp.o.d"
  "/root/repo/src/reasoning/datalog.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/datalog.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/datalog.cpp.o.d"
  "/root/repo/src/reasoning/passages.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/passages.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/passages.cpp.o.d"
  "/root/repo/src/reasoning/rcc8.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/rcc8.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/rcc8.cpp.o.d"
  "/root/repo/src/reasoning/relations.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/relations.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/relations.cpp.o.d"
  "/root/repo/src/reasoning/spatial_rules.cpp" "src/reasoning/CMakeFiles/mw_reasoning.dir/spatial_rules.cpp.o" "gcc" "src/reasoning/CMakeFiles/mw_reasoning.dir/spatial_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mw_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
