file(REMOVE_RECURSE
  "CMakeFiles/mw_reasoning.dir/connectivity.cpp.o"
  "CMakeFiles/mw_reasoning.dir/connectivity.cpp.o.d"
  "CMakeFiles/mw_reasoning.dir/datalog.cpp.o"
  "CMakeFiles/mw_reasoning.dir/datalog.cpp.o.d"
  "CMakeFiles/mw_reasoning.dir/passages.cpp.o"
  "CMakeFiles/mw_reasoning.dir/passages.cpp.o.d"
  "CMakeFiles/mw_reasoning.dir/rcc8.cpp.o"
  "CMakeFiles/mw_reasoning.dir/rcc8.cpp.o.d"
  "CMakeFiles/mw_reasoning.dir/relations.cpp.o"
  "CMakeFiles/mw_reasoning.dir/relations.cpp.o.d"
  "CMakeFiles/mw_reasoning.dir/spatial_rules.cpp.o"
  "CMakeFiles/mw_reasoning.dir/spatial_rules.cpp.o.d"
  "libmw_reasoning.a"
  "libmw_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
