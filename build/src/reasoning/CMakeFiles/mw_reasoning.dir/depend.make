# Empty dependencies file for mw_reasoning.
# This may be replaced when dependencies are built.
