file(REMOVE_RECURSE
  "CMakeFiles/mw_orb.dir/message.cpp.o"
  "CMakeFiles/mw_orb.dir/message.cpp.o.d"
  "CMakeFiles/mw_orb.dir/pubsub.cpp.o"
  "CMakeFiles/mw_orb.dir/pubsub.cpp.o.d"
  "CMakeFiles/mw_orb.dir/rpc.cpp.o"
  "CMakeFiles/mw_orb.dir/rpc.cpp.o.d"
  "CMakeFiles/mw_orb.dir/tcp.cpp.o"
  "CMakeFiles/mw_orb.dir/tcp.cpp.o.d"
  "CMakeFiles/mw_orb.dir/transport.cpp.o"
  "CMakeFiles/mw_orb.dir/transport.cpp.o.d"
  "libmw_orb.a"
  "libmw_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
