file(REMOVE_RECURSE
  "libmw_orb.a"
)
