# Empty compiler generated dependencies file for mw_orb.
# This may be replaced when dependencies are built.
