# Empty compiler generated dependencies file for mw_lattice.
# This may be replaced when dependencies are built.
