file(REMOVE_RECURSE
  "libmw_lattice.a"
)
