file(REMOVE_RECURSE
  "CMakeFiles/mw_lattice.dir/rect_lattice.cpp.o"
  "CMakeFiles/mw_lattice.dir/rect_lattice.cpp.o.d"
  "libmw_lattice.a"
  "libmw_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
