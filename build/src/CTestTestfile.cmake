# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geometry")
subdirs("glob")
subdirs("quality")
subdirs("spatialdb")
subdirs("lattice")
subdirs("fusion")
subdirs("reasoning")
subdirs("orb")
subdirs("adapters")
subdirs("sim")
subdirs("core")
