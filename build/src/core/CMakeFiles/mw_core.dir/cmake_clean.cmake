file(REMOVE_RECURSE
  "CMakeFiles/mw_core.dir/codec.cpp.o"
  "CMakeFiles/mw_core.dir/codec.cpp.o.d"
  "CMakeFiles/mw_core.dir/location_service.cpp.o"
  "CMakeFiles/mw_core.dir/location_service.cpp.o.d"
  "CMakeFiles/mw_core.dir/middlewhere.cpp.o"
  "CMakeFiles/mw_core.dir/middlewhere.cpp.o.d"
  "CMakeFiles/mw_core.dir/reading_log.cpp.o"
  "CMakeFiles/mw_core.dir/reading_log.cpp.o.d"
  "CMakeFiles/mw_core.dir/region_lattice.cpp.o"
  "CMakeFiles/mw_core.dir/region_lattice.cpp.o.d"
  "CMakeFiles/mw_core.dir/remote.cpp.o"
  "CMakeFiles/mw_core.dir/remote.cpp.o.d"
  "CMakeFiles/mw_core.dir/remote_registry.cpp.o"
  "CMakeFiles/mw_core.dir/remote_registry.cpp.o.d"
  "libmw_core.a"
  "libmw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
