# Empty dependencies file for mw_core.
# This may be replaced when dependencies are built.
