file(REMOVE_RECURSE
  "libmw_core.a"
)
