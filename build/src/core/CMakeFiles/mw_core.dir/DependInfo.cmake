
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/mw_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/location_service.cpp" "src/core/CMakeFiles/mw_core.dir/location_service.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/location_service.cpp.o.d"
  "/root/repo/src/core/middlewhere.cpp" "src/core/CMakeFiles/mw_core.dir/middlewhere.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/middlewhere.cpp.o.d"
  "/root/repo/src/core/reading_log.cpp" "src/core/CMakeFiles/mw_core.dir/reading_log.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/reading_log.cpp.o.d"
  "/root/repo/src/core/region_lattice.cpp" "src/core/CMakeFiles/mw_core.dir/region_lattice.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/region_lattice.cpp.o.d"
  "/root/repo/src/core/remote.cpp" "src/core/CMakeFiles/mw_core.dir/remote.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/remote.cpp.o.d"
  "/root/repo/src/core/remote_registry.cpp" "src/core/CMakeFiles/mw_core.dir/remote_registry.cpp.o" "gcc" "src/core/CMakeFiles/mw_core.dir/remote_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/glob/CMakeFiles/mw_glob.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mw_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/spatialdb/CMakeFiles/mw_spatialdb.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mw_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoning/CMakeFiles/mw_reasoning.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/mw_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
