# Empty dependencies file for mw_fusion.
# This may be replaced when dependencies are built.
