file(REMOVE_RECURSE
  "libmw_fusion.a"
)
