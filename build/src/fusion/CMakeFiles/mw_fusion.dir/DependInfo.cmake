
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/bayes.cpp" "src/fusion/CMakeFiles/mw_fusion.dir/bayes.cpp.o" "gcc" "src/fusion/CMakeFiles/mw_fusion.dir/bayes.cpp.o.d"
  "/root/repo/src/fusion/classify.cpp" "src/fusion/CMakeFiles/mw_fusion.dir/classify.cpp.o" "gcc" "src/fusion/CMakeFiles/mw_fusion.dir/classify.cpp.o.d"
  "/root/repo/src/fusion/engine.cpp" "src/fusion/CMakeFiles/mw_fusion.dir/engine.cpp.o" "gcc" "src/fusion/CMakeFiles/mw_fusion.dir/engine.cpp.o.d"
  "/root/repo/src/fusion/prior.cpp" "src/fusion/CMakeFiles/mw_fusion.dir/prior.cpp.o" "gcc" "src/fusion/CMakeFiles/mw_fusion.dir/prior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
