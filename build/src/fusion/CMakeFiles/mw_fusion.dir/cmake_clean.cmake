file(REMOVE_RECURSE
  "CMakeFiles/mw_fusion.dir/bayes.cpp.o"
  "CMakeFiles/mw_fusion.dir/bayes.cpp.o.d"
  "CMakeFiles/mw_fusion.dir/classify.cpp.o"
  "CMakeFiles/mw_fusion.dir/classify.cpp.o.d"
  "CMakeFiles/mw_fusion.dir/engine.cpp.o"
  "CMakeFiles/mw_fusion.dir/engine.cpp.o.d"
  "CMakeFiles/mw_fusion.dir/prior.cpp.o"
  "CMakeFiles/mw_fusion.dir/prior.cpp.o.d"
  "libmw_fusion.a"
  "libmw_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
