# Empty compiler generated dependencies file for mw_quality.
# This may be replaced when dependencies are built.
