file(REMOVE_RECURSE
  "CMakeFiles/mw_quality.dir/calibration.cpp.o"
  "CMakeFiles/mw_quality.dir/calibration.cpp.o.d"
  "CMakeFiles/mw_quality.dir/error_model.cpp.o"
  "CMakeFiles/mw_quality.dir/error_model.cpp.o.d"
  "CMakeFiles/mw_quality.dir/tdf.cpp.o"
  "CMakeFiles/mw_quality.dir/tdf.cpp.o.d"
  "libmw_quality.a"
  "libmw_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
