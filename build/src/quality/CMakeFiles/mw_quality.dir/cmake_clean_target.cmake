file(REMOVE_RECURSE
  "libmw_quality.a"
)
