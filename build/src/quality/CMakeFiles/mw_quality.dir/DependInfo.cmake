
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/calibration.cpp" "src/quality/CMakeFiles/mw_quality.dir/calibration.cpp.o" "gcc" "src/quality/CMakeFiles/mw_quality.dir/calibration.cpp.o.d"
  "/root/repo/src/quality/error_model.cpp" "src/quality/CMakeFiles/mw_quality.dir/error_model.cpp.o" "gcc" "src/quality/CMakeFiles/mw_quality.dir/error_model.cpp.o.d"
  "/root/repo/src/quality/tdf.cpp" "src/quality/CMakeFiles/mw_quality.dir/tdf.cpp.o" "gcc" "src/quality/CMakeFiles/mw_quality.dir/tdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
