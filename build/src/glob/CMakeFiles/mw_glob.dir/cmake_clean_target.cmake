file(REMOVE_RECURSE
  "libmw_glob.a"
)
