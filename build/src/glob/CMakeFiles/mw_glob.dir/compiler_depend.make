# Empty compiler generated dependencies file for mw_glob.
# This may be replaced when dependencies are built.
