file(REMOVE_RECURSE
  "CMakeFiles/mw_glob.dir/frame.cpp.o"
  "CMakeFiles/mw_glob.dir/frame.cpp.o.d"
  "CMakeFiles/mw_glob.dir/glob.cpp.o"
  "CMakeFiles/mw_glob.dir/glob.cpp.o.d"
  "libmw_glob.a"
  "libmw_glob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_glob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
