# Empty dependencies file for mw_util.
# This may be replaced when dependencies are built.
