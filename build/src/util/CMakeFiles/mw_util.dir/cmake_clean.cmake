file(REMOVE_RECURSE
  "CMakeFiles/mw_util.dir/bytes.cpp.o"
  "CMakeFiles/mw_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mw_util.dir/clock.cpp.o"
  "CMakeFiles/mw_util.dir/clock.cpp.o.d"
  "CMakeFiles/mw_util.dir/logging.cpp.o"
  "CMakeFiles/mw_util.dir/logging.cpp.o.d"
  "CMakeFiles/mw_util.dir/rng.cpp.o"
  "CMakeFiles/mw_util.dir/rng.cpp.o.d"
  "libmw_util.a"
  "libmw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
