file(REMOVE_RECURSE
  "libmw_util.a"
)
