file(REMOVE_RECURSE
  "libmw_spatialdb.a"
)
