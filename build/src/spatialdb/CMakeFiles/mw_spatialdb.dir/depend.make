# Empty dependencies file for mw_spatialdb.
# This may be replaced when dependencies are built.
