
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatialdb/database.cpp" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/database.cpp.o" "gcc" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/database.cpp.o.d"
  "/root/repo/src/spatialdb/query_language.cpp" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/query_language.cpp.o" "gcc" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/query_language.cpp.o.d"
  "/root/repo/src/spatialdb/sensor.cpp" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/sensor.cpp.o" "gcc" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/sensor.cpp.o.d"
  "/root/repo/src/spatialdb/snapshot.cpp" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/snapshot.cpp.o" "gcc" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/snapshot.cpp.o.d"
  "/root/repo/src/spatialdb/types.cpp" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/types.cpp.o" "gcc" "src/spatialdb/CMakeFiles/mw_spatialdb.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/glob/CMakeFiles/mw_glob.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mw_quality.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
