file(REMOVE_RECURSE
  "CMakeFiles/mw_spatialdb.dir/database.cpp.o"
  "CMakeFiles/mw_spatialdb.dir/database.cpp.o.d"
  "CMakeFiles/mw_spatialdb.dir/query_language.cpp.o"
  "CMakeFiles/mw_spatialdb.dir/query_language.cpp.o.d"
  "CMakeFiles/mw_spatialdb.dir/sensor.cpp.o"
  "CMakeFiles/mw_spatialdb.dir/sensor.cpp.o.d"
  "CMakeFiles/mw_spatialdb.dir/snapshot.cpp.o"
  "CMakeFiles/mw_spatialdb.dir/snapshot.cpp.o.d"
  "CMakeFiles/mw_spatialdb.dir/types.cpp.o"
  "CMakeFiles/mw_spatialdb.dir/types.cpp.o.d"
  "libmw_spatialdb.a"
  "libmw_spatialdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_spatialdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
