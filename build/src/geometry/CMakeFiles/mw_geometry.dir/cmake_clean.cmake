file(REMOVE_RECURSE
  "CMakeFiles/mw_geometry.dir/polygon.cpp.o"
  "CMakeFiles/mw_geometry.dir/polygon.cpp.o.d"
  "CMakeFiles/mw_geometry.dir/rect.cpp.o"
  "CMakeFiles/mw_geometry.dir/rect.cpp.o.d"
  "CMakeFiles/mw_geometry.dir/rtree.cpp.o"
  "CMakeFiles/mw_geometry.dir/rtree.cpp.o.d"
  "CMakeFiles/mw_geometry.dir/segment.cpp.o"
  "CMakeFiles/mw_geometry.dir/segment.cpp.o.d"
  "libmw_geometry.a"
  "libmw_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
