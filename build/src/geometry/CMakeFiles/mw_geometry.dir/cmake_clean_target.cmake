file(REMOVE_RECURSE
  "libmw_geometry.a"
)
