# Empty dependencies file for mw_geometry.
# This may be replaced when dependencies are built.
