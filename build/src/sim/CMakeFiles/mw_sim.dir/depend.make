# Empty dependencies file for mw_sim.
# This may be replaced when dependencies are built.
