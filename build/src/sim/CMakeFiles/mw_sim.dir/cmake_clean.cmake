file(REMOVE_RECURSE
  "CMakeFiles/mw_sim.dir/blueprint.cpp.o"
  "CMakeFiles/mw_sim.dir/blueprint.cpp.o.d"
  "CMakeFiles/mw_sim.dir/scenario.cpp.o"
  "CMakeFiles/mw_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mw_sim.dir/world.cpp.o"
  "CMakeFiles/mw_sim.dir/world.cpp.o.d"
  "libmw_sim.a"
  "libmw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
