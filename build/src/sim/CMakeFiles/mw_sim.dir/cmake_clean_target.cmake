file(REMOVE_RECURSE
  "libmw_sim.a"
)
