# Empty compiler generated dependencies file for mw_adapters.
# This may be replaced when dependencies are built.
