file(REMOVE_RECURSE
  "CMakeFiles/mw_adapters.dir/adapter.cpp.o"
  "CMakeFiles/mw_adapters.dir/adapter.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/biometric.cpp.o"
  "CMakeFiles/mw_adapters.dir/biometric.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/bluetooth.cpp.o"
  "CMakeFiles/mw_adapters.dir/bluetooth.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/card_reader.cpp.o"
  "CMakeFiles/mw_adapters.dir/card_reader.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/desktop_login.cpp.o"
  "CMakeFiles/mw_adapters.dir/desktop_login.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/gps.cpp.o"
  "CMakeFiles/mw_adapters.dir/gps.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/rfid.cpp.o"
  "CMakeFiles/mw_adapters.dir/rfid.cpp.o.d"
  "CMakeFiles/mw_adapters.dir/ubisense.cpp.o"
  "CMakeFiles/mw_adapters.dir/ubisense.cpp.o.d"
  "libmw_adapters.a"
  "libmw_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mw_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
