
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapters/adapter.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/adapter.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/adapter.cpp.o.d"
  "/root/repo/src/adapters/biometric.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/biometric.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/biometric.cpp.o.d"
  "/root/repo/src/adapters/bluetooth.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/bluetooth.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/bluetooth.cpp.o.d"
  "/root/repo/src/adapters/card_reader.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/card_reader.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/card_reader.cpp.o.d"
  "/root/repo/src/adapters/desktop_login.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/desktop_login.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/desktop_login.cpp.o.d"
  "/root/repo/src/adapters/gps.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/gps.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/gps.cpp.o.d"
  "/root/repo/src/adapters/rfid.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/rfid.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/rfid.cpp.o.d"
  "/root/repo/src/adapters/ubisense.cpp" "src/adapters/CMakeFiles/mw_adapters.dir/ubisense.cpp.o" "gcc" "src/adapters/CMakeFiles/mw_adapters.dir/ubisense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mw_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/spatialdb/CMakeFiles/mw_spatialdb.dir/DependInfo.cmake"
  "/root/repo/build/src/glob/CMakeFiles/mw_glob.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
