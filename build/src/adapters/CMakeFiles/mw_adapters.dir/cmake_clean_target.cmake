file(REMOVE_RECURSE
  "libmw_adapters.a"
)
