# Empty dependencies file for follow_me.
# This may be replaced when dependencies are built.
