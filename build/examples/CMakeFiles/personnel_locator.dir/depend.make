# Empty dependencies file for personnel_locator.
# This may be replaced when dependencies are built.
