file(REMOVE_RECURSE
  "CMakeFiles/personnel_locator.dir/personnel_locator.cpp.o"
  "CMakeFiles/personnel_locator.dir/personnel_locator.cpp.o.d"
  "personnel_locator"
  "personnel_locator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personnel_locator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
