file(REMOVE_RECURSE
  "CMakeFiles/ops_dashboard.dir/ops_dashboard.cpp.o"
  "CMakeFiles/ops_dashboard.dir/ops_dashboard.cpp.o.d"
  "ops_dashboard"
  "ops_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
