file(REMOVE_RECURSE
  "CMakeFiles/campus_handoff.dir/campus_handoff.cpp.o"
  "CMakeFiles/campus_handoff.dir/campus_handoff.cpp.o.d"
  "campus_handoff"
  "campus_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
