# Empty dependencies file for campus_handoff.
# This may be replaced when dependencies are built.
