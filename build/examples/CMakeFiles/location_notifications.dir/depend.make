# Empty dependencies file for location_notifications.
# This may be replaced when dependencies are built.
