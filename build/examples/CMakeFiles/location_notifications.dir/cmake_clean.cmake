file(REMOVE_RECURSE
  "CMakeFiles/location_notifications.dir/location_notifications.cpp.o"
  "CMakeFiles/location_notifications.dir/location_notifications.cpp.o.d"
  "location_notifications"
  "location_notifications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_notifications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
