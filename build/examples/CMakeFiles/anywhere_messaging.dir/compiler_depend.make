# Empty compiler generated dependencies file for anywhere_messaging.
# This may be replaced when dependencies are built.
