file(REMOVE_RECURSE
  "CMakeFiles/anywhere_messaging.dir/anywhere_messaging.cpp.o"
  "CMakeFiles/anywhere_messaging.dir/anywhere_messaging.cpp.o.d"
  "anywhere_messaging"
  "anywhere_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anywhere_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
