file(REMOVE_RECURSE
  "CMakeFiles/route_finder.dir/route_finder.cpp.o"
  "CMakeFiles/route_finder.dir/route_finder.cpp.o.d"
  "route_finder"
  "route_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
