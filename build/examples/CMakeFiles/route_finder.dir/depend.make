# Empty dependencies file for route_finder.
# This may be replaced when dependencies are built.
