file(REMOVE_RECURSE
  "CMakeFiles/bench_orb.dir/bench_orb.cpp.o"
  "CMakeFiles/bench_orb.dir/bench_orb.cpp.o.d"
  "bench_orb"
  "bench_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
