# Empty compiler generated dependencies file for bench_orb.
# This may be replaced when dependencies are built.
