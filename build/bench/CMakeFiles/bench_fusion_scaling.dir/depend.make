# Empty dependencies file for bench_fusion_scaling.
# This may be replaced when dependencies are built.
