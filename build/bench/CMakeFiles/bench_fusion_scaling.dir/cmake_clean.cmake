file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_scaling.dir/bench_fusion_scaling.cpp.o"
  "CMakeFiles/bench_fusion_scaling.dir/bench_fusion_scaling.cpp.o.d"
  "bench_fusion_scaling"
  "bench_fusion_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
