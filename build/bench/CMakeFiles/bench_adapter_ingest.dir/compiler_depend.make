# Empty compiler generated dependencies file for bench_adapter_ingest.
# This may be replaced when dependencies are built.
