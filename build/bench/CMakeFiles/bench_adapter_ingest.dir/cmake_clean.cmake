file(REMOVE_RECURSE
  "CMakeFiles/bench_adapter_ingest.dir/bench_adapter_ingest.cpp.o"
  "CMakeFiles/bench_adapter_ingest.dir/bench_adapter_ingest.cpp.o.d"
  "bench_adapter_ingest"
  "bench_adapter_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adapter_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
