file(REMOVE_RECURSE
  "CMakeFiles/bench_path_distance.dir/bench_path_distance.cpp.o"
  "CMakeFiles/bench_path_distance.dir/bench_path_distance.cpp.o.d"
  "bench_path_distance"
  "bench_path_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
