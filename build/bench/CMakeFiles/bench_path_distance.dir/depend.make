# Empty dependencies file for bench_path_distance.
# This may be replaced when dependencies are built.
