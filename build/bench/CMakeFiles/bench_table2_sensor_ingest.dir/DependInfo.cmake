
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_sensor_ingest.cpp" "bench/CMakeFiles/bench_table2_sensor_ingest.dir/bench_table2_sensor_ingest.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_sensor_ingest.dir/bench_table2_sensor_ingest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/mw_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/mw_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/spatialdb/CMakeFiles/mw_spatialdb.dir/DependInfo.cmake"
  "/root/repo/build/src/glob/CMakeFiles/mw_glob.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/mw_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoning/CMakeFiles/mw_reasoning.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/mw_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/mw_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/mw_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
