file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sensor_ingest.dir/bench_table2_sensor_ingest.cpp.o"
  "CMakeFiles/bench_table2_sensor_ingest.dir/bench_table2_sensor_ingest.cpp.o.d"
  "bench_table2_sensor_ingest"
  "bench_table2_sensor_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sensor_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
