file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_cases.dir/bench_fusion_cases.cpp.o"
  "CMakeFiles/bench_fusion_cases.dir/bench_fusion_cases.cpp.o.d"
  "bench_fusion_cases"
  "bench_fusion_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
