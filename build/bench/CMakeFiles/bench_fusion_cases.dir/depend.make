# Empty dependencies file for bench_fusion_cases.
# This may be replaced when dependencies are built.
