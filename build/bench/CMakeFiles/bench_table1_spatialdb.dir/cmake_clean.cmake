file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_spatialdb.dir/bench_table1_spatialdb.cpp.o"
  "CMakeFiles/bench_table1_spatialdb.dir/bench_table1_spatialdb.cpp.o.d"
  "bench_table1_spatialdb"
  "bench_table1_spatialdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_spatialdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
