# Empty dependencies file for bench_table1_spatialdb.
# This may be replaced when dependencies are built.
