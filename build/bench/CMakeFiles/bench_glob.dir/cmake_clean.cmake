file(REMOVE_RECURSE
  "CMakeFiles/bench_glob.dir/bench_glob.cpp.o"
  "CMakeFiles/bench_glob.dir/bench_glob.cpp.o.d"
  "bench_glob"
  "bench_glob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
