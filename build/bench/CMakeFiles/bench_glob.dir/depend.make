# Empty dependencies file for bench_glob.
# This may be replaced when dependencies are built.
