file(REMOVE_RECURSE
  "CMakeFiles/bench_rcc.dir/bench_rcc.cpp.o"
  "CMakeFiles/bench_rcc.dir/bench_rcc.cpp.o.d"
  "bench_rcc"
  "bench_rcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
