# Empty compiler generated dependencies file for bench_rcc.
# This may be replaced when dependencies are built.
