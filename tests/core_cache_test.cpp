// Epoch-based fusion caching: repeated queries on an unchanged object reuse
// one fused state; a new reading, TTL expiry or sensor (de)registration
// bumps the object's readings epoch and forces recomputation. Batch ingest
// must be observationally identical to sequential ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "core/location_service.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::msec;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

// Same world as core_service_test: floor (0,0)-(100,50), rooms A and B.
struct Fixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  Fixture() : db(makeDb(clock)), service(clock, db) {}

  static db::SpatialDatabase makeDb(const util::Clock& clock) {
    db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    database.registerSensor(ubi);
    db::SensorMeta ubi2 = ubi;
    ubi2.sensorId = SensorId{"ubi-2"};
    database.registerSensor(ubi2);
    return database;
  }

  db::SensorReading reading(const char* sensor, const char* person, geo::Point2 where,
                            double radius = 0.5) {
    db::SensorReading r;
    r.sensorId = SensorId{sensor};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = radius;
    r.detectionTime = clock.now();
    return r;
  }
};

TEST(FusionCacheTest, RepeatedQueryHitsCache) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.resetFusionCacheCounters();

  auto first = f.service.locateObject(MobileObjectId{"alice"});
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
  EXPECT_EQ(f.service.fusionCacheHits(), 0u);

  // Same epoch, same clock tick: zero lattice rebuilds for any further query.
  auto second = f.service.locateObject(MobileObjectId{"alice"});
  auto prob = f.service.probabilityInRegion(MobileObjectId{"alice"},
                                            geo::Rect::fromOrigin({0, 0}, 20, 20));
  auto dist = f.service.distributionFor(MobileObjectId{"alice"});
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
  EXPECT_EQ(f.service.fusionCacheHits(), 3u);

  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->region, second->region);
  EXPECT_DOUBLE_EQ(first->probability, second->probability);
  EXPECT_GT(prob, 0.5);
  EXPECT_FALSE(dist.empty());
}

TEST(FusionCacheTest, QueriesShareOneFusedState) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto a = f.service.fusedStateFor(MobileObjectId{"alice"});
  auto b = f.service.fusedStateFor(MobileObjectId{"alice"});
  EXPECT_EQ(a.get(), b.get());  // literally the same immutable state
}

TEST(FusionCacheTest, IngestInvalidates) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto before = f.service.locateObject(MobileObjectId{"alice"});
  ASSERT_TRUE(before.has_value());

  // New reading on the same clock tick: the epoch (not the timestamp) must
  // invalidate the cached state.
  f.service.ingest(f.reading("ubi-1", "alice", {45, 5}));
  f.service.resetFusionCacheCounters();
  auto after = f.service.locateObject(MobileObjectId{"alice"});
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(before->region, after->region);
  EXPECT_TRUE(after->region.contains(geo::Point2{45, 5}));
}

TEST(FusionCacheTest, TtlExpiryBumpsEpochWithoutNewReadings) {
  Fixture f;
  const MobileObjectId alice{"alice"};
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  const std::uint64_t epochFresh = f.db.readingsEpoch(alice);
  ASSERT_TRUE(f.service.locateObject(alice).has_value());

  // Advancing past the 30s TTL bumps the epoch lazily — no purge call, no
  // new reading — so the cached estimate cannot outlive its readings.
  f.clock.advance(sec(31));
  EXPECT_GT(f.db.readingsEpoch(alice), epochFresh);
  f.service.resetFusionCacheCounters();
  EXPECT_EQ(f.service.locateObject(alice), std::nullopt);
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
}

TEST(FusionCacheTest, SensorRegistrationBumpsEpoch) {
  Fixture f;
  const MobileObjectId alice{"alice"};
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  const std::uint64_t before = f.db.readingsEpoch(alice);

  db::SensorMeta extra;
  extra.sensorId = SensorId{"ubi-3"};
  extra.sensorType = "Ubisense";
  extra.errorSpec = quality::ubisenseSpec(1.0);
  extra.quality.ttl = sec(30);
  f.db.registerSensor(extra);
  EXPECT_GT(f.db.readingsEpoch(alice), before);
}

TEST(FusionCacheTest, ClockAdvanceInvalidatesByDefault) {
  Fixture f;
  const MobileObjectId alice{"alice"};
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  ASSERT_TRUE(f.service.locateObject(alice).has_value());

  // tdf degrades confidence continuously, so with the default 0ms tolerance
  // a later clock tick must recompute even though the epoch is unchanged.
  f.clock.advance(msec(1));
  f.service.resetFusionCacheCounters();
  ASSERT_TRUE(f.service.locateObject(alice).has_value());
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
  EXPECT_EQ(f.service.fusionCacheHits(), 0u);
}

TEST(FusionCacheTest, ToleranceWindowAllowsBoundedStaleness) {
  Fixture f;
  const MobileObjectId alice{"alice"};
  f.service.setFusionCacheTolerance(sec(1));
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  ASSERT_TRUE(f.service.locateObject(alice).has_value());

  f.clock.advance(msec(500));  // inside the tolerance window
  f.service.resetFusionCacheCounters();
  ASSERT_TRUE(f.service.locateObject(alice).has_value());
  EXPECT_EQ(f.service.fusionCacheHits(), 1u);

  f.clock.advance(msec(600));  // now 1100ms past computedAt
  ASSERT_TRUE(f.service.locateObject(alice).has_value());
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
}

TEST(FusionCacheTest, CapacityBoundsEntries) {
  Fixture f;
  f.service.setFusionCacheCapacity(2);
  for (int p = 0; p < 8; ++p) {
    std::string name = "p" + std::to_string(p);
    f.service.ingest(f.reading("ubi-1", name.c_str(), {5.0 + p, 5}));
    ASSERT_TRUE(f.service.locateObject(MobileObjectId{name}).has_value());
  }
  // All 8 objects still answer correctly after eviction churn.
  for (int p = 0; p < 8; ++p) {
    MobileObjectId who{"p" + std::to_string(p)};
    auto est = f.service.locateObject(who);
    ASSERT_TRUE(est.has_value());
    EXPECT_TRUE(est->region.contains(geo::Point2{5.0 + p, 5}));
  }
}

TEST(FusionCacheTest, MovementPriorChangeInvalidates) {
  Fixture f;
  const MobileObjectId alice{"alice"};
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  ASSERT_TRUE(f.service.locateObject(alice).has_value());
  f.service.setMovementPrior(nullptr);
  f.service.resetFusionCacheCounters();
  ASSERT_TRUE(f.service.locateObject(alice).has_value());
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
}

// --- ingestBatch equivalence ----------------------------------------------------

struct NotificationRecord {
  std::string sub;
  std::string object;
  double probability;
  bool operator<(const NotificationRecord& o) const {
    return std::tie(sub, object, probability) < std::tie(o.sub, o.object, o.probability);
  }
  bool operator==(const NotificationRecord& o) const {
    return sub == o.sub && object == o.object && probability == o.probability;
  }
};

std::vector<db::SensorReading> mixedBatch(Fixture& f, int people) {
  std::vector<db::SensorReading> batch;
  for (int p = 0; p < people; ++p) {
    std::string name = "p" + std::to_string(p);
    geo::Point2 where{5.0 + (p % 10) * 9.0, 5.0 + (p / 10) * 4.0};
    batch.push_back(f.reading("ubi-1", name.c_str(), where));
    batch.push_back(f.reading("ubi-2", name.c_str(), {where.x + 0.2, where.y}));
  }
  return batch;
}

TEST(IngestBatchTest, MatchesSequentialIngest) {
  Fixture seq, par;
  par.service.setIngestShards(4);

  // Identical wall-to-wall subscriptions on both services, recording every
  // notification (order-insensitively comparable). Callbacks fire from shard
  // threads on the parallel service, so the recorder locks.
  std::mutex notesMutex;
  std::vector<NotificationRecord> seqNotes, parNotes;
  auto recordInto = [&notesMutex](std::vector<NotificationRecord>& out, const char* tag) {
    return [&out, &notesMutex, tag](const Notification& n) {
      std::lock_guard lock(notesMutex);
      out.push_back({tag, n.object.str(), n.probability});
    };
  };
  geo::Rect everywhere = geo::Rect::fromOrigin({0, 0}, 100, 50);
  geo::Rect roomA = geo::Rect::fromOrigin({0, 0}, 20, 20);
  seq.service.subscribe({everywhere, std::nullopt, 0.01, std::nullopt, false,
                         recordInto(seqNotes, "everywhere")});
  seq.service.subscribe({roomA, std::nullopt, 0.5, std::nullopt, true,
                         recordInto(seqNotes, "roomA")});
  par.service.subscribe({everywhere, std::nullopt, 0.01, std::nullopt, false,
                         recordInto(parNotes, "everywhere")});
  par.service.subscribe({roomA, std::nullopt, 0.5, std::nullopt, true,
                         recordInto(parNotes, "roomA")});

  std::vector<db::SensorReading> batchSeq = mixedBatch(seq, 20);
  std::vector<db::SensorReading> batchPar = mixedBatch(par, 20);
  for (const auto& r : batchSeq) seq.service.ingest(r);
  par.service.ingestBatch(batchPar);

  // Byte-identical estimates per object.
  for (int p = 0; p < 20; ++p) {
    MobileObjectId who{"p" + std::to_string(p)};
    auto a = seq.service.locateObject(who);
    auto b = par.service.locateObject(who);
    ASSERT_TRUE(a.has_value() && b.has_value()) << who.str();
    EXPECT_EQ(a->region, b->region) << who.str();
    EXPECT_DOUBLE_EQ(a->probability, b->probability) << who.str();
    EXPECT_EQ(a->cls, b->cls) << who.str();
    EXPECT_EQ(a->supporting, b->supporting) << who.str();
    EXPECT_EQ(a->discarded, b->discarded) << who.str();
  }

  // Same notification multiset, order-insensitive across objects.
  std::sort(seqNotes.begin(), seqNotes.end());
  std::sort(parNotes.begin(), parNotes.end());
  EXPECT_FALSE(seqNotes.empty());
  EXPECT_EQ(seqNotes, parNotes);
}

TEST(IngestBatchTest, SingleShardAndEmptyBatch) {
  Fixture f;
  f.service.setIngestShards(1);
  f.service.ingestBatch({});  // no-op
  std::vector<db::SensorReading> batch = mixedBatch(f, 3);
  f.service.ingestBatch(batch);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(f.service.locateObject(MobileObjectId{"p" + std::to_string(p)}).has_value());
  }
}

TEST(IngestBatchTest, PerObjectOrderPreservedAcrossShards) {
  // Two readings for the same object in one batch: the second must win the
  // `moving` comparison against the first, exactly as in sequential ingest.
  Fixture f;
  f.service.setIngestShards(4);
  std::vector<db::SensorReading> batch;
  batch.push_back(f.reading("ubi-1", "alice", {5, 5}));
  batch.push_back(f.reading("ubi-1", "alice", {45, 5}));
  f.service.ingestBatch(batch);
  auto est = f.service.locateObject(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->region.contains(geo::Point2{45, 5}));
}

TEST(IngestBatchTest, RejectsZeroShards) {
  Fixture f;
  EXPECT_THROW(f.service.setIngestShards(0), util::ContractError);
}

}  // namespace
}  // namespace mw::core
