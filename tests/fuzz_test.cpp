// Fuzz-style robustness tests: malformed and randomized inputs must either
// be handled or rejected with ParseError/ContractError — never crash or
// silently corrupt (the ORB decodes frames from the network; the GLOB
// parser consumes application strings).
#include <gtest/gtest.h>

#include <string>

#include "fusion/engine.hpp"
#include "glob/glob.hpp"
#include "orb/message.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mw {
namespace {

// --- GLOB round-trip over randomized valid inputs --------------------------------

class GlobFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobFuzz, RandomValidGlobsRoundTrip) {
  util::Rng rng{GetParam()};
  const std::string alphabet = "abcXYZ019_-.";
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<std::string> path;
    auto segments = rng.uniformInt(1, 5);
    for (int s = 0; s < segments; ++s) {
      std::string seg;
      auto len = rng.uniformInt(1, 8);
      for (int c = 0; c < len; ++c) {
        seg += alphabet[static_cast<std::size_t>(
            rng.uniformInt(0, std::ssize(alphabet) - 1))];
      }
      path.push_back(seg);
    }
    glob::Glob g;
    if (rng.chance(0.5)) {
      g = glob::Glob::symbolic(path);
    } else {
      std::vector<geo::Point3> coords;
      auto n = rng.uniformInt(1, 5);
      for (int c = 0; c < n; ++c) {
        coords.push_back({std::floor(rng.uniform(-100, 100)),
                          std::floor(rng.uniform(-100, 100)),
                          rng.chance(0.5) ? std::floor(rng.uniform(1, 9)) : 0.0});
      }
      g = glob::Glob::coordinate(path, coords);
    }
    glob::Glob back = glob::Glob::parse(g.str());
    EXPECT_EQ(back, g) << g.str();
  }
}

TEST_P(GlobFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng{GetParam() ^ 0xF00D};
  for (int iter = 0; iter < 500; ++iter) {
    std::string junk;
    auto len = rng.uniformInt(0, 24);
    for (int c = 0; c < len; ++c) {
      junk += static_cast<char>(rng.uniformInt(32, 126));
    }
    try {
      auto g = glob::Glob::parse(junk);
      // If it parsed, its canonical form must re-parse to the same value.
      EXPECT_EQ(glob::Glob::parse(g.str()), g) << junk;
    } catch (const util::ParseError&) {
      // rejection is fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobFuzz, ::testing::Values(1u, 2u, 3u));

// --- ORB frame decoding over random bytes ------------------------------------------

class FrameFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameFuzz, RandomFramesThrowOrDecode) {
  util::Rng rng{GetParam()};
  for (int iter = 0; iter < 2000; ++iter) {
    util::Bytes frame(static_cast<std::size_t>(rng.uniformInt(0, 64)));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    try {
      orb::Message m = orb::Message::decode(frame);
      // A frame that decodes must re-encode to the identical bytes.
      EXPECT_EQ(m.encode(), frame);
    } catch (const util::ParseError&) {
      // rejection is fine
    }
  }
}

TEST_P(FrameFuzz, TruncatedRealFramesThrow) {
  util::Rng rng{GetParam() ^ 0xBEEF};
  orb::Message m;
  m.type = orb::MessageType::Request;
  m.requestId = 77;
  m.target = "locateObject";
  m.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  util::Bytes full = m.encode();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    util::Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(orb::Message::decode(truncated), util::ParseError) << "cut=" << cut;
  }
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz, ::testing::Values(11u, 13u));

// --- fusion invariants over random inputs ------------------------------------------

class FusionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusionFuzz, NormalizedDistributionSumsToOneOverMinimalRegions) {
  util::Rng rng{GetParam()};
  const geo::Rect universe = geo::Rect::fromOrigin({0, 0}, 100, 100);
  fusion::FusionEngine engine(universe);
  for (int iter = 0; iter < 20; ++iter) {
    fusion::FusionInputs inputs;
    auto n = rng.uniformInt(1, 6);
    for (int i = 0; i < n; ++i) {
      double p = rng.uniform(0.55, 0.99);
      double q = rng.uniform(0.0001, 0.2);
      if (q >= p) std::swap(p, q);
      inputs.push_back(fusion::FusionInput{
          util::SensorId{"s" + std::to_string(i)},
          geo::Rect::fromOrigin({rng.uniform(0, 70), rng.uniform(0, 70)},
                                rng.uniform(2, 25), rng.uniform(2, 25)),
          p, q, rng.chance(0.3)});
    }
    auto dist = engine.distribution(inputs, /*normalize=*/true);
    // After normalization the minimal (bottom-parent) regions must sum to 1.
    // Recover them: rebuild the lattice the way the engine does.
    auto active = engine.resolveConflicts(inputs, nullptr);
    if (active.empty()) continue;
    lattice::RectLattice lat(universe);
    for (const auto& in : active) lat.insert(in.rect, in.sensorId.str());
    double sum = 0;
    for (std::size_t p : lat.bottomParents()) sum += dist[p].probability;
    EXPECT_NEAR(sum, 1.0, 1e-6) << "iter " << iter;
    for (const auto& rp : dist) {
      EXPECT_GE(rp.probability, 0.0);
      EXPECT_LE(rp.probability, 1.0 + 1e-9);
    }
  }
}

TEST_P(FusionFuzz, InferredEstimateIsAlwaysSane) {
  util::Rng rng{GetParam() ^ 0xABC};
  const geo::Rect universe = geo::Rect::fromOrigin({0, 0}, 200, 100);
  fusion::FusionEngine engine(universe);
  for (int iter = 0; iter < 50; ++iter) {
    fusion::FusionInputs inputs;
    auto n = rng.uniformInt(0, 7);
    for (int i = 0; i < n; ++i) {
      inputs.push_back(fusion::FusionInput{
          util::SensorId{"s" + std::to_string(i)},
          geo::Rect::fromOrigin({rng.uniform(-20, 210), rng.uniform(-20, 110)},
                                rng.uniform(0.5, 40), rng.uniform(0.5, 40)),
          rng.uniform(0, 1), rng.uniform(0, 1), rng.chance(0.5)});
    }
    auto est = engine.infer(inputs);
    if (!est) continue;
    EXPECT_GE(est->probability, 0.0);
    EXPECT_LE(est->probability, 1.0);
    EXPECT_TRUE(universe.contains(est->region));
    EXPECT_FALSE(est->supporting.empty()) << "an estimate needs at least one supporter";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionFuzz, ::testing::Values(5u, 17u, 23u));

}  // namespace
}  // namespace mw
