// WorkerPool: fixed-thread batch executor used by sharded ingest.
#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mw::util {
namespace {

TEST(WorkerPoolTest, RunsEveryJobExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> counts(64);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    jobs.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  pool.run(std::move(jobs));
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPoolTest, RunReturnsOnlyAfterAllJobsFinish) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.run(std::move(jobs));
  EXPECT_EQ(done.load(), 8);  // the barrier held
}

TEST(WorkerPoolTest, SequentialBatchesReuseThreads) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 4; ++i) jobs.push_back([&total] { total.fetch_add(1); });
    pool.run(std::move(jobs));
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(WorkerPoolTest, PropagatesFirstException) {
  WorkerPool pool(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] {});
  jobs.push_back([] { throw std::runtime_error("shard failed"); });
  jobs.push_back([] {});
  EXPECT_THROW(pool.run(std::move(jobs)), std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ok{0};
  pool.run({[&ok] { ok.fetch_add(1); }});
  EXPECT_EQ(ok.load(), 1);
}

TEST(WorkerPoolTest, EmptyBatchIsANoop) {
  WorkerPool pool(1);
  pool.run({});
}

TEST(WorkerPoolTest, RejectsZeroThreads) { EXPECT_THROW(WorkerPool{0}, ContractError); }

}  // namespace
}  // namespace mw::util
