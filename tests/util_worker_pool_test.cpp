// WorkerPool: fixed-thread batch executor used by sharded ingest.
#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mw::util {
namespace {

TEST(WorkerPoolTest, RunsEveryJobExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::vector<std::atomic<int>> counts(64);
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    jobs.push_back([&counts, i] { counts[i].fetch_add(1); });
  }
  pool.run(std::move(jobs));
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPoolTest, RunReturnsOnlyAfterAllJobsFinish) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.run(std::move(jobs));
  EXPECT_EQ(done.load(), 8);  // the barrier held
}

TEST(WorkerPoolTest, SequentialBatchesReuseThreads) {
  WorkerPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 4; ++i) jobs.push_back([&total] { total.fetch_add(1); });
    pool.run(std::move(jobs));
  }
  EXPECT_EQ(total.load(), 40);
}

TEST(WorkerPoolTest, PropagatesFirstException) {
  WorkerPool pool(2);
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] {});
  jobs.push_back([] { throw std::runtime_error("shard failed"); });
  jobs.push_back([] {});
  EXPECT_THROW(pool.run(std::move(jobs)), std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> ok{0};
  pool.run({[&ok] { ok.fetch_add(1); }});
  EXPECT_EQ(ok.load(), 1);
}

TEST(WorkerPoolTest, EmptyBatchIsANoop) {
  WorkerPool pool(1);
  pool.run({});
}

TEST(WorkerPoolTest, RejectsZeroThreads) { EXPECT_THROW(WorkerPool{0}, ContractError); }

TEST(WorkerPoolTest, PostedJobsOnOneLaneRunInFifoOrder) {
  WorkerPool pool(4);
  std::vector<int> seen;
  std::mutex m;
  std::promise<void> done;
  for (int i = 0; i < 100; ++i) {
    pool.post(2, [&, i] {
      std::lock_guard lock(m);
      seen.push_back(i);
      if (i == 99) done.set_value();
    });
  }
  done.get_future().wait();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

TEST(WorkerPoolTest, LaneIndexWrapsModuloThreadCount) {
  WorkerPool pool(2);
  std::atomic<int> hits{0};
  std::promise<void> done;
  pool.post(0, [&] { hits.fetch_add(1); });
  pool.post(5, [&] { hits.fetch_add(1); });          // lane 5 % 2 == 1
  pool.post(1'000'003, [&] {                          // any index is legal
    hits.fetch_add(1);
    done.set_value();
  });
  done.get_future().wait();
  EXPECT_GE(hits.load(), 2);
}

TEST(WorkerPoolTest, PostedJobsDrainOnDestruction) {
  std::atomic<int> hits{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post(static_cast<std::size_t>(i), [&hits] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        hits.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(hits.load(), 64);
}

TEST(WorkerPoolTest, PostInterleavesWithRunBatches) {
  std::atomic<int> posted{0};
  std::atomic<int> batched{0};
  {
    WorkerPool pool(2);
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 4; ++i) {
        pool.post(static_cast<std::size_t>(i), [&posted] { posted.fetch_add(1); });
      }
      std::vector<std::function<void()>> jobs;
      for (int i = 0; i < 4; ++i) jobs.push_back([&batched] { batched.fetch_add(1); });
      pool.run(std::move(jobs));  // the run() barrier still holds alongside post()
      EXPECT_EQ(batched.load(), (round + 1) * 4);
    }
  }
  // Destruction drained whatever posted work was still queued.
  EXPECT_EQ(posted.load(), 32);
}

TEST(WorkerPoolTest, PostRejectsNullJob) {
  WorkerPool pool(1);
  EXPECT_THROW(pool.post(0, nullptr), ContractError);
}

}  // namespace
}  // namespace mw::util
