#include "geometry/segment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mw::geo {
namespace {

TEST(SegmentTest, LengthAndMidpoint) {
  Segment s{{0, 0}, {3, 4}};
  EXPECT_DOUBLE_EQ(s.length(), 5);
  EXPECT_EQ(s.midpoint(), (Point2{1.5, 2}));
}

TEST(SegmentTest, MbrOfDiagonal) {
  Segment s{{4, 1}, {1, 3}};
  EXPECT_EQ(s.mbr(), Rect::fromCorners({1, 1}, {4, 3}));
}

TEST(SegmentIntersectTest, CrossingSegments) {
  EXPECT_TRUE(segmentsIntersect({{0, 0}, {4, 4}}, {{0, 4}, {4, 0}}));
}

TEST(SegmentIntersectTest, ParallelDisjoint) {
  EXPECT_FALSE(segmentsIntersect({{0, 0}, {4, 0}}, {{0, 1}, {4, 1}}));
}

TEST(SegmentIntersectTest, CollinearOverlapping) {
  EXPECT_TRUE(segmentsIntersect({{0, 0}, {4, 0}}, {{2, 0}, {6, 0}}));
}

TEST(SegmentIntersectTest, CollinearDisjoint) {
  EXPECT_FALSE(segmentsIntersect({{0, 0}, {1, 0}}, {{2, 0}, {3, 0}}));
}

TEST(SegmentIntersectTest, TouchingAtEndpoint) {
  EXPECT_TRUE(segmentsIntersect({{0, 0}, {2, 2}}, {{2, 2}, {4, 0}}));
}

TEST(SegmentIntersectTest, TShapedTouch) {
  EXPECT_TRUE(segmentsIntersect({{0, 0}, {4, 0}}, {{2, 0}, {2, 3}}));
}

TEST(DistanceToSegmentTest, ProjectionInside) {
  Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distanceToSegment({5, 3}, s), 3);
}

TEST(DistanceToSegmentTest, ProjectionOutsideClampsToEndpoint) {
  Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(distanceToSegment({13, 4}, s), 5);
  EXPECT_DOUBLE_EQ(distanceToSegment({-3, 4}, s), 5);
}

TEST(DistanceToSegmentTest, DegenerateSegmentIsPointDistance) {
  Segment s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(distanceToSegment({5, 6}, s), 5);
}

TEST(SegmentOnRectBoundaryTest, DoorOnSharedWall) {
  // Rooms (0,0)-(4,4); a "door" on the right wall x=4.
  Rect room = Rect::fromOrigin({0, 0}, 4, 4);
  Segment door{{4, 1}, {4, 2}};
  EXPECT_TRUE(segmentOnRectBoundary(door, room));
  Segment insideSeg{{2, 1}, {2, 2}};
  EXPECT_FALSE(segmentOnRectBoundary(insideSeg, room));
  Segment outsideVertical{{5, 1}, {5, 2}};
  EXPECT_FALSE(segmentOnRectBoundary(outsideVertical, room));
}

TEST(SegmentOnRectBoundaryTest, HorizontalEdges) {
  Rect room = Rect::fromOrigin({0, 0}, 4, 4);
  EXPECT_TRUE(segmentOnRectBoundary({{1, 0}, {2, 0}}, room));
  EXPECT_TRUE(segmentOnRectBoundary({{1, 4}, {2, 4}}, room));
  // On the boundary line but beyond the rect's extent.
  EXPECT_FALSE(segmentOnRectBoundary({{5, 0}, {6, 0}}, room));
}

TEST(SegmentIntersectsRectTest, Cases) {
  Rect r = Rect::fromOrigin({0, 0}, 4, 4);
  EXPECT_TRUE(segmentIntersectsRect({{1, 1}, {2, 2}}, r)) << "fully inside";
  EXPECT_TRUE(segmentIntersectsRect({{-1, 2}, {5, 2}}, r)) << "crossing through";
  EXPECT_TRUE(segmentIntersectsRect({{-1, -1}, {1, 1}}, r)) << "one endpoint inside";
  EXPECT_FALSE(segmentIntersectsRect({{5, 5}, {7, 7}}, r)) << "fully outside";
  EXPECT_TRUE(segmentIntersectsRect({{4, 1}, {4, 2}}, r)) << "on boundary";
  EXPECT_FALSE(segmentIntersectsRect({{1, 1}, {2, 2}}, Rect{})) << "empty rect";
}

}  // namespace
}  // namespace mw::geo
