// Reactor-era transport tests: the epoll event-loop group (O(loops) reader
// threads, multiplexed calls, oversized-frame accounting) and the
// shared-memory ring transport (rendezvous, chunked large frames, parity
// with TCP). Suite names EventLoopTest / ShmRingTest are matched by the
// sanitizer regexes in scripts/reproduce.sh and CI.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "orb/event_loop.hpp"
#include "orb/rpc.hpp"
#include "orb/shm.hpp"
#include "orb/tcp.hpp"
#include "util/error.hpp"

namespace mw::orb {
namespace {

using mw::util::Bytes;

/// Live thread count of this process, from /proc/self/status.
std::size_t processThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

/// Polls `cond` until true or ~2 s elapse.
bool eventually(const std::function<bool()>& cond) {
  for (int i = 0; i < 400; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// --- event-loop group -------------------------------------------------------------

TEST(EventLoopTest, DefaultLoopCountIsClamped) {
  const std::size_t n = EventLoopGroup::defaultLoopCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 4u);
}

TEST(EventLoopTest, SixtyFourClientsAddNoReaderThreads) {
  // The whole point of the reactor: server + client connections together
  // must run on the group's fixed loop threads, not one thread per socket.
  auto group = std::make_shared<EventLoopGroup>(2);
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(
      0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); },
      {.backlog = 128, .group = group});

  const std::size_t before = processThreadCount();
  std::vector<std::unique_ptr<RpcClient>> clients;
  clients.reserve(64);
  for (int i = 0; i < 64; ++i) {
    clients.push_back(
        std::make_unique<RpcClient>(tcpConnect("127.0.0.1", listener.port(), group)));
  }
  for (auto& c : clients) EXPECT_EQ(c->call("echo", {7}), Bytes{7});
  const std::size_t after = processThreadCount();

  // 128 sockets (64 server-side + 64 client-side) were created between the
  // two samples; thread-per-connection would add 128 threads. The reactor
  // adds none — allow a little slack for unrelated runtime threads.
  EXPECT_LE(after, before + 4) << "reader threads scale with connections";
  EXPECT_TRUE(eventually([&] { return group->connectionCount() == 128; }));
}

TEST(EventLoopTest, ListenerBacklogOptionIsHonored) {
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(
      0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); }, {.backlog = 512});
  RpcClient client(tcpConnect("127.0.0.1", listener.port()));
  EXPECT_EQ(client.call("echo", {1, 2}), (Bytes{1, 2}));
}

TEST(EventLoopTest, CallsMultiplexOverOneConnection) {
  // One connection, two in-flight calls: the fast reply must overtake the
  // slow one. Impossible unless requests interleave on the wire and the
  // correlation ids resolve the right callers.
  RpcServer server;
  server.enableDispatcher(2);

  // The slow handler parks until the fast call has completed; it returns 1
  // only if released by that completion (0 = gave up). No sleep-based
  // timing: if the fast call could not overlap the slow one, the fast call
  // would block until the slow handler's bounded wait expires and the slow
  // reply would carry 0.
  std::mutex m;
  std::condition_variable cv;
  bool fastFinished = false;
  std::atomic<bool> slowEntered{false};
  // One selector shared by both methods: each roundRobinLanes() carries its
  // own counter, and two independent counters would both start at lane 0.
  auto lanes = RpcServer::roundRobinLanes();
  server.registerMethod(
      "slow",
      [&](const Bytes&) {
        slowEntered.store(true);
        std::unique_lock lock(m);
        const bool released =
            cv.wait_for(lock, std::chrono::seconds(10), [&] { return fastFinished; });
        return Bytes{released ? std::uint8_t{1} : std::uint8_t{0}};
      },
      lanes);
  server.registerMethod(
      "fast", [](const Bytes& in) { return in; }, lanes);
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(tcpConnect("127.0.0.1", listener.port()));

  auto slowCall =
      std::async(std::launch::async, [&] { return client.call("slow", {1}, util::sec(30)); });
  ASSERT_TRUE(eventually([&] { return slowEntered.load(); }));

  Bytes fast = client.call("fast", {2}, util::sec(10));
  EXPECT_EQ(fast, Bytes{2});
  {
    std::lock_guard lock(m);
    fastFinished = true;
  }
  cv.notify_all();
  EXPECT_EQ(slowCall.get(), Bytes{1}) << "fast call queued behind slow on one connection";
}

TEST(EventLoopTest, OversizedFrameIsCountedAndClosesConnection) {
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });

  // Raw socket: claim a 100 MiB frame follows. The server must refuse the
  // length prefix (not allocate), count it, and drop the connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint32_t huge = 100 * 1024 * 1024;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  ASSERT_EQ(::send(fd, prefix, 4, 0), 4);

  EXPECT_TRUE(eventually([&] { return server.stats().oversizedFrames == 1; }));
  // The server hung up on us: recv drains to EOF.
  std::uint8_t buf[16];
  ssize_t got;
  do {
    got = ::recv(fd, buf, sizeof(buf), 0);
  } while (got > 0);
  EXPECT_EQ(got, 0);
  ::close(fd);
}

TEST(EventLoopTest, GroupCountsFramesAndBytes) {
  auto group = std::make_shared<EventLoopGroup>(1);
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(
      0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); },
      {.backlog = 128, .group = group});
  RpcClient client(tcpConnect("127.0.0.1", listener.port(), group));
  client.call("echo", Bytes(100, 0x42));
  const EventLoopStats s = group->stats();
  EXPECT_GE(s.framesIn, 2u);   // request (server side) + reply (client side)
  EXPECT_GE(s.framesOut, 2u);
  EXPECT_GE(s.bytesIn, 200u);
  EXPECT_EQ(s.oversizedFrames, 0u);
}

TEST(EventLoopTest, ManyConcurrentCallersOnOneClientAllComplete) {
  RpcServer server;
  server.enableDispatcher(2);
  server.registerMethod(
      "echo", [](const Bytes& in) { return in; }, RpcServer::roundRobinLanes());
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(tcpConnect("127.0.0.1", listener.port()));
  std::vector<std::future<bool>> futures;
  futures.reserve(16);
  for (int i = 0; i < 16; ++i) {
    futures.push_back(std::async(std::launch::async, [&client, i] {
      for (int j = 0; j < 25; ++j) {
        const auto b = static_cast<std::uint8_t>(i * 25 + j);
        if (client.call("echo", {b}, util::sec(10)) != Bytes{b}) return false;
      }
      return true;
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get());
}

TEST(EventLoopTest, SpillBeforeRegistrationStillFlushes) {
  // Regression: a send that hits EAGAIN before the loop has run the
  // registration task used to arm EPOLLOUT against an unregistered fd
  // (EPOLL_CTL_MOD → ENOENT) and leave writeArmed_ set, stranding the
  // backlog forever. Tiny send buffers plus an immediate burst after
  // adopt() race the registration task on every round.
  auto group = std::make_shared<EventLoopGroup>(1);
  const Bytes frame(64 * 1024, 0xAB);
  for (int round = 0; round < 20; ++round) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int sndbuf = 4096;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    auto conn = group->adopt(fds[0], "spill-test");
    conn->send(frame);  // far beyond the socket buffer: must spill

    // Every byte (4-byte prefix + payload) must come out the peer end.
    timeval tv{2, 0};
    ::setsockopt(fds[1], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::size_t total = 0;
    std::uint8_t buf[8192];
    while (total < 4 + frame.size()) {
      const ssize_t got = ::recv(fds[1], buf, sizeof(buf), 0);
      if (got <= 0) break;  // timeout = the stranded-backlog bug
      total += static_cast<std::size_t>(got);
    }
    EXPECT_EQ(total, 4 + frame.size()) << "backlog stranded on round " << round;
    conn->close();
    ::close(fds[1]);
  }
}

TEST(EventLoopTest, SlowSubscriberDoesNotStallPublishFanOut) {
  // Broker fan-out runs on the reactor's non-blocking path: a subscriber
  // that stops reading fills its send backlog and gets events DROPPED
  // (counted in stats) instead of wedging publish() — which would starve
  // every subscriber after it in the snapshot.
  auto group = std::make_shared<EventLoopGroup>(1);
  RpcServer server;
  TcpListener listener(
      0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); },
      {.backlog = 16, .group = group});

  // A healthy subscriber counting events, and a wedged one: a raw socket
  // that connects and then never reads a byte.
  std::atomic<std::uint64_t> healthyGot{0};
  RpcClient healthy(tcpConnect("127.0.0.1", listener.port(), group));
  healthy.onEvent([&](const std::string&, const Bytes&) {
    healthyGot.fetch_add(1, std::memory_order_relaxed);
  });
  const int wedged = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(wedged, 0);
  {
    const int rcvbuf = 4096;
    ::setsockopt(wedged, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(wedged, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ASSERT_TRUE(eventually([&] { return server.connectionCount() == 2; }));

  // 1 MiB events: the wedged connection's socket buffer fills, then its
  // 8 MiB backlog cap, then trySend starts refusing. The loop must finish
  // promptly — each publish is at worst one memcpy into the backlog — and
  // the healthy subscriber must keep receiving throughout.
  const Bytes payload(1024 * 1024, 0x5A);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 64 && server.stats().droppedEvents == 0; ++i) {
    server.publish("firehose", payload);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GT(server.stats().droppedEvents, 0u) << "backlog cap never refused a publish";
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 20)
      << "publish fan-out stalled on the wedged subscriber";

  // Delivery to the healthy subscriber survives the wedged peer: a fresh
  // event still arrives after the drops started.
  const std::uint64_t before = healthyGot.load(std::memory_order_relaxed);
  server.publish("after", {1});
  EXPECT_TRUE(eventually([&] { return healthyGot.load(std::memory_order_relaxed) > before; }));
  ::close(wedged);
}

TEST(TransportConcurrencyTest, InProcCloseSynchronizesWithInFlightDelivery) {
  // Regression: close() promises the handler is not invoked again after it
  // returns, but the in-proc pair used to invoke a copied handler after
  // releasing its lock — a peer send racing close() could touch handler
  // state freed by the owner (the ~RpcClient teardown pattern).
  for (int round = 0; round < 50; ++round) {
    auto [a, b] = makeInProcPair();
    auto state = std::make_unique<std::atomic<int>>(0);
    b->onReceive([p = state.get()](util::ByteView) { p->fetch_add(1); });
    std::thread sender([t = a] {
      try {
        for (int i = 0; i < 200; ++i) t->send(Bytes{1});
      } catch (const util::TransportError&) {
        // Peer closed mid-burst; expected.
      }
    });
    b->close();     // must wait out any delivery already in flight
    state.reset();  // a handler invocation after this point is a UAF
    sender.join();
  }
}

TEST(TransportConcurrencyTest, HandlerInstallReplayPreservesOrder) {
  // Regression: installing a handler used to replay buffered frames on the
  // installer's thread while new arrivals went straight to the handler —
  // concurrent, possibly out-of-order invocations. Delivery must stay
  // serialized and in arrival order across the install.
  auto [a, b] = makeInProcPair();
  std::atomic<bool> stop{false};
  std::thread sender([&] {
    std::uint32_t n = 0;
    while (!stop.load()) {
      Bytes frame(4);
      for (int i = 0; i < 4; ++i) frame[i] = static_cast<std::uint8_t>(n >> (8 * i));
      a->send(frame);
      ++n;
    }
  });
  // Let frames pile up unhandled, then install mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::mutex m;
  std::vector<std::uint32_t> seen;
  b->onReceive([&](util::ByteView f) {
    ASSERT_EQ(f.size(), 4u);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(f.data()[i]) << (8 * i);
    std::lock_guard lock(m);
    seen.push_back(v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  sender.join();
  std::lock_guard lock(m);
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], i) << "frame replayed out of order";
  }
}

// --- shared-memory ring transport -------------------------------------------------

TEST(ShmRingTest, AvailabilityProbeRuns) {
  // /dev/shm is mounted everywhere we run tests; mostly assert no throw/leak.
  EXPECT_TRUE(shmAvailable());
}

TEST(ShmRingTest, EchoRoundTrip) {
  if (!shmAvailable()) GTEST_SKIP() << "POSIX shm unavailable";
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  ShmListener listener("mw.test.echo." + std::to_string(::getpid()),
                       [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(shmConnect(listener.name()));
  EXPECT_EQ(client.call("echo", {9, 8, 7}), (Bytes{9, 8, 7}));
}

TEST(ShmRingTest, FrameLargerThanRingStreamsThrough) {
  if (!shmAvailable()) GTEST_SKIP() << "POSIX shm unavailable";
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  ShmListener listener("mw.test.big." + std::to_string(::getpid()),
                       [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(shmConnect(listener.name()));
  // 3 MiB payload against 1 MiB rings: both directions must chunk.
  Bytes big(3 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 131);
  EXPECT_EQ(client.call("echo", big, util::sec(30)), big);
}

TEST(ShmRingTest, ConnectToMissingListenerThrows) {
  EXPECT_THROW(shmConnect("mw.test.no-such-listener"), util::TransportError);
}

TEST(ShmRingTest, ConnectAfterStopThrows) {
  if (!shmAvailable()) GTEST_SKIP() << "POSIX shm unavailable";
  RpcServer server;
  ShmListener listener("mw.test.stopped." + std::to_string(::getpid()),
                       [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  listener.stop();
  EXPECT_THROW(shmConnect(listener.name()), util::TransportError);
}

TEST(ShmRingTest, RepliesAreByteIdenticalToTcp) {
  if (!shmAvailable()) GTEST_SKIP() << "POSIX shm unavailable";
  // One server, both lanes: every reply must be byte-identical regardless
  // of the transport that carried it.
  RpcServer server;
  server.registerMethod("twice", [](const Bytes& in) {
    Bytes out = in;
    out.insert(out.end(), in.begin(), in.end());
    return out;
  });
  TcpListener tcp(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  ShmListener shm("mw.test.parity." + std::to_string(::getpid()),
                  [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient viaTcp(tcpConnect("127.0.0.1", tcp.port()));
  RpcClient viaShm(shmConnect(shm.name()));
  for (std::size_t len : {0UL, 1UL, 57UL, 4096UL, 100000UL}) {
    Bytes args(len);
    for (std::size_t i = 0; i < len; ++i) args[i] = static_cast<std::uint8_t>(i * 37);
    EXPECT_EQ(viaTcp.call("twice", args), viaShm.call("twice", args)) << "len=" << len;
  }
}

TEST(ShmRingTest, ManyConcurrentCallersAllComplete) {
  if (!shmAvailable()) GTEST_SKIP() << "POSIX shm unavailable";
  RpcServer server;
  server.enableDispatcher(2);
  server.registerMethod(
      "echo", [](const Bytes& in) { return in; }, RpcServer::roundRobinLanes());
  ShmListener listener("mw.test.mux." + std::to_string(::getpid()),
                       [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(shmConnect(listener.name()));
  std::vector<std::future<bool>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(std::async(std::launch::async, [&client, i] {
      for (int j = 0; j < 50; ++j) {
        const auto b = static_cast<std::uint8_t>(i * 50 + j);
        if (client.call("echo", {b}, util::sec(10)) != Bytes{b}) return false;
      }
      return true;
    }));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get());
}

}  // namespace
}  // namespace mw::orb
