#include "lattice/rect_lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mw::lattice {
namespace {

const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 100, 100);

TEST(RectLatticeTest, EmptyLatticeHasOnlyTop) {
  RectLattice lat(kUniverse);
  EXPECT_EQ(lat.size(), 1u);
  EXPECT_EQ(lat.node(RectLattice::kTop).rect, kUniverse);
  auto parents = lat.bottomParents();
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], RectLattice::kTop) << "with no sources, Bottom's parent is Top";
}

TEST(RectLatticeTest, UniverseMustBeNonEmpty) {
  EXPECT_THROW(RectLattice{geo::Rect{}}, mw::util::ContractError);
}

TEST(RectLatticeTest, InsertOutsideUniverseThrows) {
  RectLattice lat(kUniverse);
  EXPECT_THROW(lat.insert(geo::Rect::fromOrigin({200, 200}, 5, 5)), mw::util::ContractError);
}

TEST(RectLatticeTest, SingleSensorRect) {
  RectLattice lat(kUniverse);
  std::size_t s = lat.insert(geo::Rect::fromOrigin({10, 10}, 5, 5), "s1");
  EXPECT_EQ(lat.size(), 2u);
  EXPECT_TRUE(lat.node(s).isSource);
  EXPECT_EQ(lat.node(s).label, "s1");
  auto parents = lat.node(s).parents;
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], RectLattice::kTop);
  EXPECT_EQ(lat.bottomParents(), (std::vector<std::size_t>{s}));
}

TEST(RectLatticeTest, ContainedRectsChainInHasseOrder) {
  // Case 1 of §4.1.2: B contains A; lattice Top > B > A.
  RectLattice lat(kUniverse);
  std::size_t b = lat.insert(geo::Rect::fromOrigin({10, 10}, 20, 20), "s2");
  std::size_t a = lat.insert(geo::Rect::fromOrigin({15, 15}, 5, 5), "s1");
  EXPECT_EQ(lat.size(), 3u) << "A ∩ B == A, no extra node";
  EXPECT_EQ(lat.node(a).parents, (std::vector<std::size_t>{b}));
  EXPECT_EQ(lat.node(b).parents, (std::vector<std::size_t>{RectLattice::kTop}));
  EXPECT_EQ(lat.node(b).children, (std::vector<std::size_t>{a}));
  EXPECT_EQ(lat.bottomParents(), (std::vector<std::size_t>{a}));
}

TEST(RectLatticeTest, IntersectingRectsCreateDerivedNode) {
  // Case 2: A and B intersect, creating C = A ∩ B (Fig 3).
  RectLattice lat(kUniverse);
  std::size_t a = lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "s1");
  std::size_t b = lat.insert(geo::Rect::fromOrigin({5, 5}, 10, 10), "s2");
  EXPECT_EQ(lat.size(), 4u);
  std::size_t c = lat.find(geo::Rect::fromOrigin({5, 5}, 5, 5));
  ASSERT_LT(c, lat.size());
  EXPECT_FALSE(lat.node(c).isSource);
  // C's parents are A and B.
  auto parents = lat.node(c).parents;
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<std::size_t>{a, b}));
  EXPECT_EQ(lat.bottomParents(), (std::vector<std::size_t>{c}));
  // C's contributors are both sources.
  auto contrib = lat.node(c).contributors;
  std::sort(contrib.begin(), contrib.end());
  EXPECT_EQ(contrib, (std::vector<std::size_t>{a, b}));
}

TEST(RectLatticeTest, DisjointRectsAreBothBottomParents) {
  // Case 3: disjoint rects — a conflict.
  RectLattice lat(kUniverse);
  std::size_t a = lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "s1");
  std::size_t b = lat.insert(geo::Rect::fromOrigin({50, 50}, 10, 10), "s2");
  auto parents = lat.bottomParents();
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<std::size_t>{a, b}));
}

TEST(RectLatticeTest, DuplicateRectMergesIntoOneSource) {
  RectLattice lat(kUniverse);
  std::size_t a = lat.insert(geo::Rect::fromOrigin({10, 10}, 5, 5), "s1");
  std::size_t b = lat.insert(geo::Rect::fromOrigin({10, 10}, 5, 5), "s2");
  EXPECT_EQ(a, b);
  EXPECT_EQ(lat.size(), 2u);
  EXPECT_EQ(lat.node(a).label, "s1+s2");
}

TEST(RectLatticeTest, Figure5Scenario) {
  // The paper's Fig 5/6: five sensor rects. S1-S3 overlap in a chain; S4 is
  // inside S3; S5 is disjoint from everything.
  RectLattice lat(kUniverse);
  std::size_t s1 = lat.insert(geo::Rect::fromOrigin({0, 10}, 20, 20), "S1");
  std::size_t s2 = lat.insert(geo::Rect::fromOrigin({12, 14}, 20, 14), "S2");
  std::size_t s3 = lat.insert(geo::Rect::fromOrigin({25, 5}, 25, 25), "S3");
  std::size_t s4 = lat.insert(geo::Rect::fromOrigin({30, 8}, 6, 6), "S4");
  std::size_t s5 = lat.insert(geo::Rect::fromOrigin({70, 70}, 10, 10), "S5");

  // Derived intersections: D = S1∩S2, E = S2∩S3 (S1∩S3 empty), S4 ⊂ S3.
  std::size_t d = lat.find(*lat.node(s1).rect.intersection(lat.node(s2).rect));
  std::size_t e = lat.find(*lat.node(s2).rect.intersection(lat.node(s3).rect));
  ASSERT_LT(d, lat.size());
  ASSERT_LT(e, lat.size());
  EXPECT_FALSE(lat.node(d).isSource);
  EXPECT_FALSE(lat.node(e).isSource);

  // Bottom parents: D, E, S4, S5 (the minimal regions).
  auto parents = lat.bottomParents();
  std::sort(parents.begin(), parents.end());
  std::vector<std::size_t> expect{s4, s5, d, e};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(parents, expect);

  // S4's only parent is S3 (it is inside S3 and nothing smaller).
  EXPECT_EQ(lat.node(s4).parents, (std::vector<std::size_t>{s3}));
  // S5's only parent is Top.
  EXPECT_EQ(lat.node(s5).parents, (std::vector<std::size_t>{RectLattice::kTop}));
}

TEST(RectLatticeTest, TripleOverlapClosure) {
  // Three mutually overlapping rects: closure must include the pairwise
  // intersections AND the triple intersection.
  RectLattice lat(kUniverse);
  lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "a");
  lat.insert(geo::Rect::fromOrigin({5, 0}, 10, 10), "b");
  lat.insert(geo::Rect::fromOrigin({2, 0}, 10, 10), "c");
  // Triple intersection is x in [5,10] ∩ [2,12] = [5,10] ... compute: a=[0,10],
  // b=[5,15], c=[2,12] so triple = [5,10].
  std::size_t triple = lat.find(geo::Rect::fromOrigin({5, 0}, 5, 10));
  ASSERT_LT(triple, lat.size());
  auto parents = lat.bottomParents();
  EXPECT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], triple);
}

TEST(RectLatticeTest, RemoveSourceRebuildsWithoutIt) {
  RectLattice lat(kUniverse);
  lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "s1");
  std::size_t b = lat.insert(geo::Rect::fromOrigin({5, 5}, 10, 10), "s2");
  EXPECT_EQ(lat.size(), 4u);
  lat.removeSource(b);
  EXPECT_EQ(lat.size(), 2u) << "derived intersection removed with its source";
  auto sources = lat.sources();
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(lat.node(sources[0]).label, "s1");
}

TEST(RectLatticeTest, RemoveSourceIgnoresInvalidTargets) {
  RectLattice lat(kUniverse);
  std::size_t a = lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "s1");
  lat.removeSource(RectLattice::kTop);  // no-op
  lat.removeSource(999);                // no-op
  EXPECT_EQ(lat.size(), 2u);
  EXPECT_TRUE(lat.node(a).isSource);
}

TEST(RectLatticeTest, SourcesListedInInsertionOrder) {
  RectLattice lat(kUniverse);
  lat.insert(geo::Rect::fromOrigin({0, 0}, 10, 10), "s1");
  lat.insert(geo::Rect::fromOrigin({50, 50}, 10, 10), "s2");
  auto sources = lat.sources();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(lat.node(sources[0]).label, "s1");
  EXPECT_EQ(lat.node(sources[1]).label, "s2");
}

// Property tests over random lattices: structural invariants of the Hasse
// diagram (§4.1.2 Figs 5-6).
class LatticeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeInvariants, HasseDiagramIsConsistent) {
  mw::util::Rng rng{GetParam()};
  RectLattice lat(kUniverse);
  for (int i = 0; i < 8; ++i) {
    lat.insert(geo::Rect::fromOrigin({rng.uniform(0, 80), rng.uniform(0, 80)},
                                     rng.uniform(2, 20), rng.uniform(2, 20)),
               "s" + std::to_string(i));
  }
  for (std::size_t i = 0; i < lat.size(); ++i) {
    const auto& node = lat.node(i);
    // Parent/child symmetry and genuine containment.
    for (std::size_t p : node.parents) {
      EXPECT_TRUE(lat.node(p).rect.contains(node.rect));
      const auto& back = lat.node(p).children;
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
    for (std::size_t c : node.children) {
      EXPECT_TRUE(node.rect.contains(lat.node(c).rect));
    }
    // Every node except Top has at least one parent.
    if (i != RectLattice::kTop) {
      EXPECT_FALSE(node.parents.empty()) << "node " << i << " orphaned";
    }
    // Contributors are sources containing the node.
    for (std::size_t s : node.contributors) {
      EXPECT_TRUE(lat.node(s).isSource);
      EXPECT_TRUE(lat.node(s).rect.contains(node.rect));
    }
  }
  // Bottom parents have pairwise interior-disjoint... not necessarily, but
  // no bottom parent may contain another node.
  for (std::size_t p : lat.bottomParents()) {
    for (std::size_t i = 1; i < lat.size(); ++i) {
      if (i == p) continue;
      EXPECT_FALSE(lat.node(p).rect.containsStrictly(lat.node(i).rect))
          << "bottom parent " << p << " strictly contains node " << i;
    }
  }
}

TEST_P(LatticeInvariants, ClosedUnderPairwiseIntersection) {
  mw::util::Rng rng{GetParam()};
  RectLattice lat(kUniverse);
  for (int i = 0; i < 6; ++i) {
    lat.insert(geo::Rect::fromOrigin({rng.uniform(0, 80), rng.uniform(0, 80)},
                                     rng.uniform(2, 25), rng.uniform(2, 25)),
               "s" + std::to_string(i));
  }
  for (std::size_t i = 1; i < lat.size(); ++i) {
    for (std::size_t j = i + 1; j < lat.size(); ++j) {
      auto inter = lat.node(i).rect.intersection(lat.node(j).rect);
      if (!inter || inter->area() <= 0) continue;
      EXPECT_LT(lat.find(*inter), lat.size())
          << "missing intersection of nodes " << i << " and " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeInvariants, ::testing::Values(1u, 7u, 13u, 99u, 2024u));

}  // namespace
}  // namespace mw::lattice
