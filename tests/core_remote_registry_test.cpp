// Distributed name-service tests: discovery-then-connect, the paper's Gaia
// Space Repository pattern (§7).
#include <gtest/gtest.h>

#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

TEST(RemoteRegistryTest, AnnounceLookupWithdraw) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.lookup("LocationService"), std::nullopt);
  client.announce("LocationService", {"127.0.0.1", 4444});
  EXPECT_EQ(server.entryCount(), 1u);
  auto ep = client.lookup("LocationService");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 4444);

  // Re-announce replaces.
  client.announce("LocationService", {"127.0.0.1", 5555});
  EXPECT_EQ(client.lookup("LocationService")->port, 5555);
  EXPECT_EQ(server.entryCount(), 1u);

  EXPECT_TRUE(client.withdraw("LocationService"));
  EXPECT_FALSE(client.withdraw("LocationService"));
  EXPECT_EQ(client.lookup("LocationService"), std::nullopt);
}

TEST(RemoteRegistryTest, ListIsSorted) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("zeta", {"127.0.0.1", 1});
  client.announce("alpha", {"127.0.0.1", 2});
  client.announce("mid", {"127.0.0.1", 3});
  EXPECT_EQ(client.list(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(RemoteRegistryTest, MultipleClientsShareState) {
  RegistryServer server;
  RegistryClient producer("127.0.0.1", server.port());
  RegistryClient consumer("127.0.0.1", server.port());
  producer.announce("svc", {"127.0.0.1", 777});
  auto ep = consumer.lookup("svc");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 777);
}

TEST(RemoteRegistryTest, DiscoverThenTalkDirectly) {
  // The paper's full flow: the location service registers itself; an
  // application discovers it by name, connects, and queries.
  VirtualClock clock;
  Middlewhere stack(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  stack.database().registerSensor(ubi);
  std::uint16_t servicePort = stack.listen();

  RegistryServer registry;
  RegistryClient announcer("127.0.0.1", registry.port());
  announcer.announce("LocationService", {"127.0.0.1", servicePort});

  // The "application" knows only the registry.
  RegistryClient app("127.0.0.1", registry.port());
  auto ep = app.lookup("LocationService");
  ASSERT_TRUE(ep.has_value());
  auto remote = Middlewhere::connectRemote(ep->host, ep->port);

  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{"alice"};
  r.location = {5, 5};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  remote->ingest(r);
  auto est = remote->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

}  // namespace
}  // namespace mw::core
