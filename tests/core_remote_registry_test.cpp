// Distributed name-service tests: discovery-then-connect, the paper's Gaia
// Space Repository pattern (§7).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

TEST(RemoteRegistryTest, AnnounceLookupWithdraw) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.lookup("LocationService"), std::nullopt);
  client.announce("LocationService", {"127.0.0.1", 4444});
  EXPECT_EQ(server.entryCount(), 1u);
  auto ep = client.lookup("LocationService");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 4444);

  // Re-announce replaces.
  client.announce("LocationService", {"127.0.0.1", 5555});
  EXPECT_EQ(client.lookup("LocationService")->port, 5555);
  EXPECT_EQ(server.entryCount(), 1u);

  EXPECT_TRUE(client.withdraw("LocationService"));
  EXPECT_FALSE(client.withdraw("LocationService"));
  EXPECT_EQ(client.lookup("LocationService"), std::nullopt);
}

TEST(RemoteRegistryTest, ListIsSorted) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("zeta", {"127.0.0.1", 1});
  client.announce("alpha", {"127.0.0.1", 2});
  client.announce("mid", {"127.0.0.1", 3});
  EXPECT_EQ(client.list(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(RemoteRegistryTest, MultipleClientsShareState) {
  RegistryServer server;
  RegistryClient producer("127.0.0.1", server.port());
  RegistryClient consumer("127.0.0.1", server.port());
  producer.announce("svc", {"127.0.0.1", 777});
  auto ep = consumer.lookup("svc");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 777);
}

TEST(RemoteRegistryTest, DiscoverThenTalkDirectly) {
  // The paper's full flow: the location service registers itself; an
  // application discovers it by name, connects, and queries.
  VirtualClock clock;
  Middlewhere stack(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  stack.database().registerSensor(ubi);
  std::uint16_t servicePort = stack.listen();

  RegistryServer registry;
  RegistryClient announcer("127.0.0.1", registry.port());
  announcer.announce("LocationService", {"127.0.0.1", servicePort});

  // The "application" knows only the registry.
  RegistryClient app("127.0.0.1", registry.port());
  auto ep = app.lookup("LocationService");
  ASSERT_TRUE(ep.has_value());
  auto remote = Middlewhere::connectRemote(ep->host, ep->port);

  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{"alice"};
  r.location = {5, 5};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  remote->ingest(r);
  auto est = remote->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

// --- TTL / liveness -------------------------------------------------------------

TEST(RemoteRegistryTtlTest, EntryExpiresWithoutHeartbeat) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("svc", {"127.0.0.1", 4444}, util::msec(80));
  EXPECT_TRUE(client.lookup("svc").has_value());

  // Expiry is wall-clock (steady_clock heartbeat gaps, not model time).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(client.lookup("svc"), std::nullopt) << "TTL lapsed, no heartbeat";
  EXPECT_EQ(client.list(), std::vector<std::string>{});
  EXPECT_EQ(server.entryCount(), 0u);
  EXPECT_FALSE(client.withdraw("svc")) << "expired entries cannot be withdrawn";
}

TEST(RemoteRegistryTtlTest, HeartbeatKeepsEntryAlive) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("svc", {"127.0.0.1", 4444}, util::msec(120));
  // Re-announce well inside the TTL, several times over multiple lifetimes.
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    client.announce("svc", {"127.0.0.1", 4444}, util::msec(120));
    EXPECT_TRUE(client.lookup("svc").has_value()) << "heartbeat " << i;
  }
  // Stop heartbeating: the entry dies on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(client.lookup("svc"), std::nullopt);
}

TEST(RemoteRegistryTtlTest, ZeroTtlNeverExpires) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("forever", {"127.0.0.1", 4444});  // default TTL 0
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(client.lookup("forever").has_value());
  EXPECT_THROW(client.announce("bad", {"127.0.0.1", 1}, util::msec(-5)), util::ContractError);
}

TEST(RemoteRegistryTtlTest, ExpiredEntryCanBeReclaimed) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());
  client.announce("svc", {"127.0.0.1", 1000}, util::msec(60));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(client.lookup("svc"), std::nullopt);
  // A new owner (new endpoint) can take the expired name.
  client.announce("svc", {"127.0.0.1", 2000}, util::msec(60));
  auto ep = client.lookup("svc");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->port, 2000);
}

// --- generation fencing ---------------------------------------------------------

TEST(RemoteRegistryFenceTest, LowerGenerationAnnounceIsRejected) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 1000}, util::Duration::zero(), 1));
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 1000}, util::Duration::zero(), 1))
      << "re-announcing at the held generation is a heartbeat, not a conflict";
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 2000}, util::Duration::zero(), 2))
      << "a successor takes the name at a higher generation";
  EXPECT_FALSE(client.announce("svc", {"127.0.0.1", 1000}, util::Duration::zero(), 1))
      << "the fenced predecessor must not reclaim the name";
  auto entry = client.lookupEntry("svc");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->endpoint.port, 2000);
  EXPECT_EQ(entry->generation, 2u);
}

TEST(RemoteRegistryFenceTest, FenceSurvivesExpiryAndWithdraw) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 1000}, util::msec(60), 3));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_EQ(client.lookup("svc"), std::nullopt) << "TTL lapsed";
  // The entry is gone but the generation watermark is not: a zombie holder
  // of an OLDER generation must still be rejected, or failover would flap.
  EXPECT_FALSE(client.announce("svc", {"127.0.0.1", 1000}, util::msec(60), 2));
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 2000}, util::msec(60), 4));

  EXPECT_TRUE(client.withdraw("svc"));
  EXPECT_FALSE(client.announce("svc", {"127.0.0.1", 1000}, util::Duration::zero(), 3))
      << "withdraw releases the name, not the fence";
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 3000}, util::Duration::zero(), 5));
}

TEST(RemoteRegistryMetaTest, VersionedMetadataIsLastWriterWinsByVersion) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  EXPECT_EQ(client.getMeta("territory"), std::nullopt) << "never written";

  EXPECT_TRUE(client.putMeta("territory", {1, 2, 3}, 1));
  auto meta = client.getMeta("territory");
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->value, (util::Bytes{1, 2, 3}));
  EXPECT_EQ(meta->version, 1u);

  // A newer version replaces; an older or equal one is a rejected no-op —
  // the fence that makes concurrent balancer publishes converge.
  EXPECT_TRUE(client.putMeta("territory", {9}, 3));
  EXPECT_FALSE(client.putMeta("territory", {4, 4}, 2)) << "stale republish loses";
  EXPECT_FALSE(client.putMeta("territory", {5}, 3)) << "equal version loses";
  meta = client.getMeta("territory");
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->value, util::Bytes{9});
  EXPECT_EQ(meta->version, 3u);

  // Names are independent.
  EXPECT_TRUE(client.putMeta("other", {7}, 1));
  EXPECT_EQ(client.getMeta("territory")->version, 3u);
}

TEST(RemoteRegistryFenceTest, UnfencedLegacyAnnouncesStillReplace) {
  RegistryServer server;
  RegistryClient client("127.0.0.1", server.port());

  // Generation 0 (the default) keeps the original last-writer-wins
  // behavior, and lookupEntry reports it as unfenced.
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 1000}));
  EXPECT_TRUE(client.announce("svc", {"127.0.0.1", 2000}));
  auto entry = client.lookupEntry("svc");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->endpoint.port, 2000);
  EXPECT_EQ(entry->generation, 0u);
  EXPECT_EQ(client.lookupEntry("missing"), std::nullopt);
}

}  // namespace
}  // namespace mw::core
