// Spatial priors (§4.1.2 movement patterns / §11 future work): the uniform
// prior must reproduce the classic formula exactly; the dwell prior must
// shift probability toward frequented regions.
#include <gtest/gtest.h>

#include "fusion/engine.hpp"
#include "fusion/prior.hpp"
#include "util/error.hpp"

namespace mw::fusion {
namespace {

using mw::util::minutes;
using mw::util::sec;

const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 100, 100);

FusionInput input(const char* id, geo::Rect r, double p, double q) {
  return FusionInput{util::SensorId{id}, r, p, q, false};
}

// --- UniformPrior ------------------------------------------------------------------

TEST(UniformPriorTest, MassIsAreaFraction) {
  UniformPrior prior(kUniverse);
  EXPECT_DOUBLE_EQ(prior.mass(kUniverse), 1.0);
  EXPECT_DOUBLE_EQ(prior.mass(geo::Rect::fromOrigin({0, 0}, 10, 10)), 0.01);
  EXPECT_DOUBLE_EQ(prior.mass(geo::Rect::fromOrigin({500, 500}, 10, 10)), 0.0);
  // Clipped at the universe boundary.
  EXPECT_DOUBLE_EQ(prior.mass(geo::Rect::fromOrigin({95, 0}, 10, 100)), 0.05);
  EXPECT_THROW(UniformPrior{geo::Rect{}}, mw::util::ContractError);
}

TEST(UniformPriorTest, ReproducesClassicFormulaExactly) {
  UniformPrior prior(kUniverse);
  FusionInputs ins{input("s1", geo::Rect::fromOrigin({15, 15}, 5, 5), 0.9, 0.001),
                   input("s2", geo::Rect::fromOrigin({10, 10}, 20, 20), 0.8, 0.01)};
  for (const geo::Rect& region :
       {geo::Rect::fromOrigin({10, 10}, 20, 20), geo::Rect::fromOrigin({15, 15}, 5, 5),
        geo::Rect::fromOrigin({0, 0}, 50, 50), geo::Rect::fromOrigin({60, 60}, 10, 10)}) {
    EXPECT_NEAR(regionProbabilityWithPrior(region, ins, kUniverse, prior),
                regionProbability(region, ins, kUniverse), 1e-12);
  }
}

// --- RegionDwellPrior ----------------------------------------------------------------

RegionDwellPrior officePrior() {
  // Two rooms partition part of the floor; the rest is background.
  return RegionDwellPrior(kUniverse,
                          {{"office", geo::Rect::fromOrigin({0, 0}, 20, 20)},
                           {"lab", geo::Rect::fromOrigin({50, 50}, 20, 20)}},
                          /*smoothingSeconds=*/1.0);
}

TEST(DwellPriorTest, UnobservedIsNearUniformAcrossCells) {
  auto prior = officePrior();
  EXPECT_DOUBLE_EQ(prior.cellFraction("office"), prior.cellFraction("lab"));
  EXPECT_THROW((void)prior.cellFraction("nope"), mw::util::NotFoundError);
}

TEST(DwellPriorTest, ObservationsShiftMass) {
  auto prior = officePrior();
  // The person spends an hour in the office, nothing in the lab.
  prior.observe("office", minutes(60));
  EXPECT_GT(prior.cellFraction("office"), 0.9);
  geo::Rect officeRect = geo::Rect::fromOrigin({0, 0}, 20, 20);
  geo::Rect labRect = geo::Rect::fromOrigin({50, 50}, 20, 20);
  EXPECT_GT(prior.mass(officeRect), 50 * prior.mass(labRect));
}

TEST(DwellPriorTest, PointObservationsAttributeToContainingCell) {
  auto prior = officePrior();
  prior.observe(geo::Point2{10, 10}, minutes(30));  // inside office
  prior.observe(geo::Point2{90, 90}, minutes(10));  // background
  EXPECT_GT(prior.cellFraction("office"), prior.cellFraction("lab"));
  // Background mass exists: a region fully outside both cells has mass.
  EXPECT_GT(prior.mass(geo::Rect::fromOrigin({80, 80}, 10, 10)), 0.0);
}

TEST(DwellPriorTest, MassIsAdditiveAndNormalized) {
  auto prior = officePrior();
  prior.observe("office", minutes(10));
  prior.observe("lab", minutes(5));
  // Sub-cell additivity: halves of the office sum to the office.
  geo::Rect left = geo::Rect::fromOrigin({0, 0}, 10, 20);
  geo::Rect right = geo::Rect::fromOrigin({10, 0}, 10, 20);
  geo::Rect office = geo::Rect::fromOrigin({0, 0}, 20, 20);
  EXPECT_NEAR(prior.mass(left) + prior.mass(right), prior.mass(office), 1e-12);
  // Whole universe is certain.
  EXPECT_NEAR(prior.mass(kUniverse), 1.0, 1e-9);
}

TEST(DwellPriorTest, Validation) {
  EXPECT_THROW(RegionDwellPrior(kUniverse, {{"x", geo::Rect{}}}), mw::util::ContractError);
  EXPECT_THROW(RegionDwellPrior(kUniverse, {{"x", geo::Rect::fromOrigin({200, 0}, 5, 5)}}),
               mw::util::ContractError)
      << "cell outside universe";
  auto prior = officePrior();
  EXPECT_THROW(prior.observe("office", util::Duration{-1}), mw::util::ContractError);
}

// --- prior-aware fusion -----------------------------------------------------------------

TEST(PriorFusionTest, LearnedPriorBoostsFrequentedRegion) {
  // One weak sensor says the person is somewhere in the office. With the
  // learned "lives in the office" prior, the posterior should be higher
  // than under the uniform prior.
  auto prior = std::make_shared<RegionDwellPrior>(officePrior());
  prior->observe("office", minutes(120));

  geo::Rect office = geo::Rect::fromOrigin({0, 0}, 20, 20);
  FusionInputs ins{input("rf", office, 0.75, 0.01)};
  double uniform = regionProbability(office, ins, kUniverse);
  double learned = regionProbabilityWithPrior(office, ins, kUniverse, *prior);
  EXPECT_GT(learned, uniform);
  EXPECT_GT(learned, 0.9);
}

TEST(PriorFusionTest, LearnedPriorSuppressesNeverVisitedRegion) {
  auto prior = std::make_shared<RegionDwellPrior>(officePrior());
  prior->observe("office", minutes(120));
  geo::Rect lab = geo::Rect::fromOrigin({50, 50}, 20, 20);
  FusionInputs ins{input("rf", lab, 0.75, 0.01)};
  double uniform = regionProbability(lab, ins, kUniverse);
  double learned = regionProbabilityWithPrior(lab, ins, kUniverse, *prior);
  EXPECT_LT(learned, uniform) << "evidence for the lab is discounted by habit";
}

TEST(PriorFusionTest, EngineUsesInstalledPrior) {
  FusionEngine engine(kUniverse);
  EXPECT_FALSE(engine.hasPrior());
  geo::Rect office = geo::Rect::fromOrigin({0, 0}, 20, 20);
  FusionInputs ins{input("rf", office, 0.75, 0.01)};
  double before = engine.probabilityInRegion(office, ins);

  auto prior = std::make_shared<RegionDwellPrior>(officePrior());
  prior->observe("office", minutes(120));
  engine.setPrior(prior);
  EXPECT_TRUE(engine.hasPrior());
  double after = engine.probabilityInRegion(office, ins);
  EXPECT_GT(after, before);

  engine.setPrior(nullptr);
  EXPECT_NEAR(engine.probabilityInRegion(office, ins), before, 1e-12);
}

TEST(PriorFusionTest, NoEvidenceReturnsPriorMass) {
  auto prior = officePrior();
  prior.observe("office", minutes(60));
  geo::Rect office = geo::Rect::fromOrigin({0, 0}, 20, 20);
  EXPECT_NEAR(regionProbabilityWithPrior(office, {}, kUniverse, prior), prior.mass(office),
              1e-12);
}

}  // namespace
}  // namespace mw::fusion
