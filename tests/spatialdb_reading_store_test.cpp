// The striped reading store: concurrent appends to the same and different
// objects against snapshot readers (run under -DMW_SANITIZE=thread to prove
// the epoch-publication protocol race-free), lazy TTL-expiry epoch bumps,
// the shared sensor-table epoch path, the catalog/readings lock split (a
// long catalog read must never block ingest), the batch-size-independent
// ingest worker pool, and an oracle pinning sharded ingest to byte-identical
// fusion results vs. the sequential path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::msec;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

db::SpatialDatabase makeDb(const util::Clock& clock) {
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  auto addRoom = [&](const char* id, geo::Rect r) {
    db::SpatialObjectRow row;
    row.id = util::SpatialObjectId{id};
    row.globPrefix = "SC";
    row.objectType = db::ObjectType::Room;
    row.geometryType = db::GeometryType::Polygon;
    row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
    database.addObject(row);
  };
  addRoom("roomA", geo::Rect::fromOrigin({0, 0}, 20, 20));
  addRoom("roomB", geo::Rect::fromOrigin({40, 0}, 20, 20));

  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = sec(30);
  database.registerSensor(ubi);
  db::SensorMeta ubi2 = ubi;
  ubi2.sensorId = SensorId{"ubi-2"};
  database.registerSensor(ubi2);
  return database;
}

db::SensorReading reading(const util::Clock& clock, const char* sensor, const char* person,
                          geo::Point2 where) {
  db::SensorReading r;
  r.sensorId = SensorId{sensor};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{person};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

struct Fixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  Fixture() : db(makeDb(clock)), service(clock, db) {}

  db::SensorReading read(const char* sensor, const char* person, geo::Point2 where) {
    return reading(clock, sensor, person, where);
  }
};

// --- concurrency ---------------------------------------------------------------

TEST(ReadingStoreConcurrencyTest, DifferentObjectsAppendWithoutContention) {
  Fixture f;
  constexpr int kThreads = 4;
  constexpr int kObjectsPerThread = 4;
  constexpr int kRounds = 50;

  std::atomic<bool> stop{false};
  std::atomic<int> snapshotsRead{0};

  // Readers take lock-free snapshots of every read surface while the
  // writers run; TSan proves the publication protocol, the asserts prove
  // each snapshot is internally consistent.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const auto& id : f.db.knownMobileObjects()) {
          auto stored = f.db.readingsFor(id);
          EXPECT_LE(stored.size(), 1u);  // one sensor per object below
          (void)f.db.readingsEpoch(id);
        }
        (void)f.db.mobileObjectsIntersecting(f.db.universe());
        snapshotsRead.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int o = 0; o < kObjectsPerThread; ++o) {
          std::string person = "p" + std::to_string(t) + "-" + std::to_string(o);
          f.db.insertReading(
              f.read("ubi-1", person.c_str(), {5.0 + o + round * 0.01, 5.0 + t}));
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_GT(snapshotsRead.load(), 0);
  EXPECT_EQ(f.db.knownMobileObjects().size(),
            static_cast<std::size_t>(kThreads * kObjectsPerThread));
  // Writers always targeted distinct objects, so no append ever found its
  // object's writer lock held.
  EXPECT_EQ(f.db.readingWriterContentions(), 0u);
}

TEST(ReadingStoreConcurrencyTest, SameObjectAppendsSerializePerObject) {
  Fixture f;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  // One producer per sensor technology, all reporting the same person — the
  // MPSC shape the per-object writer mutex exists for.
  for (int t = 0; t < kThreads; ++t) {
    db::SensorMeta meta;
    meta.sensorId = SensorId{"s" + std::to_string(t)};
    meta.sensorType = "Ubisense";
    meta.errorSpec = quality::ubisenseSpec(1.0);
    meta.quality.ttl = sec(30);
    f.db.registerSensor(meta);
  }
  const MobileObjectId person{"alice"};
  const std::uint64_t before = f.db.readingsEpoch(person);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t lastEpoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t epoch = f.db.readingsEpoch(person);
      EXPECT_GE(epoch, lastEpoch);  // published epochs are monotonic
      lastEpoch = epoch;
      EXPECT_LE(f.db.readingsFor(person).size(), static_cast<std::size_t>(kThreads));
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::string sensor = "s" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        f.db.insertReading(f.read(sensor.c_str(), "alice", {5.0 + t, 5.0 + round * 0.01}));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Every append published exactly one epoch increment, none were lost.
  EXPECT_EQ(f.db.readingsEpoch(person) - before,
            static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(f.db.readingsFor(person).size(), static_cast<std::size_t>(kThreads));
}

TEST(ReadingStoreConcurrencyTest, LongCatalogReadDoesNotBlockIngest) {
  Fixture f;
  std::atomic<bool> predicateEntered{false};
  std::atomic<bool> insertsDone{false};
  std::atomic<bool> scannerDone{false};

  // The scanner parks inside db.query()'s predicate, holding the catalog
  // lock for the whole duration of the ingest burst below.
  std::thread scanner([&] {
    bool parked = false;
    (void)f.db.query([&](const db::SpatialObjectRow&) {
      if (!parked) {
        parked = true;
        predicateEntered.store(true, std::memory_order_release);
        const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
        while (!insertsDone.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
      }
      return false;
    });
    scannerDone.store(true, std::memory_order_release);
  });
  while (!predicateEntered.load(std::memory_order_acquire)) std::this_thread::yield();

  // With readings behind the catalog lock these inserts would deadlock-wait
  // on the parked scanner; through the striped store they complete while it
  // still holds the lock.
  for (int i = 0; i < 32; ++i) {
    f.db.insertReading(f.read("ubi-1", "walker", {1.0 + i * 0.1, 1.0}));
  }
  EXPECT_FALSE(scannerDone.load(std::memory_order_acquire));

  insertsDone.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_EQ(f.db.readingsFor(MobileObjectId{"walker"}).size(), 1u);
}

// --- TTL expiry ----------------------------------------------------------------

TEST(ReadingStoreTest, TtlExpiryBumpsEpochLazilyExactlyOnce) {
  Fixture f;
  const MobileObjectId person{"alice"};
  f.db.insertReading(f.read("ubi-1", "alice", {5, 5}));
  const std::uint64_t fresh = f.db.readingsEpoch(person);
  ASSERT_EQ(f.db.readingsFor(person).size(), 1u);

  f.clock.advance(sec(31));  // past the 30 s TTL
  const std::uint64_t expired = f.db.readingsEpoch(person);
  EXPECT_EQ(expired, fresh + 1);  // the boundary crossing published one bump
  EXPECT_EQ(f.db.readingsEpoch(person), expired);  // and only one
  EXPECT_TRUE(f.db.readingsFor(person).empty());

  // The stale evidence is still stored (lazy purge), so the object remains
  // discoverable until purgeExpired removes it and moves the catalog epoch.
  EXPECT_EQ(f.db.knownMobileObjects().size(), 1u);
  const std::uint64_t catalog = f.db.catalogEpoch();
  f.db.purgeExpired();
  EXPECT_TRUE(f.db.knownMobileObjects().empty());
  EXPECT_EQ(f.db.catalogEpoch(), catalog + 1);
}

// --- sensor-table epoch discipline (shared helper regression) ------------------

TEST(ReadingStoreTest, RegisterAndDeregisterShareOneEpochPath) {
  Fixture f;
  const MobileObjectId person{"alice"};
  f.db.insertReading(f.read("ubi-1", "alice", {5, 5}));

  const std::uint64_t e0 = f.db.readingsEpoch(person);
  const std::uint64_t c0 = f.db.catalogEpoch();

  // Registration goes through the shared sensor-change helper: one readings
  // epoch bump (calibration shifts every confidence) AND one catalog bump.
  db::SensorMeta extra;
  extra.sensorId = SensorId{"ubi-3"};
  extra.sensorType = "Ubisense";
  extra.errorSpec = quality::ubisenseSpec(1.0);
  extra.quality.ttl = sec(30);
  f.db.registerSensor(extra);
  EXPECT_EQ(f.db.readingsEpoch(person), e0 + 1);
  EXPECT_EQ(f.db.catalogEpoch(), c0 + 1);

  // Deregistration must take the exact same path — identical deltas.
  ASSERT_TRUE(f.db.deregisterSensor(SensorId{"ubi-3"}));
  EXPECT_EQ(f.db.readingsEpoch(person), e0 + 2);
  EXPECT_EQ(f.db.catalogEpoch(), c0 + 2);

  // Unknown sensors bump nothing.
  EXPECT_FALSE(f.db.deregisterSensor(SensorId{"ubi-3"}));
  EXPECT_EQ(f.db.readingsEpoch(person), e0 + 2);
  EXPECT_EQ(f.db.catalogEpoch(), c0 + 2);

  // Deregistering a sensor with stored readings hides them immediately.
  f.db.insertReading(f.read("ubi-2", "alice", {6, 5}));
  ASSERT_EQ(f.db.readingsFor(person).size(), 2u);
  ASSERT_TRUE(f.db.deregisterSensor(SensorId{"ubi-2"}));
  EXPECT_EQ(f.db.readingsFor(person).size(), 1u);
}

// --- ingest pool (keyed on shard width, not batch size) ------------------------

TEST(ReadingStoreTest, IngestPoolRebuildsOnlyOnWidthChange) {
  Fixture f;
  f.service.setIngestShards(4);
  std::vector<db::SensorReading> small;
  for (int p = 0; p < 2; ++p) {
    small.push_back(f.read("ubi-1", ("s" + std::to_string(p)).c_str(), {5.0 + p, 5}));
  }
  std::vector<db::SensorReading> large;
  for (int p = 0; p < 64; ++p) {
    large.push_back(f.read("ubi-1", ("l" + std::to_string(p)).c_str(), {5.0 + p * 0.1, 8}));
  }

  // Small batches shard below the pool width but must reuse the pool.
  f.service.ingestBatch(small);
  f.service.ingestBatch(large);
  f.service.ingestBatch(small);
  EXPECT_EQ(f.service.ingestPoolRecreations(), 1u);

  // A width change drops the pool; the next batch rebuilds it once.
  f.service.setIngestShards(2);
  f.service.ingestBatch(large);
  f.service.ingestBatch(small);
  EXPECT_EQ(f.service.ingestPoolRecreations(), 2u);

  // Setting the same width is a no-op.
  f.service.setIngestShards(2);
  f.service.ingestBatch(large);
  EXPECT_EQ(f.service.ingestPoolRecreations(), 2u);
}

// --- oracle: sharded ingest is byte-identical to sequential --------------------

TEST(ReadingStoreTest, ShardedIngestMatchesSequentialOracle) {
  VirtualClock clock;
  db::SpatialDatabase seqDb = makeDb(clock);
  db::SpatialDatabase parDb = makeDb(clock);
  LocationService seq(clock, seqDb);
  LocationService par(clock, parDb);
  seq.setIngestShards(1);
  par.setIngestShards(4);

  constexpr int kPeople = 12;
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<db::SensorReading> batch;
    for (int p = 0; p < kPeople; ++p) {
      const char* sensor = (p + round) % 2 == 0 ? "ubi-1" : "ubi-2";
      std::string person = "p" + std::to_string(p);
      batch.push_back(reading(clock, sensor, person.c_str(),
                              {2.0 + p * 7.0 + round * 0.5, 5.0 + (p % 5) * 8.0}));
    }
    seq.ingestBatch(batch);
    par.ingestBatch(batch);
    clock.advance(msec(500));
  }

  for (int p = 0; p < kPeople; ++p) {
    MobileObjectId person{"p" + std::to_string(p)};
    auto a = seq.locateObject(person);
    auto b = par.locateObject(person);
    ASSERT_EQ(a.has_value(), b.has_value()) << person.str();
    if (!a) continue;
    // Byte-identical: exact doubles, same supporting/discarded sets, same
    // class — sharding preserves per-object order, so fusion sees the same
    // inputs in the same order.
    EXPECT_EQ(a->region, b->region) << person.str();
    EXPECT_EQ(a->probability, b->probability) << person.str();
    EXPECT_EQ(a->cls, b->cls) << person.str();
    EXPECT_EQ(a->supporting, b->supporting) << person.str();
    EXPECT_EQ(a->discarded, b->discarded) << person.str();
    EXPECT_EQ(seqDb.readingsEpoch(person), parDb.readingsEpoch(person)) << person.str();
  }
  EXPECT_EQ(seqDb.catalogEpoch(), parDb.catalogEpoch());
}

}  // namespace
}  // namespace mw::core
