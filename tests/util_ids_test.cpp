#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace mw::util {
namespace {

TEST(StringIdTest, DefaultIsEmpty) {
  SensorId id;
  EXPECT_TRUE(id.empty());
  EXPECT_EQ(id.str(), "");
}

TEST(StringIdTest, ComparesByValue) {
  SensorId a{"ubi-1"};
  SensorId b{"ubi-1"};
  SensorId c{"ubi-2"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(StringIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<SensorId, AdapterId>);
  static_assert(!std::is_same_v<MobileObjectId, SpatialObjectId>);
}

TEST(StringIdTest, Streams) {
  std::ostringstream os;
  os << SensorId{"RF-12"};
  EXPECT_EQ(os.str(), "RF-12");
}

TEST(StringIdTest, Hashable) {
  std::unordered_set<MobileObjectId> set;
  set.insert(MobileObjectId{"tom-pda"});
  set.insert(MobileObjectId{"tom-pda"});
  set.insert(MobileObjectId{"ralph-bat"});
  EXPECT_EQ(set.size(), 2u);
}

TEST(NumericIdTest, DefaultIsInvalid) {
  TriggerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(NumericIdTest, SequencerAllocatesDistinctValidIds) {
  IdSequencer<TriggerId> seq;
  auto a = seq.next();
  auto b = seq.next();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(NumericIdTest, Hashable) {
  std::unordered_set<SubscriptionId> set;
  set.insert(SubscriptionId{1});
  set.insert(SubscriptionId{1});
  set.insert(SubscriptionId{2});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace mw::util
