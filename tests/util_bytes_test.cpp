#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mw::util {
namespace {

TEST(BytesTest, RoundTripsAllScalarTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello middleware");
  w.blob({1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello middleware");
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

TEST(BytesTest, SpecialDoubles) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.f64()));
  EXPECT_EQ(std::signbit(r.f64()), true);
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(BytesTest, TruncatedInputThrowsParseError) {
  ByteWriter w;
  w.u32(7);
  Bytes data = w.bytes();
  data.pop_back();
  ByteReader r(data);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(BytesTest, TruncatedStringLengthThrows) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_THROW(r.str(), ParseError);
}

TEST(BytesTest, RemainingTracksConsumption) {
  ByteWriter w;
  w.u32(1);
  w.u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.bytes().size(), 2u);
  EXPECT_EQ(w.bytes()[0], 0x02);
  EXPECT_EQ(w.bytes()[1], 0x01);
}

}  // namespace
}  // namespace mw::util
