#include "reasoning/connectivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mw::reasoning {
namespace {

using geo::Rect;

// A small floor: two rooms off a corridor.
//   roomA (0,0)-(4,4)   roomB (8,0)-(12,4)
//   corridor (0,4)-(12,6)
// Doors: A->corridor at y=4, x in [1,2]; B->corridor at y=4, x in [9,10].
ConnectivityGraph smallFloor(PassageKind kindB = PassageKind::Free) {
  ConnectivityGraph g;
  g.addRegion("roomA", Rect::fromOrigin({0, 0}, 4, 4));
  g.addRegion("roomB", Rect::fromOrigin({8, 0}, 4, 4));
  g.addRegion("corridor", Rect::fromOrigin({0, 4}, 12, 2));
  EXPECT_EQ(g.addPassage({"doorA", {{1, 4}, {2, 4}}, PassageKind::Free}), 1u);
  EXPECT_EQ(g.addPassage({"doorB", {{9, 4}, {10, 4}}, kindB}), 1u);
  return g;
}

TEST(ConnectivityTest, RegionRegistration) {
  ConnectivityGraph g;
  g.addRegion("a", Rect::fromOrigin({0, 0}, 1, 1));
  EXPECT_TRUE(g.hasRegion("a"));
  EXPECT_FALSE(g.hasRegion("b"));
  EXPECT_EQ(g.regionCount(), 1u);
  EXPECT_THROW(g.addRegion("a", Rect::fromOrigin({5, 5}, 1, 1)), mw::util::ContractError);
  EXPECT_THROW(g.addRegion("", Rect::fromOrigin({0, 0}, 1, 1)), mw::util::ContractError);
  EXPECT_THROW((void)g.regionRect("nope"), mw::util::NotFoundError);
}

TEST(ConnectivityTest, PassageAutoConnectsAdjacentRegions) {
  ConnectivityGraph g = smallFloor();
  EXPECT_EQ(g.edgeCount(), 2u);
}

TEST(ConnectivityTest, PassageOnNoSharedBoundaryConnectsNothing) {
  ConnectivityGraph g;
  g.addRegion("a", Rect::fromOrigin({0, 0}, 4, 4));
  g.addRegion("b", Rect::fromOrigin({8, 0}, 4, 4));
  EXPECT_EQ(g.addPassage({"nowhere", {{6, 1}, {6, 2}}, PassageKind::Free}), 0u);
}

TEST(ConnectivityTest, EuclideanVsPathDistance) {
  ConnectivityGraph g = smallFloor();
  double euclid = g.euclideanDistance("roomA", "roomB");
  EXPECT_DOUBLE_EQ(euclid, 8.0);  // centers (2,2) and (10,2)
  auto path = g.pathDistance("roomA", "roomB");
  ASSERT_TRUE(path.has_value());
  // Path: (2,2) -> doorA(1.5,4) -> doorB(9.5,4) -> (10,2).
  double expect = std::hypot(0.5, 2.0) + 8.0 + std::hypot(0.5, 2.0);
  EXPECT_NEAR(*path, expect, 1e-9);
  EXPECT_GT(*path, euclid) << "walls make the walk longer than the crow flies";
}

TEST(ConnectivityTest, RouteSequence) {
  ConnectivityGraph g = smallFloor();
  auto r = g.route("roomA", "roomB");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->regions, (std::vector<std::string>{"roomA", "corridor", "roomB"}));
}

TEST(ConnectivityTest, SameRegionZeroDistance) {
  ConnectivityGraph g = smallFloor();
  auto d = g.pathDistance("roomA", "roomA");
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 0.0);
}

TEST(ConnectivityTest, UnreachableRegion) {
  ConnectivityGraph g;
  g.addRegion("a", Rect::fromOrigin({0, 0}, 4, 4));
  g.addRegion("island", Rect::fromOrigin({50, 50}, 4, 4));
  EXPECT_EQ(g.pathDistance("a", "island"), std::nullopt);
  EXPECT_EQ(g.route("a", "island"), std::nullopt);
}

TEST(ConnectivityTest, RestrictedPassageExcludable) {
  // Room B is behind a locked door: reachable with a key, not without.
  ConnectivityGraph g = smallFloor(PassageKind::Restricted);
  EXPECT_TRUE(g.pathDistance("roomA", "roomB", /*includeRestricted=*/true).has_value());
  EXPECT_EQ(g.pathDistance("roomA", "roomB", /*includeRestricted=*/false), std::nullopt);
}

TEST(ConnectivityTest, ExplicitConnectForStairs) {
  ConnectivityGraph g;
  g.addRegion("floor1", Rect::fromOrigin({0, 0}, 10, 10));
  g.addRegion("floor2", Rect::fromOrigin({100, 0}, 10, 10));
  g.connect("floor1", "floor2", {5, 5});
  EXPECT_TRUE(g.pathDistance("floor1", "floor2").has_value());
  EXPECT_THROW(g.connect("floor1", "floor1", {0, 0}), mw::util::ContractError);
}

TEST(ConnectivityTest, RegionAtPicksSmallestContaining) {
  ConnectivityGraph g;
  g.addRegion("floor", Rect::fromOrigin({0, 0}, 100, 100));
  g.addRegion("room", Rect::fromOrigin({10, 10}, 5, 5));
  EXPECT_EQ(g.regionAt({12, 12}), "room");
  EXPECT_EQ(g.regionAt({50, 50}), "floor");
  EXPECT_EQ(g.regionAt({500, 500}), std::nullopt);
}

TEST(ConnectivityTest, AStarMatchesDijkstra) {
  ConnectivityGraph g = smallFloor();
  auto dijkstra = g.route("roomA", "roomB");
  auto astar = g.routeAStar("roomA", "roomB");
  ASSERT_TRUE(dijkstra && astar);
  EXPECT_NEAR(astar->length, dijkstra->length, 1e-9);
  EXPECT_EQ(astar->regions, dijkstra->regions);
  // Unreachable and same-region cases agree too.
  EXPECT_EQ(g.routeAStar("roomA", "roomA")->length, 0.0);
  ConnectivityGraph island;
  island.addRegion("a", Rect::fromOrigin({0, 0}, 4, 4));
  island.addRegion("b", Rect::fromOrigin({50, 50}, 4, 4));
  EXPECT_EQ(island.routeAStar("a", "b"), std::nullopt);
}

TEST(ConnectivityTest, AStarMatchesDijkstraOnRandomGrids) {
  // Property: over random grid worlds, A* and Dijkstra always agree on the
  // path length (the Euclidean heuristic is admissible and consistent).
  mw::util::Rng rng{404};
  for (int world = 0; world < 10; ++world) {
    ConnectivityGraph g;
    constexpr int kSide = 5;
    for (int x = 0; x < kSide; ++x) {
      for (int y = 0; y < kSide; ++y) {
        g.addRegion("r" + std::to_string(x) + "_" + std::to_string(y),
                    Rect::fromOrigin({x * 12.0, y * 12.0}, 10, 10));
      }
    }
    auto name = [](int x, int y) {
      return "r" + std::to_string(x) + "_" + std::to_string(y);
    };
    // Random subset of grid adjacencies.
    for (int x = 0; x < kSide; ++x) {
      for (int y = 0; y < kSide; ++y) {
        if (x + 1 < kSide && rng.chance(0.8)) {
          g.connect(name(x, y), name(x + 1, y), {x * 12.0 + 11, y * 12.0 + 5});
        }
        if (y + 1 < kSide && rng.chance(0.8)) {
          g.connect(name(x, y), name(x, y + 1), {x * 12.0 + 5, y * 12.0 + 11});
        }
      }
    }
    for (int q = 0; q < 20; ++q) {
      std::string a = name(static_cast<int>(rng.uniformInt(0, kSide - 1)),
                           static_cast<int>(rng.uniformInt(0, kSide - 1)));
      std::string b = name(static_cast<int>(rng.uniformInt(0, kSide - 1)),
                           static_cast<int>(rng.uniformInt(0, kSide - 1)));
      auto d = g.route(a, b);
      auto s = g.routeAStar(a, b);
      ASSERT_EQ(d.has_value(), s.has_value()) << a << "->" << b;
      if (d) {
        EXPECT_NEAR(d->length, s->length, 1e-9) << a << "->" << b;
      }
    }
  }
}

TEST(ConnectivityTest, ShortestOfMultipleRoutes) {
  // A square of four rooms around a block: two routes from nw to se; the
  // graph must pick the shorter.
  ConnectivityGraph g;
  g.addRegion("nw", Rect::fromOrigin({0, 10}, 10, 10));
  g.addRegion("ne", Rect::fromOrigin({10, 10}, 30, 10));  // wide: longer way round
  g.addRegion("sw", Rect::fromOrigin({0, 0}, 10, 10));
  g.addRegion("se", Rect::fromOrigin({10, 0}, 30, 10));
  g.addPassage({"nw-ne", {{10, 12}, {10, 14}}, PassageKind::Free});
  g.addPassage({"nw-sw", {{2, 10}, {4, 10}}, PassageKind::Free});
  g.addPassage({"ne-se", {{36, 10}, {38, 10}}, PassageKind::Free});
  g.addPassage({"sw-se", {{10, 2}, {10, 4}}, PassageKind::Free});
  auto r = g.route("nw", "se");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->regions, (std::vector<std::string>{"nw", "sw", "se"}))
      << "route through sw is shorter than through the wide ne room";
}

}  // namespace
}  // namespace mw::reasoning
