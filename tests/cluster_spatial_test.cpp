// Spatial-partitioning cluster tests: the kd-split TerritoryMap, the
// region-targeted router (Partitioning::Spatial) and its dynamic load
// balancer. The load-bearing property is oracle equivalence — the spatial
// cluster answers byte-for-byte like an object-hash (modulo) cluster fed
// the same readings, including across boundary crossings and live territory
// migration — plus the perf contract: region queries touch only the shards
// whose territory intersects the region. Suite names ClusterSpatial* are
// matched by the sanitizer regexes (they contain "Cluster").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster_location_service.hpp"
#include "cluster/shard_host.hpp"
#include "cluster/territory_map.hpp"
#include "core/codec.hpp"
#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "util/error.hpp"

namespace mw::cluster {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

geo::Rect universe() { return geo::Rect::fromOrigin({0, 0}, 100, 50); }

void configureWorld(core::Middlewhere& mw) {
  db::SpatialObjectRow room;
  room.id = util::SpatialObjectId{"roomA"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  mw.database().addObject(room);

  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  mw.database().registerSensor(ubi);
}

db::SensorReading makeReading(util::TimePoint when, geo::Point2 where,
                              const std::string& object) {
  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{object};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = when;
  return r;
}

RetryPolicy fastRetry() {
  RetryPolicy p;
  p.callDeadline = util::sec(2);
  p.maxRetries = 1;
  p.backoffBase = util::msec(2);
  p.backoffMax = util::msec(10);
  p.downAfterFailures = 2;
  p.probeInterval = util::msec(30);
  return p;
}

util::Bytes estimateBytes(const fusion::LocationEstimate& est) {
  util::ByteWriter w;
  core::encodeEstimate(w, est);
  return w.bytes();
}

// --- territory map unit tests ---------------------------------------------------

TEST(ClusterSpatialMapTest, UniformIsAPureFunctionOfTheMemberSet) {
  const auto a = TerritoryMap::uniform(universe(), {"b", "a", "d", "c"});
  const auto b = TerritoryMap::uniform(universe(), {"d", "c", "b", "a"});
  EXPECT_EQ(a, b) << "member ORDER must not matter";
  EXPECT_EQ(a.version(), 1u);
  EXPECT_EQ(a.leaves().size(), 4u) << "one leaf per member";
  EXPECT_EQ(a.owners(), (std::vector<std::string>{"a", "b", "c", "d"}));

  // Equal-area split, tiling the universe exactly.
  double total = 0;
  for (const auto& leaf : a.leaves()) {
    EXPECT_NEAR(leaf.rect.area(), universe().area() / 4.0, 1e-9);
    total += leaf.rect.area();
  }
  EXPECT_NEAR(total, universe().area(), 1e-9);

  EXPECT_THROW((void)TerritoryMap::uniform(universe(), {}), util::ContractError);
  EXPECT_THROW((void)TerritoryMap::uniform(geo::Rect(), {"a"}), util::ContractError);
}

TEST(ClusterSpatialMapTest, EveryPointHasExactlyOneOwner) {
  const auto map = TerritoryMap::uniform(universe(), {"a", "b", "c"});
  // Sample a dense grid INCLUDING split boundaries and the universe's own
  // edges: half-open leaves must hand every point to exactly one owner.
  for (double x = 0; x <= 100.0; x += 2.5) {
    for (double y = 0; y <= 50.0; y += 2.5) {
      const geo::Point2 p{x, y};
      const TerritoryLeaf& leaf = map.leafForPoint(p);
      EXPECT_EQ(map.ownerForPoint(p), leaf.owner);
      EXPECT_TRUE(leaf.rect.contains(p)) << "owner leaf must contain (" << x << "," << y << ")";
    }
  }
  // Each leaf's center maps back to itself.
  for (const auto& leaf : map.leaves()) {
    EXPECT_EQ(map.leafForPoint(leaf.rect.center()).id, leaf.id);
  }
  // Points outside the universe clamp instead of throwing.
  EXPECT_NO_THROW((void)map.ownerForPoint({-5, 70}));
  EXPECT_THROW((void)TerritoryMap().ownerForPoint({1, 1}), util::ContractError);
}

TEST(ClusterSpatialMapTest, SplitAndReassignBumpVersionsAndKeepIdsStable) {
  const auto map = TerritoryMap::uniform(universe(), {"a", "b"});
  const TerritoryLeaf aLeaf = map.leavesOf("a").front();

  const auto split = map.splitLeaf(aLeaf.id, "b");
  EXPECT_EQ(split.version(), map.version() + 1);
  EXPECT_EQ(split.leaves().size(), 3u);
  const TerritoryLeaf& lowHalf = *split.leafById(aLeaf.id);
  const TerritoryLeaf& highHalf = split.leaves().back();
  EXPECT_EQ(lowHalf.owner, "a") << "low half keeps id and owner";
  EXPECT_EQ(highHalf.owner, "b") << "high half goes to the new owner";
  EXPECT_NE(highHalf.id, aLeaf.id) << "fresh id for the new half";
  EXPECT_NEAR(lowHalf.rect.area() + highHalf.rect.area(), aLeaf.rect.area(), 1e-9);
  EXPECT_TRUE(aLeaf.rect.contains(lowHalf.rect));
  EXPECT_TRUE(aLeaf.rect.contains(highHalf.rect));

  const auto reassigned = map.reassignLeaf(aLeaf.id, "b");
  EXPECT_EQ(reassigned.version(), map.version() + 1);
  EXPECT_EQ(reassigned.leafById(aLeaf.id)->owner, "b");

  EXPECT_THROW((void)map.splitLeaf(9999, "b"), util::ContractError);
}

TEST(ClusterSpatialMapTest, MergeLeavesRoundTripsASplit) {
  const auto map = TerritoryMap::uniform(universe(), {"a", "b"});
  const TerritoryLeaf aLeaf = map.leavesOf("a").front();

  // Split, then merge the halves back: the geometry round-trips exactly and
  // the version moves monotonically (+1 per mutation, never back).
  const auto split = map.splitLeaf(aLeaf.id, "b");
  const std::uint32_t newHalf = split.leaves().back().id;
  EXPECT_EQ(split.mergeableSibling(aLeaf.id), newHalf)
      << "the freshly split sibling is the canonical merge candidate";

  const auto merged = split.mergeLeaves(aLeaf.id, newHalf);
  EXPECT_EQ(merged.version(), map.version() + 2);
  EXPECT_EQ(merged.leaves().size(), map.leaves().size());
  EXPECT_EQ(merged.leafById(aLeaf.id)->rect, aLeaf.rect)
      << "split-then-merge restores the original leaf bit-for-bit";
  EXPECT_EQ(merged.leafById(aLeaf.id)->owner, "a") << "keepId keeps its owner";
  EXPECT_EQ(merged.leafById(newHalf), nullptr) << "dropId disappears";

  double total = 0;
  for (const auto& leaf : merged.leaves()) total += leaf.rect.area();
  EXPECT_NEAR(total, universe().area(), 1e-9) << "merging loses no territory";

  // mergeableSibling prefers a same-owner neighbour when one exists.
  const auto bLeaf = map.leavesOf("b").front();
  const auto threeWay = map.splitLeaf(aLeaf.id, "a");
  const auto sibling = threeWay.mergeableSibling(aLeaf.id);
  ASSERT_TRUE(sibling.has_value());
  EXPECT_EQ(threeWay.leafById(*sibling)->owner, "a")
      << "same-owner merge moves no data and must win";

  // Error cases: unknown ids, self-merge, and non-rectangular unions.
  EXPECT_THROW((void)split.mergeLeaves(aLeaf.id, 9999), util::ContractError);
  EXPECT_THROW((void)split.mergeLeaves(aLeaf.id, aLeaf.id), util::ContractError);
  const auto askew = split.splitLeaf(newHalf, "b");
  const std::uint32_t corner = askew.leaves().back().id;
  EXPECT_THROW((void)askew.mergeLeaves(aLeaf.id, corner), util::ContractError)
      << "leaves that no longer share a full edge must not merge";
  EXPECT_EQ(askew.mergeableSibling(9999), std::nullopt);
  (void)bLeaf;
}

TEST(ClusterSpatialMapTest, EncodeDecodeRoundTripsExactly) {
  const auto map =
      TerritoryMap::uniform(universe(), {"a", "b", "c"}).splitLeaf(0, "c").reassignLeaf(1, "a");
  const auto back = TerritoryMap::decode(map.encode());
  EXPECT_EQ(back, map) << "wire round trip must be lossless (geometry bit-for-bit)";
  EXPECT_EQ(back.version(), map.version());

  const TerritoryMap empty;
  EXPECT_EQ(TerritoryMap::decode(empty.encode()), empty);
}

TEST(ClusterSpatialMapTest, OwnersIntersectingReturnsOnlyTouchedOwners) {
  const auto map = TerritoryMap::uniform(universe(), {"a", "b", "c", "d"});
  // The whole universe touches everyone.
  EXPECT_EQ(map.ownersIntersecting(universe()).size(), 4u);
  // A tiny region strictly inside one leaf touches exactly its owner.
  for (const auto& leaf : map.leaves()) {
    const auto owners = map.ownersIntersecting(geo::Rect::centeredSquare(leaf.rect.center(), 1));
    ASSERT_EQ(owners.size(), 1u) << "leaf " << leaf.id;
    EXPECT_EQ(owners.front(), leaf.owner);
  }
  // A region outside the universe touches nobody.
  EXPECT_TRUE(map.ownersIntersecting(geo::Rect::fromOrigin({500, 500}, 5, 5)).empty());
}

TEST(ClusterSpatialMapTest, SpaceMemberNameRoundTrip) {
  EXPECT_EQ(spaceMemberName("east"), "location.space.east");
  EXPECT_EQ(parseSpaceMemberName("location.space.east"), std::optional<std::string>("east"));
  EXPECT_EQ(parseSpaceMemberName("location.space."), std::nullopt);
  EXPECT_EQ(parseSpaceMemberName("location.ring.east"), std::nullopt);
  EXPECT_EQ(parseSpaceMemberName("location.space.east.backup"), std::nullopt)
      << "standby announcements are not members";
}

// --- cluster fixture ------------------------------------------------------------

/// Two clusters behind ONE registry: the spatial cluster under test
/// ("location.space.<token>") and a same-width modulo cluster
/// ("location.shard.<i>/<N>") serving as the object-hash oracle. Both are
/// fed identical readings; every answer must match byte-for-byte.
class ClusterSpatialTest : public ::testing::Test {
 protected:
  void startClusters(const std::vector<std::string>& tokens) {
    registry_ = std::make_unique<core::RegistryServer>();
    for (const auto& token : tokens) {
      ShardHost::Options opts;
      opts.spaceToken = token;
      opts.announceTtl = util::sec(5);
      opts.heartbeatPeriod = util::msec(100);
      spaceHosts_[token] = startHost(opts);
    }
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      ShardHost::Options opts;
      opts.index = i;
      opts.total = tokens.size();
      opts.announceTtl = util::sec(5);
      opts.heartbeatPeriod = util::msec(100);
      oracleHosts_.push_back(startHost(opts));
    }
    ClusterLocationService::Options spatialOpts;
    spatialOpts.retry = fastRetry();
    spatialOpts.partitioning = ClusterLocationService::Partitioning::Spatial;
    spatialOpts.universe = universe();
    router_ = std::make_unique<ClusterLocationService>("127.0.0.1", registry_->port(),
                                                       spatialOpts);
    ClusterLocationService::Options oracleOpts;
    oracleOpts.retry = fastRetry();
    oracle_ = std::make_unique<ClusterLocationService>("127.0.0.1", registry_->port(),
                                                      oracleOpts);
  }

  std::unique_ptr<ShardHost> startHost(ShardHost::Options opts) {
    auto host = std::make_unique<ShardHost>(clock_, universe(), "SC", "127.0.0.1",
                                            registry_->port(), std::move(opts));
    configureWorld(host->core());
    host->start();
    return host;
  }

  /// Feeds the same reading to the spatial cluster and the modulo oracle.
  void ingestBoth(const db::SensorReading& reading) {
    router_->ingest(reading);
    oracle_->ingest(reading);
  }

  /// Every object must locate byte-identically through both routers.
  void expectOracleEquivalence(const std::vector<std::string>& objects,
                               const std::string& context) {
    for (const auto& name : objects) {
      MobileObjectId object{name};
      auto fromSpatial = router_->locate(object);
      auto fromOracle = oracle_->locate(object);
      ASSERT_TRUE(fromSpatial.has_value()) << context << ": " << name;
      ASSERT_TRUE(fromOracle.has_value()) << context << ": " << name;
      EXPECT_EQ(estimateBytes(*fromSpatial), estimateBytes(*fromOracle))
          << context << ": " << name << " must be byte-identical to the object-hash oracle";
      EXPECT_EQ(router_->locateSymbolic(object), oracle_->locateSymbolic(object))
          << context << ": " << name;
    }
  }

  /// The spatial host currently resident for `object`, by database scan.
  std::vector<std::string> residentTokens(const std::string& object) const {
    std::vector<std::string> tokens;
    for (const auto& [token, host] : spaceHosts_) {
      for (const auto& id : host->core().database().knownMobileObjects()) {
        if (id.str() == object) tokens.push_back(token);
      }
    }
    std::sort(tokens.begin(), tokens.end());
    return tokens;
  }

  VirtualClock clock_;
  std::unique_ptr<core::RegistryServer> registry_;
  std::map<std::string, std::unique_ptr<ShardHost>> spaceHosts_;
  std::vector<std::unique_ptr<ShardHost>> oracleHosts_;
  std::unique_ptr<ClusterLocationService> router_;   ///< spatial, under test
  std::unique_ptr<ClusterLocationService> oracle_;   ///< modulo object-hash oracle
};

// --- oracle equivalence ---------------------------------------------------------

TEST_F(ClusterSpatialTest, SpatialAnswersMatchObjectHashOracleByteForByte) {
  startClusters({"a", "b", "c", "d"});
  ASSERT_EQ(router_->shardCount(), 4u);

  // Subscriptions FIRST, on both clusters, so trigger parity is observed
  // for every reading that follows.
  const auto room = geo::Rect::fromOrigin({0, 0}, 20, 20);
  std::mutex notifyMutex;
  std::vector<std::pair<std::string, double>> spatialNotifies;
  std::vector<std::pair<std::string, double>> oracleNotifies;
  (void)router_->subscribe(room, std::nullopt, 0.6, [&](const core::Notification& n) {
    std::lock_guard lock(notifyMutex);
    spatialNotifies.emplace_back(n.object.str(), n.probability);
  });
  (void)oracle_->subscribe(room, std::nullopt, 0.6, [&](const core::Notification& n) {
    std::lock_guard lock(notifyMutex);
    oracleNotifies.emplace_back(n.object.str(), n.probability);
  });

  // Objects spread over the whole universe so every territory owns some.
  std::vector<std::string> objects;
  for (int i = 0; i < 24; ++i) {
    objects.push_back("obj-" + std::to_string(i));
    const double x = 3.0 + static_cast<double>(i % 8) * 12.0;
    const double y = 4.0 + static_cast<double>(i / 8) * 18.0;
    ingestBoth(makeReading(clock_.now(), {x, y}, objects[i]));
    clock_.advance(util::msec(20));
    ingestBoth(makeReading(clock_.now(), {x + 0.5, y}, objects[i]));
    clock_.advance(util::msec(20));
  }

  // The spatial cluster actually spreads load: every shard ingested some.
  for (const auto& [token, host] : spaceHosts_) {
    EXPECT_GT(host->loadStats().ingestedReadings, 0u)
        << token << " owns territory but ingested nothing";
  }

  expectOracleEquivalence(objects, "pull");

  // Region probability: exact doubles, for every object against two regions.
  const auto corridor = geo::Rect::fromOrigin({40, 10}, 30, 25);
  for (const auto& name : objects) {
    MobileObjectId object{name};
    EXPECT_EQ(router_->probabilityInRegion(object, room),
              oracle_->probabilityInRegion(object, room))
        << name;
    EXPECT_EQ(router_->probabilityInRegion(object, corridor),
              oracle_->probabilityInRegion(object, corridor))
        << name;
  }

  // Region population: identical member lists in identical order, both for
  // a thresholded query (targeted in spatial mode) and for a census
  // (minProbability 0 scatters everywhere in both modes).
  for (const geo::Rect& region : {room, corridor, universe()}) {
    EXPECT_EQ(router_->objectsInRegion(region, 0.5), oracle_->objectsInRegion(region, 0.5));
    EXPECT_EQ(router_->objectsInRegion(region, 0.0), oracle_->objectsInRegion(region, 0.0));
  }

  // Trigger parity: same notifications (object, fused probability), any
  // order — shards race each other but the multiset is determined.
  auto sorted = [](std::vector<std::pair<std::string, double>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  {
    std::lock_guard lock(notifyMutex);
    EXPECT_FALSE(oracleNotifies.empty()) << "the world should have fired some triggers";
    EXPECT_EQ(sorted(spatialNotifies), sorted(oracleNotifies));
  }

  EXPECT_EQ(router_->stats().failedRoutedCalls, 0u);
  EXPECT_EQ(router_->stats().droppedIngestReadings, 0u);
}

TEST_F(ClusterSpatialTest, RegionQueriesTouchOnlyIntersectingShards) {
  startClusters({"a", "b", "c", "d"});
  std::vector<std::string> objects;
  for (int i = 0; i < 16; ++i) {
    objects.push_back("obj-" + std::to_string(i));
    const double x = 5.0 + static_cast<double>(i % 4) * 25.0;
    const double y = 5.0 + static_cast<double>(i / 4) * 12.0;
    ingestBoth(makeReading(clock_.now(), {x, y}, objects[i]));
    clock_.advance(util::msec(20));
  }

  // A query region strictly inside ONE leaf (with slack margin) must cost
  // exactly one shard call — the whole point of spatial partitioning.
  const TerritoryMap map = router_->territorySnapshot();
  ASSERT_EQ(map.leaves().size(), 4u);
  for (const auto& leaf : map.leaves()) {
    const auto region = geo::Rect::centeredSquare(leaf.rect.center(), 1.0);
    const auto before = router_->stats();
    const auto members = router_->objectsInRegion(region, 0.5);
    const auto after = router_->stats();
    EXPECT_EQ(after.targetedRegionQueries, before.targetedRegionQueries + 1);
    EXPECT_EQ(after.regionShardsQueried, before.regionShardsQueried + 1)
        << "a region inside " << leaf.owner << "'s territory must cost ONE shard call";
    EXPECT_EQ(members, oracle_->objectsInRegion(region, 0.5))
        << "targeting must not change the answer";
  }

  // The census path (minProbability <= 0) still scatters everywhere.
  const auto before = router_->stats();
  (void)router_->objectsInRegion(geo::Rect::centeredSquare({10, 10}, 1.0), 0.0);
  EXPECT_EQ(router_->stats().scatterGathers, before.scatterGathers + 1);

  // A region outside every territory short-circuits to an empty answer.
  const auto result = router_->objectsInRegionDetailed(geo::Rect::fromOrigin({400, 400}, 5, 5),
                                                       0.5);
  EXPECT_TRUE(result.members.empty());
  EXPECT_FALSE(result.degraded);
}

TEST_F(ClusterSpatialTest, BoundaryCrossingMigratesTheObjectUnderLiveIngest) {
  startClusters({"a", "b", "c", "d"});
  const TerritoryMap map = router_->territorySnapshot();

  // Pick two horizontally adjacent leaves to walk between.
  const TerritoryLeaf& fromLeaf = map.leafForPoint({1, 1});
  const geo::Point2 start = fromLeaf.rect.center();
  // The nearest other leaf's center: a short walk across one border.
  geo::Point2 goal = map.leafForPoint({99, 49}).rect.center();
  for (const auto& leaf : map.leaves()) {
    if (leaf.id == fromLeaf.id) continue;
    const geo::Point2 c = leaf.rect.center();
    const auto dist = [&](geo::Point2 p) {
      return (p.x - start.x) * (p.x - start.x) + (p.y - start.y) * (p.y - start.y);
    };
    if (dist(c) < dist(goal)) goal = c;
  }
  const std::string fromOwner = map.ownerForPoint(start);
  const std::string toOwner = map.ownerForPoint(goal);
  ASSERT_NE(fromOwner, toOwner);

  // A static background population plus live feeder traffic spanning the
  // whole migration — the handoff must not disturb either.
  std::vector<std::string> statics;
  for (int i = 0; i < 12; ++i) {
    statics.push_back("static-" + std::to_string(i));
    const double x = 4.0 + static_cast<double>(i % 6) * 16.0;
    const double y = 6.0 + static_cast<double>(i / 6) * 20.0;
    ingestBoth(makeReading(clock_.now(), {x, y}, statics[i]));
    clock_.advance(util::msec(20));
  }

  constexpr int kLiveObjects = 4;
  const auto frozenNow = clock_.now();
  std::atomic<bool> stopFeeder{false};
  std::atomic<int> fed{0};
  std::thread feeder([&] {
    for (int i = 0; !stopFeeder.load(std::memory_order_acquire); ++i) {
      const auto r = makeReading(frozenNow, {2.0 + i % 10, 3.0 + i % 4},
                                 "live-" + std::to_string(i % kLiveObjects));
      router_->ingest(r);
      oracle_->ingest(r);
      fed.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fed.load(std::memory_order_acquire), 20);

  // The mover walks from `start` into `goal`'s territory. The crossing
  // reading is applied at the OLD home first, then the router migrates the
  // whole log — synchronously, under the feeder's live traffic.
  const std::string mover = "mover";
  ingestBoth(makeReading(clock_.now(), start, mover));
  EXPECT_EQ(residentTokens(mover), (std::vector<std::string>{fromOwner}));
  const int steps = 6;
  for (int s = 1; s <= steps; ++s) {
    clock_.advance(util::msec(30));
    const double t = static_cast<double>(s) / steps;
    const geo::Point2 p{start.x + (goal.x - start.x) * t, start.y + (goal.y - start.y) * t};
    ingestBoth(makeReading(clock_.now(), p, mover));
  }
  stopFeeder.store(true, std::memory_order_release);
  feeder.join();

  EXPECT_GE(router_->stats().objectMigrations, 1u);
  EXPECT_EQ(router_->movingObjects(), 0u) << "migrations are synchronous";
  // The mover's whole log now lives exactly at its new territory owner.
  EXPECT_EQ(residentTokens(mover), (std::vector<std::string>{toOwner}));

  // Exactness across the board: mover, statics and live objects all answer
  // byte-identically to the object-hash oracle.
  std::vector<std::string> all = statics;
  all.push_back(mover);
  for (int k = 0; k < kLiveObjects; ++k) all.push_back("live-" + std::to_string(k));
  expectOracleEquivalence(all, "post-crossing");
  EXPECT_EQ(router_->stats().droppedIngestReadings, 0u);

  // And fresh ingest keeps flowing to the new home.
  clock_.advance(util::msec(30));
  ingestBoth(makeReading(clock_.now(), goal, mover));
  expectOracleEquivalence({mover}, "post-crossing ingest");
}

TEST_F(ClusterSpatialTest, RebalanceSplitsHotLeafAndMigratesUnderLoad) {
  startClusters({"a", "b"});
  const TerritoryMap before = router_->territorySnapshot();
  ASSERT_EQ(before.leaves().size(), 2u);
  const TerritoryLeaf hotLeaf = before.leavesOf("a").front();

  // The split is a pure function of the map, so the half that will move is
  // known in advance — subscribe to a region inside it BEFORE the split to
  // prove the subscription spills onto the gainer with the territory.
  const TerritoryMap expected = before.splitLeaf(hotLeaf.id, "b");
  const geo::Rect movedRect = expected.leaves().back().rect;
  const auto subRegion = geo::Rect::centeredSquare(movedRect.center(), 1.5);
  ASSERT_TRUE(movedRect.contains(subRegion.inflated(8.0)))
      << "test geometry: the subscription must START on shard a only";
  std::mutex notifyMutex;
  std::vector<std::pair<std::string, double>> spatialNotifies;
  std::vector<std::pair<std::string, double>> oracleNotifies;
  (void)router_->subscribe(subRegion, std::nullopt, 0.1, [&](const core::Notification& n) {
    std::lock_guard lock(notifyMutex);
    spatialNotifies.emplace_back(n.object.str(), n.probability);
  });
  (void)oracle_->subscribe(subRegion, std::nullopt, 0.1, [&](const core::Notification& n) {
    std::lock_guard lock(notifyMutex);
    oracleNotifies.emplace_back(n.object.str(), n.probability);
  });

  // Load ALL the traffic onto a's territory: every reading lands in the
  // hot leaf, half of them inside the half that will split away.
  std::vector<std::string> objects;
  for (int i = 0; i < 24; ++i) {
    objects.push_back("hot-" + std::to_string(i));
    const double x = hotLeaf.rect.lo().x + 2.0 +
                     static_cast<double>(i % 6) * (hotLeaf.rect.width() - 4.0) / 5.0;
    const double y = hotLeaf.rect.lo().y + 2.0 +
                     static_cast<double>(i / 6) * (hotLeaf.rect.height() - 4.0) / 3.0;
    ingestBoth(makeReading(clock_.now(), {x, y}, objects[i]));
    clock_.advance(util::msec(20));
    ingestBoth(makeReading(clock_.now(), {x + 0.3, y}, objects[i]));
    clock_.advance(util::msec(20));
  }
  EXPECT_GT(spaceHosts_.at("a")->loadStats().ingestedReadings,
            spaceHosts_.at("b")->loadStats().ingestedReadings)
      << "the load skew the balancer should see";

  // Live traffic across the whole migration.
  const auto frozenNow = clock_.now();
  std::atomic<bool> stopFeeder{false};
  std::atomic<int> fed{0};
  std::thread feeder([&] {
    for (int i = 0; !stopFeeder.load(std::memory_order_acquire); ++i) {
      const double x = hotLeaf.rect.lo().x + 1.0 + i % 12;
      const double y = hotLeaf.rect.lo().y + 1.0 + i % 8;
      const auto r = makeReading(frozenNow, {x, y}, "live-" + std::to_string(i % 4));
      router_->ingest(r);
      oracle_->ingest(r);
      fed.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fed.load(std::memory_order_acquire), 20);

  // One balancer pass: a is hot, b is cold — split a's leaf, hand the high
  // half to b, migrate its residents live.
  ASSERT_TRUE(router_->rebalanceOnce(/*hotColdRatio=*/2.0, /*minReadings=*/16))
      << "a carries all the load; the balancer must act";
  EXPECT_EQ(router_->stats().territorySplits, 1u);
  EXPECT_GE(router_->stats().objectMigrations, 1u);

  const TerritoryMap after = router_->territorySnapshot();
  EXPECT_EQ(after.leaves().size(), 3u);
  EXPECT_GT(after.version(), before.version());
  EXPECT_EQ(after.leaves().back().owner, "b") << "the new half belongs to the cold shard";
  // The new map is published: the registry carries the bumped version.
  core::RegistryClient meta("127.0.0.1", registry_->port());
  auto published = meta.getMeta(kTerritoryMetaName);
  ASSERT_TRUE(published.has_value());
  EXPECT_EQ(published->version, after.version());
  EXPECT_EQ(TerritoryMap::decode(published->value), after);

  stopFeeder.store(true, std::memory_order_release);
  feeder.join();

  // The split reset the heat counters; far below this floor, a second pass
  // must decline instead of splitting again.
  EXPECT_FALSE(router_->rebalanceOnce(2.0, 1u << 20));
  EXPECT_EQ(router_->stats().territorySplits, 1u);
  EXPECT_EQ(router_->movingObjects(), 0u);

  // Residency moved with the territory: every object whose evidence
  // centers in the moved half now lives on b, the rest stayed on a.
  for (const auto& name : objects) {
    const auto est = oracle_->locate(MobileObjectId{name});
    ASSERT_TRUE(est.has_value()) << name;
  }
  std::size_t movedCount = 0;
  for (int i = 0; i < 24; ++i) {
    const double x = hotLeaf.rect.lo().x + 2.0 +
                     static_cast<double>(i % 6) * (hotLeaf.rect.width() - 4.0) / 5.0;
    const double y = hotLeaf.rect.lo().y + 2.0 +
                     static_cast<double>(i / 6) * (hotLeaf.rect.height() - 4.0) / 3.0;
    // The second reading shifted +0.3 in x; use the LAST evidence center.
    const geo::Point2 lastCenter{x + 0.3, y};
    const std::string expectedOwner = movedRect.contains(lastCenter) ? "b" : "a";
    if (expectedOwner == "b") ++movedCount;
    EXPECT_EQ(residentTokens(objects[i]), (std::vector<std::string>{expectedOwner}))
        << objects[i];
  }
  EXPECT_GT(movedCount, 0u) << "the split should actually move some residents";

  // Exactness under and after migration: every object, moved or kept,
  // answers byte-identically to the object-hash oracle.
  std::vector<std::string> all = objects;
  for (int k = 0; k < 4; ++k) all.push_back("live-" + std::to_string(k));
  expectOracleEquivalence(all, "post-rebalance");
  EXPECT_EQ(router_->stats().droppedIngestReadings, 0u);

  // The spilled subscription is live on the gainer: a fresh object walking
  // into the moved half fires the trigger on BOTH clusters identically.
  clock_.advance(util::msec(50));
  ingestBoth(makeReading(clock_.now(), subRegion.center(), "visitor"));
  auto sorted = [](std::vector<std::pair<std::string, double>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  {
    std::lock_guard lock(notifyMutex);
    std::vector<std::pair<std::string, double>> spatialCopy;
    std::vector<std::pair<std::string, double>> oracleCopy;
    spatialCopy = spatialNotifies;
    oracleCopy = oracleNotifies;
    EXPECT_FALSE(oracleCopy.empty()) << "the visitor must fire the trigger";
    EXPECT_EQ(sorted(spatialCopy), sorted(oracleCopy))
        << "the subscription must have spilled onto the gainer with its territory";
  }
}

TEST_F(ClusterSpatialTest, BalancerDaemonSplitsInTheBackgroundAndStopsCleanly) {
  startClusters({"a", "b"});
  const TerritoryMap before = router_->territorySnapshot();
  const TerritoryLeaf hotLeaf = before.leavesOf("a").front();
  EXPECT_FALSE(router_->balancerRunning());

  // All the load on a's territory — the same skew the one-shot rebalance
  // test drives by hand, here left for the daemon to discover on its own.
  for (int i = 0; i < 24; ++i) {
    const double x = hotLeaf.rect.lo().x + 2.0 +
                     static_cast<double>(i % 6) * (hotLeaf.rect.width() - 4.0) / 5.0;
    const double y = hotLeaf.rect.lo().y + 2.0 +
                     static_cast<double>(i / 6) * (hotLeaf.rect.height() - 4.0) / 3.0;
    ingestBoth(makeReading(clock_.now(), {x, y}, "hot-" + std::to_string(i)));
    clock_.advance(util::msec(20));
  }

  router_->startBalancer(std::chrono::milliseconds(5), /*hotColdRatio=*/2.0,
                         /*minReadings=*/16);
  EXPECT_TRUE(router_->balancerRunning());
  // Idempotent: re-start updates parameters instead of spawning twice.
  router_->startBalancer(std::chrono::milliseconds(5), 2.0, 16);

  // The daemon must notice the skew and split without any manual
  // rebalanceOnce call.
  for (int i = 0; i < 2000 && router_->stats().territorySplits == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(router_->stats().territorySplits, 1u)
      << "the background balancer should have split the hot leaf";
  EXPECT_GE(router_->balancerPasses(), 1u);

  // Once balanced, further passes decline but keep counting — the daemon
  // keeps watching rather than acting.
  const std::uint64_t passesAtSplit = router_->balancerPasses();
  for (int i = 0; i < 2000 && router_->balancerPasses() <= passesAtSplit; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(router_->balancerPasses(), passesAtSplit);
  EXPECT_EQ(router_->stats().territorySplits, 1u) << "heat reset: no repeat split";

  router_->stopBalancer();
  EXPECT_FALSE(router_->balancerRunning());
  const std::uint64_t passesAtStop = router_->balancerPasses();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(router_->balancerPasses(), passesAtStop) << "stopped means stopped";
  router_->stopBalancer();  // idempotent

  // The daemon's split behaves exactly like a manual one: answers still
  // match the object-hash oracle byte-for-byte.
  std::vector<std::string> all;
  for (int i = 0; i < 24; ++i) all.push_back("hot-" + std::to_string(i));
  expectOracleEquivalence(all, "post-daemon-rebalance");
}

}  // namespace
}  // namespace mw::cluster
