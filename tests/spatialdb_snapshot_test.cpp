// Persistence tests: snapshot/restore of the world model (frames, Table-1
// rows, sensor calibration incl. tdfs).
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/blueprint.hpp"
#include "spatialdb/snapshot.hpp"
#include "util/error.hpp"

namespace mw::db {
namespace {

using mw::util::minutes;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

SpatialDatabase buildOriginal(const util::Clock& clock) {
  sim::Blueprint bp = sim::generateBlueprint({.building = "SC", .floors = 2, .roomsPerSide = 3});
  SpatialDatabase db(clock, bp.universe, bp.frames());
  bp.populate(db);

  SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(0.9);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = sec(3);
  db.registerSensor(ubi);

  SensorMeta rf;
  rf.sensorId = SensorId{"rf-1"};
  rf.sensorType = "RF";
  rf.errorSpec = quality::rfidBadgeSpec(0.8);
  rf.quality.ttl = sec(60);
  rf.quality.tdf = std::make_shared<quality::LinearDegradation>(minutes(2));
  db.registerSensor(rf);

  SensorMeta bio;
  bio.sensorId = SensorId{"fp-1"};
  bio.sensorType = "Biometric";
  bio.errorSpec = quality::biometricSpec();
  bio.quality.ttl = minutes(15);
  bio.quality.tdf = std::make_shared<quality::StepDegradation>(
      std::vector<quality::StepDegradation::Step>{{sec(30), 0.8}, {minutes(5), 0.4}});
  db.registerSensor(bio);

  SensorMeta gps;
  gps.sensorId = SensorId{"gps-1"};
  gps.sensorType = "GPS";
  gps.errorSpec = quality::gpsSpec(0.7);
  gps.quality.ttl = sec(10);
  gps.quality.tdf = std::make_shared<quality::ExponentialDegradation>(sec(20));
  db.registerSensor(gps);
  return db;
}

TEST(SnapshotTest, RoundTripPreservesWorldModel) {
  VirtualClock clock;
  SpatialDatabase original = buildOriginal(clock);
  util::Bytes snapshot = snapshotDatabase(original);
  SpatialDatabase restored = restoreDatabase(clock, snapshot);

  EXPECT_EQ(restored.universe(), original.universe());
  EXPECT_EQ(restored.objectCount(), original.objectCount());
  EXPECT_EQ(restored.sensorCount(), original.sensorCount());
  EXPECT_EQ(restored.frames().size(), original.frames().size());

  // Spot checks: a room row survives with geometry and type.
  auto room = restored.objectByGlob("SC/1/101");
  ASSERT_TRUE(room.has_value());
  EXPECT_EQ(room->objectType, ObjectType::Room);
  EXPECT_EQ(restored.universeMbr(*room), original.universeMbr(*original.objectByGlob("SC/1/101")));

  // Frame conversions behave identically.
  geo::Point2 p{3, 4};
  EXPECT_EQ(restored.frames().toRoot("SC/2", p), original.frames().toRoot("SC/2", p));

  // Sensor calibration incl. tdfs: degraded confidence matches at any age.
  for (const char* id : {"ubi-1", "rf-1", "fp-1", "gps-1"}) {
    auto a = original.sensorMeta(SensorId{id});
    auto b = restored.sensorMeta(SensorId{id});
    ASSERT_TRUE(a && b) << id;
    EXPECT_EQ(a->sensorType, b->sensorType);
    EXPECT_EQ(a->scaleMisidentifyByArea, b->scaleMisidentifyByArea);
    EXPECT_EQ(a->quality.ttl, b->quality.ttl);
    for (int age : {0, 5, 45, 400}) {
      auto ca = a->confidenceFor(10.0, 10'000.0, sec(age));
      auto cb = b->confidenceFor(10.0, 10'000.0, sec(age));
      ASSERT_EQ(ca.has_value(), cb.has_value()) << id << " age " << age;
      if (ca) {
        EXPECT_DOUBLE_EQ(ca->p, cb->p) << id << " age " << age;
        EXPECT_DOUBLE_EQ(ca->q, cb->q) << id << " age " << age;
      }
    }
  }
}

TEST(SnapshotTest, SnapshotIsDeterministic) {
  VirtualClock clock;
  SpatialDatabase db = buildOriginal(clock);
  EXPECT_EQ(snapshotDatabase(db), snapshotDatabase(db));
}

TEST(SnapshotTest, ReadingsAreNotSnapshotted) {
  VirtualClock clock;
  SpatialDatabase db = buildOriginal(clock);
  SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = util::MobileObjectId{"alice"};
  r.location = {5, 5};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  SpatialDatabase restored = restoreDatabase(clock, snapshotDatabase(db));
  EXPECT_TRUE(restored.knownMobileObjects().empty()) << "readings are transient";
}

TEST(SnapshotTest, CorruptedInputThrows) {
  VirtualClock clock;
  SpatialDatabase db = buildOriginal(clock);
  util::Bytes good = snapshotDatabase(db);

  util::Bytes badMagic = good;
  badMagic[0] ^= 0xFF;
  EXPECT_THROW(restoreDatabase(clock, badMagic), util::ParseError);

  util::Bytes truncated(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(good.size() / 2));
  EXPECT_THROW(restoreDatabase(clock, truncated), util::ParseError);

  util::Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(restoreDatabase(clock, trailing), util::ParseError);
}

TEST(SnapshotTest, FileRoundTrip) {
  VirtualClock clock;
  SpatialDatabase db = buildOriginal(clock);
  std::string path = ::testing::TempDir() + "/mw_snapshot_test.bin";
  saveSnapshotFile(db, path);
  SpatialDatabase restored = loadSnapshotFile(clock, path);
  EXPECT_EQ(restored.objectCount(), db.objectCount());
  EXPECT_EQ(restored.sensorCount(), db.sensorCount());
  std::remove(path.c_str());
  EXPECT_THROW(loadSnapshotFile(clock, "/nonexistent/dir/snap.bin"), util::MwError);
}

TEST(SnapshotTest, RestoredDatabaseIsFullyOperational) {
  // Not just data equality: triggers and ingest work on the restored copy.
  VirtualClock clock;
  SpatialDatabase db = buildOriginal(clock);
  SpatialDatabase restored = restoreDatabase(clock, snapshotDatabase(db));

  int fired = 0;
  auto room = restored.objectByGlob("SC/1/101");
  ASSERT_TRUE(room.has_value());
  geo::Rect region = restored.universeMbr(*room);
  restored.createTrigger({region, std::nullopt, [&](const TriggerEvent&) { ++fired; }});

  SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = util::MobileObjectId{"bob"};
  r.location = region.center();
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  restored.insertReading(r);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(restored.readingsFor(util::MobileObjectId{"bob"}).size(), 1u);
}

}  // namespace
}  // namespace mw::db
