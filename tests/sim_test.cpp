// World-simulation tests: blueprint generation, person movement, scenario
// driving.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"
#include "adapters/ubisense.hpp"
#include "util/error.hpp"

namespace mw::sim {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::VirtualClock;

TEST(BlueprintTest, GeneratedGeometryIsConsistent) {
  Blueprint bp = generateBlueprint({.building = "SC", .floors = 2, .roomsPerSide = 3});
  EXPECT_EQ(bp.floorOutlines.size(), 2u);
  // Per floor: 1 corridor + 6 rooms.
  EXPECT_EQ(bp.rooms.size(), 14u);
  EXPECT_EQ(bp.properRooms().size(), 12u);
  EXPECT_EQ(bp.doors.size(), 12u);
  for (const auto& room : bp.rooms) {
    EXPECT_TRUE(bp.universe.contains(room.rect)) << room.name;
    EXPECT_TRUE(bp.floorOutlines[static_cast<std::size_t>(room.floor)].contains(room.rect))
        << room.name;
  }
  EXPECT_NE(bp.roomNamed("101"), nullptr);
  EXPECT_NE(bp.roomNamed("251"), nullptr);
  EXPECT_EQ(bp.roomNamed("999"), nullptr);
}

TEST(BlueprintTest, EveryRoomReachableThroughDoors) {
  Blueprint bp = generateBlueprint({.floors = 1, .roomsPerSide = 4});
  auto graph = bp.connectivity();
  auto rooms = bp.properRooms();
  for (const auto* room : rooms) {
    auto d = graph.pathDistance(rooms[0]->name, room->name);
    ASSERT_TRUE(d.has_value()) << room->name << " unreachable";
  }
}

TEST(BlueprintTest, FramesConvertRoomToBuilding) {
  Blueprint bp = generateBlueprint({.building = "SC", .floors = 2, .roomsPerSide = 2});
  glob::FrameTree frames = bp.frames();
  EXPECT_EQ(frames.rootName(), "SC");
  const BlueprintRoom* room = bp.roomNamed("201");
  ASSERT_NE(room, nullptr);
  std::string frameName = "SC/2/201";
  ASSERT_TRUE(frames.has(frameName));
  // The room's local origin maps to its universe lower corner.
  EXPECT_EQ(frames.toRoot(frameName, {0, 0}), room->rect.lo());
}

TEST(BlueprintTest, PopulatesSpatialDatabase) {
  VirtualClock clock;
  Blueprint bp = generateBlueprint({.building = "SC", .floors = 1, .roomsPerSide = 2});
  db::SpatialDatabase database(clock, bp.universe, bp.frames());
  bp.populate(database);
  EXPECT_EQ(database.objectsOfType(db::ObjectType::Floor).size(), 1u);
  EXPECT_EQ(database.objectsOfType(db::ObjectType::Room).size(), 4u);
  EXPECT_EQ(database.objectsOfType(db::ObjectType::Corridor).size(), 1u);
  EXPECT_EQ(database.objectsOfType(db::ObjectType::Door).size(), 4u);
  // A universe point inside room 101 resolves to the room despite the row
  // being stored in floor-local coordinates.
  const BlueprintRoom* room = bp.roomNamed("101");
  auto hits = database.objectsContaining(room->rect.center());
  bool found = false;
  for (const auto& h : hits) found = found || h.id.str() == "101";
  EXPECT_TRUE(found);
}

TEST(BlueprintTest, PaperFloorMatchesTable1) {
  Blueprint bp = paperFloor();
  const BlueprintRoom* lab = bp.roomNamed("3105");
  ASSERT_NE(lab, nullptr);
  EXPECT_EQ(lab->rect, geo::Rect::fromOrigin({330, 0}, 20, 30));
  const BlueprintRoom* netlab = bp.roomNamed("NetLab");
  ASSERT_NE(netlab, nullptr);
  EXPECT_EQ(netlab->rect, geo::Rect::fromOrigin({360, 0}, 20, 30));
  auto graph = bp.connectivity();
  EXPECT_TRUE(graph.pathDistance("3105", "NetLab").has_value())
      << "rooms connect through the hallway";
  // NetLab -> HCILab directly is restricted; without keys the hallway route
  // is used (still reachable).
  EXPECT_TRUE(graph.pathDistance("NetLab", "HCILab", false).has_value());
}

TEST(BlueprintTest, StairwellsConnectFloors) {
  Blueprint bp = generateBlueprint({.floors = 3, .roomsPerSide = 2});
  auto graph = bp.connectivity();
  // Room on floor 1 to room on floor 3, through two stairwells.
  auto d = graph.pathDistance("101", "352");
  ASSERT_TRUE(d.has_value());
  auto route = graph.route("101", "352");
  ASSERT_TRUE(route.has_value());
  // The route passes every intermediate corridor.
  auto contains = [&](const char* name) {
    return std::find(route->regions.begin(), route->regions.end(), name) !=
           route->regions.end();
  };
  EXPECT_TRUE(contains("100"));
  EXPECT_TRUE(contains("200"));
  EXPECT_TRUE(contains("300"));
}

TEST(WorldTest, PeopleSpawnInStartRoom) {
  Blueprint bp = generateBlueprint({});
  World world(bp, 7);
  world.addPerson({MobileObjectId{"alice"}, "101"});
  EXPECT_EQ(world.personCount(), 1u);
  auto pos = world.position(MobileObjectId{"alice"});
  ASSERT_TRUE(pos.has_value());
  EXPECT_TRUE(bp.roomNamed("101")->rect.contains(*pos));
  EXPECT_EQ(world.currentRoom(MobileObjectId{"alice"}), "101");
  EXPECT_THROW(world.addPerson({MobileObjectId{"alice"}, "101"}), mw::util::ContractError);
  EXPECT_THROW(world.addPerson({MobileObjectId{"x"}, "nope"}), mw::util::ContractError);
}

TEST(WorldTest, WalkingReachesRequestedRoom) {
  Blueprint bp = generateBlueprint({.floors = 1, .roomsPerSide = 4});
  World world(bp, 7);
  world.addPerson({MobileObjectId{"alice"}, "101", /*walkingSpeed=*/6.0});
  world.sendTo(MobileObjectId{"alice"}, "154");
  bool arrived = false;
  for (int i = 0; i < 600 && !arrived; ++i) {
    world.step(util::msec(500));
    arrived = world.currentRoom(MobileObjectId{"alice"}) == "154";
  }
  EXPECT_TRUE(arrived);
}

TEST(WorldTest, RandomWalkStaysInsideBuilding) {
  Blueprint bp = generateBlueprint({});
  World world(bp, 11);
  world.addPerson({MobileObjectId{"bob"}, "102"});
  for (int i = 0; i < 1000; ++i) {
    world.step(util::msec(500));
    auto pos = world.position(MobileObjectId{"bob"});
    ASSERT_TRUE(pos.has_value());
    EXPECT_TRUE(bp.universe.contains(*pos)) << "step " << i;
  }
}

TEST(WorldTest, CarryOverridesAndOutdoors) {
  Blueprint bp = generateBlueprint({});
  World world(bp, 7);
  world.addPerson({MobileObjectId{"alice"}, "101", 4.0, /*carryTag=*/1.0});
  EXPECT_TRUE(world.carrying(MobileObjectId{"alice"}, "tag"));
  world.setCarrying(MobileObjectId{"alice"}, "tag", false);
  EXPECT_FALSE(world.carrying(MobileObjectId{"alice"}, "tag"));
  EXPECT_FALSE(world.outdoors(MobileObjectId{"alice"}));
  world.setOutdoors(MobileObjectId{"alice"}, true);
  EXPECT_TRUE(world.outdoors(MobileObjectId{"alice"}));
  EXPECT_FALSE(world.carrying(MobileObjectId{"ghost"}, "tag"));
  EXPECT_EQ(world.position(MobileObjectId{"ghost"}), std::nullopt);
}

TEST(WorldTest, DeterministicUnderSameSeed) {
  Blueprint bp = generateBlueprint({});
  World w1(bp, 99), w2(bp, 99);
  w1.addPerson({MobileObjectId{"p"}, "101"});
  w2.addPerson({MobileObjectId{"p"}, "101"});
  for (int i = 0; i < 200; ++i) {
    w1.step(util::msec(500));
    w2.step(util::msec(500));
  }
  EXPECT_EQ(*w1.position(MobileObjectId{"p"}), *w2.position(MobileObjectId{"p"}));
}

TEST(ScenarioTest, AdaptersSampleOnTheirPeriods) {
  Blueprint bp = generateBlueprint({});
  VirtualClock clock;
  World world(bp, 5);
  world.addPerson({MobileObjectId{"alice"}, "101", 4.0, /*carryTag=*/1.0});

  std::size_t delivered = 0;
  Scenario scenario(clock, world, [&](const db::SensorReading&) { ++delivered; });
  auto ubi = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi-A"}, util::SensorId{"ubi-1"},
      adapters::UbisenseConfig{bp.universe, 0.5, 1.0, sec(3), ""});
  scenario.addAdapter(ubi, sec(1));

  std::size_t emitted = scenario.run(sec(30), util::msec(500));
  EXPECT_EQ(emitted, delivered);
  // ~30 sampling rounds at y=0.95: expect >= 20 readings.
  EXPECT_GT(delivered, 20u);
  EXPECT_THROW(scenario.addAdapter(nullptr, sec(1)), mw::util::ContractError);
}

}  // namespace
}  // namespace mw::sim
