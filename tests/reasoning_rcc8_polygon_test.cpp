// RCC-8 over exact polygon outlines (§5.1's "more accurate processing ...
// taking the actual region boundaries").
#include <gtest/gtest.h>

#include "reasoning/rcc8.hpp"
#include "util/error.hpp"

namespace mw::reasoning {
namespace {

using geo::Polygon;

Polygon square(double x, double y, double side) {
  return Polygon{{x, y}, {x + side, y}, {x + side, y + side}, {x, y + side}};
}

TEST(Rcc8PolygonTest, Disconnected) {
  EXPECT_EQ(rcc8(square(0, 0, 2), square(10, 10, 2)), Rcc8::DC);
}

TEST(Rcc8PolygonTest, Equal) {
  EXPECT_EQ(rcc8(square(1, 1, 3), square(1, 1, 3)), Rcc8::EQ);
}

TEST(Rcc8PolygonTest, ExternallyConnectedEdge) {
  EXPECT_EQ(rcc8(square(0, 0, 4), square(4, 0, 4)), Rcc8::EC);
}

TEST(Rcc8PolygonTest, ExternallyConnectedCorner) {
  EXPECT_EQ(rcc8(square(0, 0, 2), square(2, 2, 2)), Rcc8::EC);
}

TEST(Rcc8PolygonTest, PartialOverlap) {
  EXPECT_EQ(rcc8(square(0, 0, 4), square(2, 2, 4)), Rcc8::PO);
}

TEST(Rcc8PolygonTest, ProperParts) {
  EXPECT_EQ(rcc8(square(2, 2, 2), square(0, 0, 6)), Rcc8::NTPP);
  EXPECT_EQ(rcc8(square(0, 0, 6), square(2, 2, 2)), Rcc8::NTPPi);
  EXPECT_EQ(rcc8(square(0, 0, 2), square(0, 0, 6)), Rcc8::TPP);
  EXPECT_EQ(rcc8(square(0, 0, 6), square(0, 0, 2)), Rcc8::TPPi);
}

TEST(Rcc8PolygonTest, TriangleInsideSquare) {
  Polygon tri{{2, 2}, {4, 2}, {3, 4}};
  EXPECT_EQ(rcc8(tri, square(0, 0, 6)), Rcc8::NTPP);
  EXPECT_EQ(rcc8(square(0, 0, 6), tri), Rcc8::NTPPi);
}

TEST(Rcc8PolygonTest, TriangleTouchingSquareEdge) {
  // Triangle with base on the square's right wall, pointing out.
  Polygon tri{{6, 2}, {6, 4}, {8, 3}};
  EXPECT_EQ(rcc8(tri, square(0, 0, 6)), Rcc8::EC);
}

TEST(Rcc8PolygonTest, NonConvexNotchCases) {
  // L-shaped region; a square sitting entirely inside its notch touches the
  // L's boundary but shares no interior: EC. MBR-only reasoning would say
  // PO/containment — the exact outline must not.
  Polygon ell{{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 6}, {0, 6}};
  Polygon inNotch = square(3, 3, 2);  // MBR of ell contains it; outline does not
  EXPECT_EQ(rcc8(ell.mbr(), inNotch.mbr()), Rcc8::NTPPi) << "MBR approximation differs";
  EXPECT_EQ(rcc8(ell, inNotch), Rcc8::DC) << "exact outline: not even touching";
  Polygon touchingNotch = square(2, 2, 2);  // touches the inner corner edges
  EXPECT_EQ(rcc8(ell, touchingNotch), Rcc8::EC);
  Polygon insideLeg = square(0.5, 2.5, 1);  // fully inside the vertical leg
  EXPECT_EQ(rcc8(ell, insideLeg), Rcc8::NTPPi);
}

TEST(Rcc8PolygonTest, ConverseDualityOnPolygons) {
  Polygon a = square(0, 0, 4);
  std::vector<Polygon> others{square(10, 0, 2), square(4, 0, 4), square(2, 2, 4),
                              square(1, 1, 2),  square(0, 0, 4), square(0, 0, 2)};
  for (const auto& b : others) {
    EXPECT_EQ(rcc8(b, a), converse(rcc8(a, b)));
  }
}

TEST(Rcc8PolygonTest, InvalidPolygonThrows) {
  Polygon degenerate{{0, 0}, {1, 1}};
  EXPECT_THROW(rcc8(degenerate, square(0, 0, 2)), mw::util::ContractError);
}

TEST(Rcc8PolygonTest, AgreesWithRectVersionOnRectangles) {
  // For axis-aligned rectangles the polygon path must match the O(1) path.
  struct Pair {
    geo::Rect a, b;
  };
  std::vector<Pair> pairs{
      {geo::Rect::fromOrigin({0, 0}, 2, 2), geo::Rect::fromOrigin({5, 5}, 2, 2)},
      {geo::Rect::fromOrigin({0, 0}, 4, 4), geo::Rect::fromOrigin({4, 0}, 4, 4)},
      {geo::Rect::fromOrigin({0, 0}, 4, 4), geo::Rect::fromOrigin({2, 2}, 4, 4)},
      {geo::Rect::fromOrigin({1, 1}, 2, 2), geo::Rect::fromOrigin({0, 0}, 6, 6)},
      {geo::Rect::fromOrigin({0, 0}, 2, 2), geo::Rect::fromOrigin({0, 0}, 6, 6)},
      {geo::Rect::fromOrigin({1, 1}, 3, 3), geo::Rect::fromOrigin({1, 1}, 3, 3)},
  };
  for (const auto& [ra, rb] : pairs) {
    EXPECT_EQ(rcc8(Polygon::fromRect(ra), Polygon::fromRect(rb)), rcc8(ra, rb))
        << ra << " vs " << rb;
  }
}

}  // namespace
}  // namespace mw::reasoning
