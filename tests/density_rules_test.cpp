// Aggregate standing rules (subscribeDensity): incremental counting vs a
// full-recompute oracle under churn, alarm edges, and wire/cluster parity is
// covered by the continuous-query and cluster suites — this file is the
// oracle equivalence the crowd-monitoring workload rests on.
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "citysim/city.hpp"
#include "citysim/population.hpp"
#include "core/location_service.hpp"
#include "util/clock.hpp"

using namespace mw;

namespace {

struct DensityLog {
  std::mutex mutex;
  std::vector<core::DensityNotification> events;

  void push(const core::DensityNotification& n) {
    std::lock_guard lock(mutex);
    events.push_back(n);
  }
  [[nodiscard]] std::vector<core::DensityNotification> snapshot() {
    std::lock_guard lock(mutex);
    return events;
  }
};

}  // namespace

// Every density notification's count must equal the full-recompute oracle
// (objectsInRegion at that instant), and the final count after arbitrary
// churn must match a fresh poll — byte-identical alarm state, incrementally
// maintained.
TEST(DensityRules, CountsMatchFullRecomputeOracleUnderChurn) {
  citysim::CityConfig cityConfig;
  cityConfig.name = "Test";
  cityConfig.rows = 1;
  cityConfig.cols = 2;
  cityConfig.building.roomsPerSide = 2;
  const citysim::CityBlueprint city = citysim::generateCity(cityConfig);

  util::VirtualClock clock;
  db::SpatialDatabase database(clock, city.universe, city.frames());
  city.populate(database);
  citysim::CitySensors::registerAll(database);
  core::LocationService service(clock, database);

  const citysim::OutdoorRegion* venue = city.outdoorNamed("plaza-0-1");
  ASSERT_NE(venue, nullptr);

  DensityLog log;
  core::DensitySubscription spec;
  spec.region = venue->rect;
  // A lone small-box reading fuses to ~0.49 under the uniform-area prior
  // (the region is tiny relative to the city), so the workload threshold
  // sits below that: corroborated members count, single stale hints don't.
  spec.minProbability = 0.4;
  spec.limit = 8;
  spec.callback = [&](const core::DensityNotification& n) {
    // Oracle check inside the callback: the service's own full poll at this
    // instant must agree with the incrementally maintained count.
    EXPECT_EQ(n.count, service.objectsInRegion(n.region, 0.4).size());
    log.push(n);
  };
  const auto handle = service.subscribeDensity(spec);
  EXPECT_EQ(handle.initialCount, 0u);

  citysim::PopulationConfig popConfig;
  popConfig.commuters = 10;
  popConfig.crowd = 40;
  popConfig.vehicles = 10;
  popConfig.staff = 5;
  popConfig.walkingSpeed = 12;
  citysim::Population population(city, popConfig);
  population.announceEvent(venue->rect);

  std::vector<db::SensorReading> readings;
  for (int tick = 0; tick < 120; ++tick) {
    clock.advance(util::sec(1));
    readings.clear();
    population.step(clock.now(), util::sec(1), readings);
    for (const db::SensorReading& reading : readings) service.ingest(reading);
  }

  const auto events = log.snapshot();
  ASSERT_FALSE(events.empty());

  // Final incremental count == fresh full recompute.
  const std::size_t oracle = service.objectsInRegion(venue->rect, 0.4).size();
  EXPECT_EQ(events.back().count, oracle);
  EXPECT_GE(oracle, 8u);  // the crowd actually gathered past the limit

  // Edge discipline: alarms and all-clears alternate, starting with Rose,
  // and every edge crosses the limit in the right direction.
  bool over = false;
  for (const core::DensityNotification& n : events) {
    EXPECT_EQ(n.limit, 8u);
    if (n.edge == cq::CountEdge::Rose) {
      EXPECT_FALSE(over);
      EXPECT_GE(n.count, 8u);
      over = true;
    } else if (n.edge == cq::CountEdge::Fell) {
      EXPECT_TRUE(over);
      EXPECT_LT(n.count, 8u);
      over = false;
    }
  }
  EXPECT_TRUE(over);  // ended overcrowded
  // Exactly the notifications a full recompute would emit: consecutive
  // counts always differ (no duplicate/no-op events).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_TRUE(events[i].count != events[i - 1].count ||
                events[i].edge != cq::CountEdge::None);
  }
}

TEST(DensityRules, UnsubscribeStopsNotifications) {
  citysim::CityConfig cityConfig;
  cityConfig.name = "Test";
  cityConfig.rows = 1;
  cityConfig.cols = 1;
  const citysim::CityBlueprint city = citysim::generateCity(cityConfig);

  util::VirtualClock clock;
  db::SpatialDatabase database(clock, city.universe, city.frames());
  city.populate(database);
  citysim::CitySensors::registerAll(database);
  core::LocationService service(clock, database);

  const citysim::OutdoorRegion* venue = city.outdoorNamed("plaza-0-0");
  ASSERT_NE(venue, nullptr);

  DensityLog log;
  core::DensitySubscription spec;
  spec.region = venue->rect;
  spec.minProbability = 0.3;  // a single GPS fix fuses to ~0.49 (area prior)
  spec.limit = 1;
  spec.callback = [&](const core::DensityNotification& n) { log.push(n); };
  const auto handle = service.subscribeDensity(spec);
  EXPECT_EQ(service.subscriptionCount(), 1u);

  db::SensorReading reading;
  reading.sensorId = util::SensorId{citysim::CitySensors::kGpsId};
  reading.sensorType = "GPS";
  reading.globPrefix = "Test";
  reading.mobileObjectId = util::MobileObjectId{"walker"};
  reading.location = venue->rect.center();
  reading.detectionRadius = 5;
  reading.detectionTime = clock.now();
  service.ingest(reading);
  const std::size_t before = log.snapshot().size();
  EXPECT_GE(before, 1u);
  EXPECT_EQ(log.snapshot().back().edge, cq::CountEdge::Rose);

  EXPECT_TRUE(service.unsubscribe(handle.id));
  EXPECT_EQ(service.subscriptionCount(), 0u);
  clock.advance(util::sec(1));
  reading.detectionTime = clock.now();
  service.ingest(reading);
  EXPECT_EQ(log.snapshot().size(), before);
}
