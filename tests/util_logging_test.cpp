#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace mw::util {
namespace {

/// Captures std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = Logger::instance().level(); }
  void TearDown() override { Logger::instance().setLevel(previous_); }
  LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().setLevel(LogLevel::Warn);
  ClogCapture capture;
  logDebug("test", "invisible");
  logInfo("test", "invisible");
  logWarn("test", "visible warn");
  logError("test", "visible error");
  std::string out = capture.text();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible warn"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
  EXPECT_NE(out.find("[WARN]"), std::string::npos);
  EXPECT_NE(out.find("[ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, DebugLevelShowsEverything) {
  Logger::instance().setLevel(LogLevel::Debug);
  ClogCapture capture;
  logDebug("component", "value=", 42, " flag=", true);
  std::string out = capture.text();
  EXPECT_NE(out.find("[DEBUG] component: value=42 flag=1"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesAll) {
  Logger::instance().setLevel(LogLevel::Off);
  ClogCapture capture;
  logError("test", "nope");
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::instance(), &Logger::instance());
}

}  // namespace
}  // namespace mw::util
