// Reading history and trajectory queries.
#include <gtest/gtest.h>

#include "core/location_service.hpp"
#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::db {
namespace {

using mw::util::MobileObjectId;
using mw::util::minutes;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

struct Fixture {
  VirtualClock clock;
  SpatialDatabase db;

  Fixture() : db(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "U") {
    SensorMeta meta;
    meta.sensorId = SensorId{"ubi-1"};
    meta.sensorType = "Ubisense";
    meta.errorSpec = quality::ubisenseSpec(1.0);
    meta.quality.ttl = minutes(30);
    db.registerSensor(meta);
  }

  void insertAt(geo::Point2 where) {
    SensorReading r;
    r.sensorId = SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{"alice"};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    db.insertReading(r);
  }
};

TEST(HistoryTest, EmptyForUnknownObject) {
  Fixture f;
  EXPECT_TRUE(f.db.history(MobileObjectId{"ghost"}, minutes(5)).empty());
}

TEST(HistoryTest, TimeOrderedWithinWindow) {
  Fixture f;
  f.insertAt({10, 10});
  f.clock.advance(sec(30));
  f.insertAt({20, 10});
  f.clock.advance(sec(30));
  f.insertAt({30, 10});

  auto lastMinute = f.db.history(MobileObjectId{"alice"}, sec(61));
  ASSERT_EQ(lastMinute.size(), 3u);
  EXPECT_EQ(lastMinute[0].location, (geo::Point2{10, 10}));
  EXPECT_EQ(lastMinute[2].location, (geo::Point2{30, 10}));

  auto last45s = f.db.history(MobileObjectId{"alice"}, sec(45));
  ASSERT_EQ(last45s.size(), 2u);
  EXPECT_EQ(last45s[0].location, (geo::Point2{20, 10}));
}

TEST(HistoryTest, CapacityRingDropsOldest) {
  Fixture f;
  f.db.setHistoryCapacity(3);
  for (int i = 0; i < 10; ++i) {
    f.insertAt({static_cast<double>(i), 0});
    f.clock.advance(sec(1));
  }
  auto all = f.db.history(MobileObjectId{"alice"}, minutes(60));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].location.x, 7);
  EXPECT_EQ(all[2].location.x, 9);
  EXPECT_THROW(f.db.setHistoryCapacity(0), mw::util::ContractError);
}

TEST(HistoryTest, ShrinkingCapacityTrimsExisting) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    f.insertAt({static_cast<double>(i), 0});
    f.clock.advance(sec(1));
  }
  f.db.setHistoryCapacity(2);
  EXPECT_EQ(f.db.history(MobileObjectId{"alice"}, minutes(60)).size(), 2u);
}

TEST(TrajectoryTest, ServiceExposesTimeOrderedSamples) {
  Fixture f;
  mw::core::LocationService service(f.clock, f.db);
  for (int i = 0; i < 5; ++i) {
    f.insertAt({static_cast<double>(10 * i), 5});
    f.clock.advance(sec(10));
  }
  auto traj = service.trajectory(MobileObjectId{"alice"}, minutes(5));
  ASSERT_EQ(traj.size(), 5u);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_LT(traj[i - 1].when, traj[i].when);
    EXPECT_LT(traj[i - 1].where.x, traj[i].where.x) << "moving east";
  }
  EXPECT_TRUE(service.trajectory(MobileObjectId{"ghost"}, minutes(5)).empty());
}

}  // namespace
}  // namespace mw::db
