// Symbolic-region lattice (§4.5), application-defined regions and usage
// regions (§4 tasks 4-5, §4.6.2b).
#include <gtest/gtest.h>

#include "core/location_service.hpp"
#include "core/region_lattice.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::SpatialObjectId;
using mw::util::VirtualClock;

// --- RegionLattice in isolation --------------------------------------------------

RegionLattice buildingLattice() {
  RegionLattice lat;
  lat.add("SC", geo::Rect::fromOrigin({0, 0}, 100, 100));
  lat.add("SC/3", geo::Rect::fromOrigin({0, 0}, 100, 50));
  lat.add("SC/3/3216", geo::Rect::fromOrigin({10, 10}, 20, 20));
  lat.add("SC/3/3216/workarea", geo::Rect::fromOrigin({12, 12}, 5, 5));
  lat.add("SC/EastWing", geo::Rect::fromOrigin({60, 0}, 40, 100));
  return lat;
}

TEST(RegionLatticeTest, AddAndFind) {
  RegionLattice lat = buildingLattice();
  EXPECT_EQ(lat.size(), 5u);
  ASSERT_TRUE(lat.find("SC/3/3216").has_value());
  EXPECT_EQ(lat.find("nope"), std::nullopt);
  EXPECT_THROW(lat.add("SC", geo::Rect::fromOrigin({0, 0}, 1, 1)), mw::util::ContractError);
  EXPECT_THROW(lat.add("x", geo::Rect{}), mw::util::ContractError);
}

TEST(RegionLatticeTest, HasseStructureAndDepths) {
  RegionLattice lat = buildingLattice();
  auto root = *lat.find("SC");
  auto floor = *lat.find("SC/3");
  auto room = *lat.find("SC/3/3216");
  auto work = *lat.find("SC/3/3216/workarea");
  EXPECT_EQ(lat.node(root).depth, 0u);
  EXPECT_EQ(lat.node(floor).depth, 1u);
  EXPECT_EQ(lat.node(room).depth, 2u);
  EXPECT_EQ(lat.node(work).depth, 3u);
  EXPECT_EQ(lat.node(room).parents, (std::vector<std::size_t>{floor}));
  EXPECT_EQ(lat.node(work).parents, (std::vector<std::size_t>{room}));
  // The east wing sits directly under the building.
  auto wing = *lat.find("SC/EastWing");
  EXPECT_EQ(lat.node(wing).parents, (std::vector<std::size_t>{root}));
}

TEST(RegionLatticeTest, SmallestAtAndChain) {
  RegionLattice lat = buildingLattice();
  geo::Point2 inWorkArea{14, 14};
  auto smallest = lat.smallestAt(inWorkArea);
  ASSERT_TRUE(smallest.has_value());
  EXPECT_EQ(lat.node(*smallest).glob, "SC/3/3216/workarea");

  auto chain = lat.chainAt(inWorkArea);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(lat.node(chain[0]).glob, "SC");
  EXPECT_EQ(lat.node(chain[1]).glob, "SC/3");
  EXPECT_EQ(lat.node(chain[2]).glob, "SC/3/3216");
  EXPECT_EQ(lat.node(chain[3]).glob, "SC/3/3216/workarea");

  EXPECT_EQ(lat.smallestAt({200, 200}), std::nullopt);
  EXPECT_TRUE(lat.chainAt({200, 200}).empty());
}

TEST(RegionLatticeTest, GranularityCut) {
  // §4.5: reveal only up to a granularity level.
  RegionLattice lat = buildingLattice();
  geo::Point2 p{14, 14};
  auto atRoom = lat.atGranularity(p, 2);
  ASSERT_TRUE(atRoom.has_value());
  EXPECT_EQ(lat.node(*atRoom).glob, "SC/3/3216");
  auto atFloor = lat.atGranularity(p, 1);
  ASSERT_TRUE(atFloor.has_value());
  EXPECT_EQ(lat.node(*atFloor).glob, "SC/3");
  auto atBuilding = lat.atGranularity(p, 0);
  ASSERT_TRUE(atBuilding.has_value());
  EXPECT_EQ(lat.node(*atBuilding).glob, "SC");
}

TEST(RegionLatticeTest, OverlappingDerivedRegions) {
  // The east wing overlaps floor 3; a point in both chains through whichever
  // containment order applies (wing is not inside the floor, so both appear
  // with the building as common parent).
  RegionLattice lat = buildingLattice();
  auto chain = lat.chainAt({70, 25});  // inside SC, SC/3 and SC/EastWing
  std::vector<std::string> names;
  for (auto i : chain) names.push_back(lat.node(i).glob);
  EXPECT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "SC");
}

// --- LocationService integration ---------------------------------------------------

struct ServiceFixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  ServiceFixture()
      : db(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC"), service(clock, db) {
    db::SpatialObjectRow building;
    building.id = SpatialObjectId{"SC"};
    building.globPrefix = "";
    building.objectType = db::ObjectType::Building;
    building.geometryType = db::GeometryType::Polygon;
    building.points = {{0, 0}, {100, 0}, {100, 50}, {0, 50}};
    db.addObject(building);

    db::SpatialObjectRow room;
    room.id = SpatialObjectId{"roomA"};
    room.globPrefix = "SC";
    room.objectType = db::ObjectType::Room;
    room.geometryType = db::GeometryType::Polygon;
    room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
    db.addObject(room);

    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    db.registerSensor(ubi);
  }

  void place(const char* person, geo::Point2 where) {
    db::SensorReading r;
    r.sensorId = SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    service.ingest(r);
  }
};

TEST(ServiceRegionsTest, DefineRegionAppearsInLatticeAndDb) {
  ServiceFixture f;
  f.service.defineRegion("SC/roomA/deskzone", geo::Rect::fromOrigin({2, 2}, 6, 6),
                         {{"purpose", "focus"}});
  const auto& lat = f.service.regionLattice();
  auto idx = lat.find("SC/roomA/deskzone");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(lat.node(*idx).properties.at("purpose"), "focus");
  // Stored as a database row too.
  auto row = f.service.database().objectByGlob("SC/roomA/deskzone");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->properties.at("region"), "app");
}

TEST(ServiceRegionsTest, LocateSymbolicUsesAppRegions) {
  ServiceFixture f;
  f.service.defineRegion("SC/roomA/deskzone", geo::Rect::fromOrigin({2, 2}, 6, 6));
  f.place("alice", {4, 4});
  auto symbolic = f.service.locateSymbolic(MobileObjectId{"alice"});
  ASSERT_TRUE(symbolic.has_value());
  EXPECT_EQ(symbolic->str(), "SC/roomA/deskzone") << "most specific region wins";
}

TEST(ServiceRegionsTest, SymbolicChain) {
  ServiceFixture f;
  f.service.defineRegion("SC/roomA/deskzone", geo::Rect::fromOrigin({2, 2}, 6, 6));
  f.place("alice", {4, 4});
  auto chain = f.service.symbolicChainFor(MobileObjectId{"alice"});
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], "SC");
  EXPECT_EQ(chain[1], "SC/roomA");
  EXPECT_EQ(chain[2], "SC/roomA/deskzone");
}

TEST(ServiceRegionsTest, ReindexAfterDirectDbMutation) {
  ServiceFixture f;
  f.place("alice", {30, 30});  // outside roomA, inside the building
  auto before = f.service.locateSymbolic(MobileObjectId{"alice"});
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->str(), "SC");
  // A new room added behind the service's back is invisible until reindex.
  db::SpatialObjectRow room;
  room.id = SpatialObjectId{"roomB"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{25, 25}, {40, 25}, {40, 40}, {25, 40}};
  f.service.database().addObject(room);
  EXPECT_EQ(f.service.locateSymbolic(MobileObjectId{"alice"})->str(), "SC");
  f.service.reindexRegions();
  EXPECT_EQ(f.service.locateSymbolic(MobileObjectId{"alice"})->str(), "SC/roomB");
}

TEST(ServiceRegionsTest, UsageRegions) {
  ServiceFixture f;
  db::SpatialObjectRow display;
  display.id = SpatialObjectId{"display1"};
  display.globPrefix = "SC";
  display.objectType = db::ObjectType::Display;
  display.geometryType = db::GeometryType::Point;
  display.points = {{10, 19}};
  // §4.6.2b: "he has to be within the usage region of the object".
  f.service.addStaticObject(display, geo::Rect::fromOrigin({6, 12}, 8, 7));

  ASSERT_TRUE(f.service.usageRegion(SpatialObjectId{"display1"}).has_value());
  EXPECT_EQ(f.service.usageRegion(SpatialObjectId{"ghost"}), std::nullopt);

  f.place("alice", {10, 15});  // inside the usage region
  f.place("bob", {3, 3});      // in roomA but outside it
  EXPECT_GT(f.service.usageProbability(MobileObjectId{"alice"}, SpatialObjectId{"display1"}),
            0.8);
  EXPECT_DOUBLE_EQ(
      f.service.usageProbability(MobileObjectId{"bob"}, SpatialObjectId{"display1"}), 0.0);
  EXPECT_DOUBLE_EQ(
      f.service.usageProbability(MobileObjectId{"alice"}, SpatialObjectId{"ghost"}), 0.0);
}

TEST(ServiceRegionsTest, SymbolicCoordinateConversion) {
  // §3: "MiddleWhere also allows easy conversion between the two forms of
  // location data."
  ServiceFixture f;
  auto rect = f.service.resolveRegion("SC/roomA");
  ASSERT_TRUE(rect.has_value());
  EXPECT_EQ(*rect, geo::Rect::fromOrigin({0, 0}, 20, 20));
  EXPECT_EQ(f.service.resolveRegion("SC/ghost"), std::nullopt);

  auto symbolic = f.service.symbolicAt({5, 5});
  ASSERT_TRUE(symbolic.has_value());
  EXPECT_EQ(symbolic->str(), "SC/roomA");
  EXPECT_EQ(f.service.symbolicAt({500, 500}), std::nullopt);
}

TEST(ServiceRegionsTest, DefineRegionValidation) {
  ServiceFixture f;
  EXPECT_THROW(f.service.defineRegion("SC/x", geo::Rect{}), mw::util::ContractError);
  EXPECT_THROW(f.service.defineRegion("SC/(1,2)", geo::Rect::fromOrigin({0, 0}, 1, 1)),
               mw::util::ContractError)
      << "coordinate GLOBs cannot name regions";
}

}  // namespace
}  // namespace mw::core
