// Continuous-query subsystem tests: the Rete-style TriggerNetwork, the
// incremental Datalog (semi-naive inserts, DRed retraction), and the
// LocationService's network-driven subscription dispatch — each checked
// against a scratch-recompute oracle so incremental maintenance is proven
// byte-identical to recomputing from first principles, including under
// retraction (TTL expiry), rule install/uninstall mid-stream, and
// concurrent ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"
#include "cq/trigger_network.hpp"
#include "quality/error_model.hpp"
#include "reasoning/datalog.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace mw {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

// --- TriggerNetwork ---------------------------------------------------------------

TEST(ContinuousQueryNetworkTest, AlphaNodesAreSharedAcrossSameRegionRules) {
  cq::TriggerNetwork net;
  const auto room = geo::Rect::fromOrigin({0, 0}, 10, 10);
  for (cq::ProductionId id = 1; id <= 1000; ++id) {
    net.installProduction(id, room, std::nullopt);
  }
  EXPECT_EQ(net.productionCount(), 1000u);
  EXPECT_EQ(net.alphaNodeCount(), 1u) << "one shared alpha node, not one per rule";

  std::vector<cq::ProductionId> matched;
  net.match(geo::Rect::fromOrigin({4, 4}, 1, 1), "alice", matched);
  EXPECT_EQ(matched.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(matched.begin(), matched.end()));

  net.match(geo::Rect::fromOrigin({50, 50}, 1, 1), "alice", matched);
  EXPECT_TRUE(matched.empty()) << "a miss touches no production";
}

TEST(ContinuousQueryNetworkTest, SubjectDiscriminationIsExact) {
  cq::TriggerNetwork net;
  const auto room = geo::Rect::fromOrigin({0, 0}, 10, 10);
  net.installProduction(1, room, std::nullopt);
  net.installProduction(2, room, std::string("alice"));
  net.installProduction(3, room, std::string("bob"));
  EXPECT_EQ(net.alphaNodeCount(), 1u) << "subject variants share the region node";

  std::vector<cq::ProductionId> matched;
  net.match(geo::Rect::fromOrigin({1, 1}, 1, 1), "alice", matched);
  EXPECT_EQ(matched, (std::vector<cq::ProductionId>{1, 2}));
  net.match(geo::Rect::fromOrigin({1, 1}, 1, 1), "carol", matched);
  EXPECT_EQ(matched, (std::vector<cq::ProductionId>{1}));
}

TEST(ContinuousQueryNetworkTest, InsideMemoryYieldsExitCandidates) {
  cq::TriggerNetwork net;
  const auto room = geo::Rect::fromOrigin({0, 0}, 10, 10);
  net.installProduction(7, room, std::nullopt);
  net.setInside(7, "alice", true);
  EXPECT_TRUE(net.isInside(7, "alice"));
  EXPECT_EQ(net.insideCount(), 1u);

  // A reading far from the region still matches: the production tracks
  // alice as inside, so it must observe the (potential) exit.
  std::vector<cq::ProductionId> matched;
  net.match(geo::Rect::fromOrigin({80, 80}, 1, 1), "alice", matched);
  EXPECT_EQ(matched, (std::vector<cq::ProductionId>{7}));
  net.match(geo::Rect::fromOrigin({80, 80}, 1, 1), "bob", matched);
  EXPECT_TRUE(matched.empty()) << "bob was never inside";

  net.setInside(7, "alice", false);
  EXPECT_EQ(net.insideCount(), 0u) << "the memory holds only inside pairs";
  net.match(geo::Rect::fromOrigin({80, 80}, 1, 1), "alice", matched);
  EXPECT_TRUE(matched.empty());
}

TEST(ContinuousQueryNetworkTest, RemoveProductionCleansAlphaAndEdgeState) {
  cq::TriggerNetwork net;
  const auto room = geo::Rect::fromOrigin({0, 0}, 10, 10);
  net.installProduction(1, room, std::nullopt);
  net.installProduction(2, room, std::nullopt);
  net.setInside(1, "alice", true);
  net.setInside(2, "alice", true);

  EXPECT_TRUE(net.removeProduction(1));
  EXPECT_FALSE(net.removeProduction(1)) << "already gone";
  EXPECT_EQ(net.alphaNodeCount(), 1u) << "node survives while production 2 uses it";
  EXPECT_EQ(net.insideCount(), 1u);

  std::vector<cq::ProductionId> matched;
  net.match(geo::Rect::fromOrigin({50, 50}, 1, 1), "alice", matched);
  EXPECT_EQ(matched, (std::vector<cq::ProductionId>{2}));

  EXPECT_TRUE(net.removeProduction(2));
  EXPECT_EQ(net.alphaNodeCount(), 0u) << "last production frees the alpha node";
  EXPECT_EQ(net.insideCount(), 0u);
  EXPECT_THROW(net.installProduction(3, geo::Rect(), std::nullopt), util::ContractError);
}

// --- incremental Datalog vs scratch oracle ----------------------------------------

using reasoning::Atom;
using reasoning::Datalog;
using reasoning::Rule;
using reasoning::Term;

Term v(const char* name) { return Term::var(name); }
Term c(const std::string& value) { return Term::atom(value); }

std::vector<Rule> pathRules() {
  return {
      Rule{{"path", {v("X"), v("Y")}}, {{"edge", {v("X"), v("Y")}}}},
      Rule{{"path", {v("X"), v("Y")}}, {{"edge", {v("X"), v("Z")}}, {"path", {v("Z"), v("Y")}}}},
  };
}

/// Scratch oracle: a FRESH engine over the current base facts and rules,
/// saturated from nothing. The incremental engine must agree exactly.
std::set<std::pair<std::string, std::string>> scratchPaths(
    const std::vector<std::pair<std::string, std::string>>& edges,
    const std::vector<Rule>& rules) {
  Datalog fresh;
  for (const auto& [a, b] : edges) fresh.addFact("edge", {a, b});
  for (const auto& rule : rules) fresh.addRule(rule);
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& binding : fresh.query({"path", {v("X"), v("Y")}})) {
    out.emplace(binding.at("X"), binding.at("Y"));
  }
  return out;
}

std::set<std::pair<std::string, std::string>> incrementalPaths(Datalog& db) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& binding : db.query({"path", {v("X"), v("Y")}})) {
    out.emplace(binding.at("X"), binding.at("Y"));
  }
  return out;
}

TEST(ContinuousQueryDatalogTest, InsertStreamMatchesScratchWithoutRecomputes) {
  Datalog db;
  for (const auto& rule : pathRules()) db.addRule(rule);
  std::vector<std::pair<std::string, std::string>> edges;
  db.saturate();  // first saturation is the one allowed full build

  const std::vector<std::pair<std::string, std::string>> stream = {
      {"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"},  // cycle
      {"c", "e"}, {"e", "f"}, {"x", "y"},
  };
  for (const auto& [from, to] : stream) {
    db.addFact("edge", {from, to});
    edges.emplace_back(from, to);
    EXPECT_EQ(incrementalPaths(db), scratchPaths(edges, pathRules()))
        << "after inserting " << from << "->" << to;
  }
  EXPECT_EQ(db.stats().fullRecomputes, 1u)
      << "inserts must propagate semi-naively, never rebuild the closure";
  EXPECT_GT(db.stats().deltaInsertions, 0u);
}

TEST(ContinuousQueryDatalogTest, RetractionMatchesScratchThroughCyclesAndDiamonds) {
  Datalog db;
  for (const auto& rule : pathRules()) db.addRule(rule);
  // A diamond (two derivations for a->d) plus a cycle (b->c->b) — the cases
  // where naive deletion either over-deletes (diamond) or support counting
  // never drains (cycle).
  std::vector<std::pair<std::string, std::string>> edges = {
      {"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}, {"b", "c"}, {"c", "b"},
  };
  for (const auto& [from, to] : edges) db.addFact("edge", {from, to});
  EXPECT_EQ(incrementalPaths(db), scratchPaths(edges, pathRules()));

  const std::vector<std::pair<std::string, std::string>> retractions = {
      {"b", "d"},  // diamond: a->d survives via c
      {"c", "b"},  // breaks the cycle
      {"a", "b"}, {"c", "d"}, {"a", "c"}, {"b", "c"},
  };
  for (const auto& [from, to] : retractions) {
    EXPECT_TRUE(db.retractFact("edge", {from, to}));
    std::erase(edges, std::pair<std::string, std::string>{from, to});
    EXPECT_EQ(incrementalPaths(db), scratchPaths(edges, pathRules()))
        << "after retracting " << from << "->" << to;
  }
  EXPECT_TRUE(incrementalPaths(db).empty());
  EXPECT_EQ(db.stats().fullRecomputes, 1u)
      << "DRed must maintain the closure without rebuilding it";
}

TEST(ContinuousQueryDatalogTest, RetractingUnknownOrDerivedOnlyFactsIsRejected) {
  Datalog db;
  db.addRule(Rule{{"q", {v("X")}}, {{"p", {v("X")}}}});
  db.addFact("p", {"a"});
  EXPECT_TRUE(db.holds({"q", {c("a")}}));
  EXPECT_FALSE(db.retractFact("q", {"a"})) << "q(a) is derived, not a base fact";
  EXPECT_FALSE(db.retractFact("p", {"zzz"}));
  EXPECT_TRUE(db.retractFact("p", {"a"}));
  EXPECT_FALSE(db.holds({"q", {c("a")}})) << "derived fact dies with its last support";
}

TEST(ContinuousQueryDatalogTest, InterleavedAddRetractReplaysInCallOrder) {
  Datalog db;
  db.saturate();
  db.addFact("p", {"a"});
  EXPECT_TRUE(db.retractFact("p", {"a"}));
  db.addFact("p", {"a"});
  EXPECT_TRUE(db.holds({"p", {c("a")}})) << "add/retract/add must leave the fact present";

  EXPECT_TRUE(db.retractFact("p", {"a"}));
  EXPECT_FALSE(db.holds({"p", {c("a")}}));
}

TEST(ContinuousQueryDatalogTest, RuleInstallMidStreamIsIncremental) {
  Datalog db;
  db.addFact("edge", {"a", "b"});
  db.addFact("edge", {"b", "c"});
  db.addRule(pathRules()[0]);
  EXPECT_TRUE(db.holds({"path", {c("a"), c("b")}}));
  EXPECT_FALSE(db.holds({"path", {c("a"), c("c")}}));
  const std::uint64_t recomputesBefore = db.stats().fullRecomputes;

  // The transitive rule arrives mid-stream: its derivations (and theirs)
  // must appear without a rebuild.
  db.addRule(pathRules()[1]);
  EXPECT_TRUE(db.holds({"path", {c("a"), c("c")}}));
  EXPECT_EQ(db.stats().fullRecomputes, recomputesBefore);
  EXPECT_EQ(incrementalPaths(db), scratchPaths({{"a", "b"}, {"b", "c"}}, pathRules()));
}

TEST(ContinuousQueryDatalogTest, RuleRemovalDropsItsDerivations) {
  Datalog db;
  db.addFact("edge", {"a", "b"});
  db.addFact("edge", {"b", "c"});
  const auto baseRule = db.addRule(pathRules()[0]);
  const auto transitive = db.addRule(pathRules()[1]);
  (void)baseRule;
  EXPECT_TRUE(db.holds({"path", {c("a"), c("c")}}));

  EXPECT_TRUE(db.removeRule(transitive));
  EXPECT_FALSE(db.removeRule(transitive)) << "already removed";
  EXPECT_TRUE(db.holds({"path", {c("a"), c("b")}}));
  EXPECT_FALSE(db.holds({"path", {c("a"), c("c")}})) << "transitive derivations are gone";
  EXPECT_EQ(db.ruleCount(), 1u);

  // Incremental maintenance resumes after the rebuild.
  db.addFact("edge", {"c", "d"});
  EXPECT_TRUE(db.holds({"path", {c("c"), c("d")}}));
}

// --- LocationService: network-dispatched subscriptions vs scratch oracle -----------

/// The §4.3 subscription semantics recomputed from first principles per
/// reading: a linear scan over ALL standing rules (the geometric prefilter,
/// subject filter, probability threshold and edge memory applied longhand),
/// against which the network-dispatched incremental path must be
/// byte-identical.
struct ScratchOracle {
  struct Spec {
    geo::Rect region;
    std::optional<MobileObjectId> subject;
    double threshold = 0;
    bool onlyOnEntry = false;
  };
  std::map<std::uint64_t, Spec> specs;
  std::map<std::pair<std::uint64_t, std::string>, bool> inside;

  /// Expected notifications (subscription id, object) for one reading, in
  /// ascending id order — the service's documented evaluation order.
  std::vector<std::pair<std::uint64_t, std::string>> onReading(
      const core::LocationService& service, const MobileObjectId& object,
      const geo::Rect& readingBox) {
    std::vector<std::pair<std::uint64_t, std::string>> fired;
    for (auto& [id, spec] : specs) {
      if (spec.subject && *spec.subject != object) continue;
      bool& wasInside = inside[{id, object.str()}];
      // Geometric prefilter: not touched and not inside -> not evaluated.
      if (!spec.region.intersects(readingBox) && !wasInside) continue;
      const double p = service.probabilityInRegion(object, spec.region);
      const bool qualifies = p >= spec.threshold;
      const bool notify = qualifies && (!spec.onlyOnEntry || !wasInside);
      wasInside = qualifies;
      if (notify) fired.emplace_back(id, object.str());
    }
    return fired;
  }
};

struct ServiceFixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  core::LocationService service;

  ServiceFixture() : db(makeDb(clock)), service(clock, db) {}

  static db::SpatialDatabase makeDb(const util::Clock& clock) {
    db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    database.registerSensor(ubi);
    return database;
  }

  db::SensorReading reading(const std::string& person, geo::Point2 where) {
    db::SensorReading r;
    r.sensorId = SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    return r;
  }
};

TEST(ContinuousQueryServiceTest, NotificationsMatchScratchOracleThroughEdgesAndChurn) {
  ServiceFixture f;
  ScratchOracle oracle;
  std::mutex firedMutex;
  std::vector<std::pair<std::uint64_t, std::string>> fired;
  auto record = [&](const core::Notification& n) {
    std::lock_guard lock(firedMutex);
    fired.emplace_back(n.id.value(), n.object.str());
  };

  const auto roomA = geo::Rect::fromOrigin({0, 0}, 20, 20);
  const auto roomB = geo::Rect::fromOrigin({40, 0}, 20, 20);
  auto install = [&](geo::Rect region, std::optional<MobileObjectId> subject, double threshold,
                     bool onlyOnEntry) {
    core::Subscription sub;
    sub.region = region;
    sub.subject = subject;
    sub.threshold = threshold;
    sub.onlyOnEntry = onlyOnEntry;
    sub.callback = record;
    const auto id = f.service.subscribe(std::move(sub));
    oracle.specs[id.value()] = {region, subject, threshold, onlyOnEntry};
    return id;
  };

  install(roomA, std::nullopt, 0.5, /*onlyOnEntry=*/true);
  install(roomA, MobileObjectId{"alice"}, 0.5, /*onlyOnEntry=*/false);
  const auto bSub = install(roomB, std::nullopt, 0.5, /*onlyOnEntry=*/true);

  auto step = [&](const std::string& person, geo::Point2 where) {
    const auto r = f.reading(person, where);
    {
      std::lock_guard lock(firedMutex);
      fired.clear();
    }
    f.service.ingest(r);
    // The oracle fuses through the same service state AFTER the ingest.
    const auto expected =
        oracle.onReading(f.service, MobileObjectId{person}, r.rect());
    std::lock_guard lock(firedMutex);
    EXPECT_EQ(fired, expected) << person << " at (" << where.x << "," << where.y << ")";
  };

  step("alice", {5, 5});     // enter A: both A-subs fire
  step("alice", {6, 5});     // still inside: level sub fires, edge sub doesn't
  step("bob", {5, 6});       // bob enters A: edge sub only (sub 2 is alice's)
  step("alice", {25, 25});   // exit A
  step("alice", {5, 5});     // re-enter A: rising edge again
  step("alice", {45, 5});    // leave A for B

  // Rule churn mid-stream: uninstall the B subscription, add a new one.
  ASSERT_TRUE(f.service.unsubscribe(bSub));
  oracle.specs.erase(bSub.value());
  for (auto it = oracle.inside.begin(); it != oracle.inside.end();) {
    it = it->first.first == bSub.value() ? oracle.inside.erase(it) : ++it;
  }
  install(roomB, std::nullopt, 0.4, /*onlyOnEntry=*/true);
  step("alice", {46, 5});    // the fresh sub sees alice's NEXT update as an entry
  step("bob", {45, 6});      // bob crosses into B

  // TTL expiry retraction: alice's evidence ages out; the next update for
  // her (a new reading far away) must fire the exits exactly like a scratch
  // recompute that no longer sees the expired evidence.
  f.clock.advance(sec(60));
  step("alice", {80, 40});   // stale B evidence gone; outside everything
  step("bob", {80, 40});

  const auto stats = f.service.standingRuleStats();
  EXPECT_EQ(stats.productions, 3u);
  EXPECT_EQ(stats.insidePairs, 0u) << "everyone ended outside";
}

TEST(ContinuousQueryServiceTest, UpdatesTouchOnlyAffectedRules) {
  ServiceFixture f;
  std::atomic<int> notified{0};
  // 500 standing rules over 25 distinct far-away regions (20 rules per
  // rect) plus one on the room alice is in. Shared-region rules collapse to
  // one alpha node per rect, and alice's update must fire exactly the one
  // rule that watches her room.
  for (int i = 0; i < 500; ++i) {
    core::Subscription sub;
    sub.region = geo::Rect::fromOrigin({60.0 + (i % 25), 30.0}, 2, 2);
    sub.threshold = 0.3;
    sub.callback = [&](const core::Notification&) { notified.fetch_add(1); };
    (void)f.service.subscribe(std::move(sub));
  }
  core::Subscription watched;
  watched.region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  watched.threshold = 0.3;
  watched.callback = [&](const core::Notification&) { notified.fetch_add(1); };
  (void)f.service.subscribe(std::move(watched));

  const auto stats = f.service.standingRuleStats();
  EXPECT_EQ(stats.productions, 501u);
  EXPECT_EQ(stats.alphaNodes, 26u) << "25 shared far rects + alice's room";

  f.service.ingest(f.reading("alice", {5, 5}));
  EXPECT_EQ(notified.load(), 1) << "only the watching rule fires";
  EXPECT_EQ(f.service.standingRuleStats().insidePairs, 1u);
}

TEST(ContinuousQueryServiceTest, ConcurrentIngestAndRuleChurnStaysConsistent) {
  ServiceFixture f;
  const auto roomA = geo::Rect::fromOrigin({0, 0}, 20, 20);
  std::atomic<int> notifications{0};

  // A stable subscription that must observe every object's entry exactly
  // once (each object enters roomA once and stays).
  core::Subscription stable;
  stable.region = roomA;
  stable.threshold = 0.5;
  stable.onlyOnEntry = true;
  stable.callback = [&](const core::Notification&) { notifications.fetch_add(1); };
  (void)f.service.subscribe(std::move(stable));

  constexpr int kObjectsPerThread = 16;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kObjectsPerThread; ++i) {
        const std::string person = "p" + std::to_string(t) + "-" + std::to_string(i);
        // Two updates inside the room: one rising edge, one level-hold.
        f.service.ingest(f.reading(person, {2.0 + t * 4.0, 2.0 + i * 1.0}));
        f.service.ingest(f.reading(person, {2.5 + t * 4.0, 2.0 + i * 1.0}));
      }
    });
  }
  // Churn thread: install/uninstall rules on an UNRELATED region while
  // ingest runs — exercising the network's install/remove paths under load.
  workers.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      core::Subscription sub;
      sub.region = geo::Rect::fromOrigin({70, 30}, 5, 5);
      sub.threshold = 0.5;
      sub.callback = [](const core::Notification&) {};
      const auto id = f.service.subscribe(std::move(sub));
      (void)f.service.unsubscribe(id);
    }
  });
  for (auto& w : workers) w.join();

  EXPECT_EQ(notifications.load(), kThreads * kObjectsPerThread)
      << "each object's rising edge fires exactly once";
  const auto stats = f.service.standingRuleStats();
  EXPECT_EQ(stats.productions, 1u) << "churned rules all uninstalled";
  EXPECT_EQ(stats.insidePairs, static_cast<std::size_t>(kThreads * kObjectsPerThread));
}

}  // namespace
}  // namespace mw
