#include "reasoning/passages.hpp"

#include <gtest/gtest.h>

namespace mw::reasoning {
namespace {

using geo::Rect;

// Two rooms sharing the x=4 wall, corridor above both.
const Rect kRoomA = Rect::fromOrigin({0, 0}, 4, 4);
const Rect kRoomB = Rect::fromOrigin({4, 0}, 4, 4);
const Rect kFarRoom = Rect::fromOrigin({20, 0}, 4, 4);

TEST(PassagesTest, PassageConnectsSharedWall) {
  Passage door{"Door1", {{4, 1}, {4, 2}}, PassageKind::Free};
  EXPECT_TRUE(passageConnects(door, kRoomA, kRoomB));
  EXPECT_TRUE(passageConnects(door, kRoomB, kRoomA)) << "symmetric";
  EXPECT_FALSE(passageConnects(door, kRoomA, kFarRoom));
}

TEST(PassagesTest, PassageOnOneBoundaryOnlyDoesNotConnect) {
  Passage door{"DoorX", {{0, 1}, {0, 2}}, PassageKind::Free};  // A's far wall
  EXPECT_FALSE(passageConnects(door, kRoomA, kRoomB));
}

TEST(PassagesTest, EcfpWithFreeDoor) {
  std::vector<Passage> ps{{"Door1", {{4, 1}, {4, 2}}, PassageKind::Free}};
  EXPECT_EQ(classifyEc(kRoomA, kRoomB, ps), EcKind::ECFP);
}

TEST(PassagesTest, EcrpWithLockedDoorOnly) {
  // "An example of a restricted passage is a door that is normally locked
  // and which requires either a card swipe or a key to open."
  std::vector<Passage> ps{{"SecureDoor", {{4, 1}, {4, 2}}, PassageKind::Restricted}};
  EXPECT_EQ(classifyEc(kRoomA, kRoomB, ps), EcKind::ECRP);
}

TEST(PassagesTest, FreeDoorDominatesRestricted) {
  std::vector<Passage> ps{
      {"SecureDoor", {{4, 1}, {4, 2}}, PassageKind::Restricted},
      {"OpenDoor", {{4, 3}, {4, 3.5}}, PassageKind::Free},
  };
  EXPECT_EQ(classifyEc(kRoomA, kRoomB, ps), EcKind::ECFP);
}

TEST(PassagesTest, EcnpPlainWall) {
  // "two adjacent rooms that just have a wall (with no door) in between are
  // also externally connected" — but ECNP.
  EXPECT_EQ(classifyEc(kRoomA, kRoomB, {}), EcKind::ECNP);
}

TEST(PassagesTest, NotEcForDisjointOrOverlapping) {
  EXPECT_EQ(classifyEc(kRoomA, kFarRoom, {}), EcKind::NotEc);
  EXPECT_EQ(classifyEc(kRoomA, Rect::fromOrigin({2, 2}, 4, 4), {}), EcKind::NotEc);
}

TEST(PassagesTest, DoorElsewhereDoesNotUpgradeEcnp) {
  std::vector<Passage> ps{{"FarDoor", {{20, 1}, {20, 2}}, PassageKind::Free}};
  EXPECT_EQ(classifyEc(kRoomA, kRoomB, ps), EcKind::ECNP);
}

}  // namespace
}  // namespace mw::reasoning
