// Tests for the fusion engine pipeline: lattice construction, conflict
// resolution (§4.1.2 case 3) and single-location inference (§4.2).
#include "fusion/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mw::fusion {
namespace {

const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 100, 100);

FusionInput input(const char* id, geo::Rect r, double p, double q, bool moving = false) {
  return FusionInput{util::SensorId{id}, r, p, q, moving};
}

TEST(FusionEngineTest, NoInputsNoEstimate) {
  FusionEngine engine(kUniverse);
  EXPECT_EQ(engine.infer({}), std::nullopt);
}

TEST(FusionEngineTest, UninformativeInputsIgnored) {
  FusionEngine engine(kUniverse);
  // p <= q carries no information (expired/degraded readings).
  FusionInputs ins{input("s1", geo::Rect::fromOrigin({10, 10}, 5, 5), 0.1, 0.5)};
  EXPECT_EQ(engine.infer(ins), std::nullopt);
}

TEST(FusionEngineTest, SingleSensorEstimate) {
  FusionEngine engine(kUniverse);
  geo::Rect r = geo::Rect::fromOrigin({10, 10}, 5, 5);
  auto est = engine.infer({input("ubi", r, 0.95, 0.001)});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, r);
  EXPECT_NEAR(est->probability, singleSensorProbability(input("ubi", r, 0.95, 0.001), kUniverse),
              1e-12);
  ASSERT_EQ(est->supporting.size(), 1u);
  EXPECT_EQ(est->supporting[0].str(), "ubi");
  EXPECT_TRUE(est->discarded.empty());
}

TEST(FusionEngineTest, ContainedSensorsPickInnerRegion) {
  // Case 1 (Fig 2): A inside B — the smallest region (A) is the estimate and
  // both sensors support it.
  FusionEngine engine(kUniverse);
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);
  auto est = engine.infer({input("s1", a, 0.9, 0.01), input("s2", b, 0.8, 0.05)});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, a);
  EXPECT_EQ(est->supporting.size(), 2u);
}

TEST(FusionEngineTest, IntersectingSensorsPickOverlap) {
  // Case 2 (Fig 3): estimate is C = A ∩ B.
  FusionEngine engine(kUniverse);
  geo::Rect a = geo::Rect::fromOrigin({10, 10}, 10, 10);
  geo::Rect b = geo::Rect::fromOrigin({15, 15}, 10, 10);
  auto est = engine.infer({input("s1", a, 0.9, 0.01), input("s2", b, 0.9, 0.01)});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, *a.intersection(b));
}

TEST(FusionEngineTest, ConflictMovingRectangleWins) {
  // Case 3 rule 1: "If either of the rectangles is moving with time, then
  // take that reading and discard the other one."
  FusionEngine engine(kUniverse);
  geo::Rect mov = geo::Rect::fromOrigin({10, 10}, 5, 5);
  geo::Rect stat = geo::Rect::fromOrigin({60, 60}, 5, 5);
  // Make the stationary sensor nominally *more* confident: rule 1 must still
  // prefer the moving one.
  auto est = engine.infer(
      {input("badge", mov, 0.7, 0.05, /*moving=*/true), input("desk", stat, 0.99, 0.001)});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, mov);
  ASSERT_EQ(est->discarded.size(), 1u);
  EXPECT_EQ(est->discarded[0].str(), "desk");
}

TEST(FusionEngineTest, ConflictHigherProbabilityWins) {
  // Case 3 rule 2: neither moving — discard the reading with lower
  // single-sensor probability.
  FusionEngine engine(kUniverse);
  geo::Rect a = geo::Rect::fromOrigin({10, 10}, 5, 5);
  geo::Rect b = geo::Rect::fromOrigin({60, 60}, 5, 5);
  FusionInput strong = input("strong", a, 0.99, 0.0001);
  FusionInput weak = input("weak", b, 0.6, 0.1);
  auto est = engine.infer({strong, weak});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, a);
  ASSERT_EQ(est->discarded.size(), 1u);
  EXPECT_EQ(est->discarded[0].str(), "weak");
}

TEST(FusionEngineTest, ThreeWayConflictResolvesToOneRegion) {
  FusionEngine engine(kUniverse);
  FusionInputs ins{
      input("a", geo::Rect::fromOrigin({10, 10}, 5, 5), 0.9, 0.01),
      input("b", geo::Rect::fromOrigin({50, 50}, 5, 5), 0.7, 0.05),
      input("c", geo::Rect::fromOrigin({80, 10}, 5, 5), 0.6, 0.1),
  };
  auto est = engine.infer(ins);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, geo::Rect::fromOrigin({10, 10}, 5, 5));
  EXPECT_EQ(est->discarded.size(), 2u);
}

TEST(FusionEngineTest, ConflictResolutionKeepsAgreeingCluster) {
  // Two overlapping sensors versus one disjoint outlier: the cluster's
  // intersection wins, only the outlier is discarded.
  FusionEngine engine(kUniverse);
  FusionInputs ins{
      input("u1", geo::Rect::fromOrigin({10, 10}, 10, 10), 0.9, 0.01),
      input("u2", geo::Rect::fromOrigin({15, 15}, 10, 10), 0.9, 0.01),
      input("stale", geo::Rect::fromOrigin({70, 70}, 8, 8), 0.8, 0.05),
  };
  auto est = engine.infer(ins);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, geo::Rect::fromOrigin({15, 15}, 5, 5));
  ASSERT_EQ(est->discarded.size(), 1u);
  EXPECT_EQ(est->discarded[0].str(), "stale");
}

TEST(FusionEngineTest, Figure56ScenarioInference) {
  // The paper's worked example: S4 moving, S5 stationary -> "S4 is chosen as
  // the actual location of the person. S5 is removed from the lattice."
  FusionEngine engine(kUniverse);
  FusionInputs ins{
      input("S1", geo::Rect::fromOrigin({0, 10}, 20, 20), 0.8, 0.05),
      input("S2", geo::Rect::fromOrigin({12, 14}, 20, 14), 0.8, 0.05),
      input("S3", geo::Rect::fromOrigin({25, 5}, 25, 25), 0.8, 0.05, /*moving=*/true),
      input("S4", geo::Rect::fromOrigin({30, 8}, 6, 6), 0.8, 0.05, /*moving=*/true),
      input("S5", geo::Rect::fromOrigin({70, 70}, 10, 10), 0.9, 0.01),
  };
  auto est = engine.infer(ins);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, geo::Rect::fromOrigin({30, 8}, 6, 6)) << "S4 chosen";
  EXPECT_TRUE(std::find_if(est->discarded.begin(), est->discarded.end(), [](const auto& id) {
                return id.str() == "S5";
              }) != est->discarded.end())
      << "S5 removed";
}

TEST(FusionEngineTest, RegionQueryAfterConflictResolution) {
  FusionEngine engine(kUniverse);
  geo::Rect roomA = geo::Rect::fromOrigin({8, 8}, 10, 10);
  // q values at the realistic area-scaled magnitude (§6: z ∝ area(A)/area(U)).
  FusionInputs ins{
      input("u1", geo::Rect::fromOrigin({10, 10}, 5, 5), 0.9, 0.0001, true),
      input("stale", geo::Rect::fromOrigin({70, 70}, 8, 8), 0.8, 0.0005),
  };
  double p = engine.probabilityInRegion(roomA, ins);
  EXPECT_GT(p, 0.9) << "stale conflicting reading must not dilute the answer";
}

TEST(FusionEngineTest, DistributionCoversLatticeAndNormalizes) {
  FusionEngine engine(kUniverse);
  FusionInputs ins{
      input("s1", geo::Rect::fromOrigin({10, 10}, 10, 10), 0.9, 0.01),
      input("s2", geo::Rect::fromOrigin({15, 15}, 10, 10), 0.9, 0.01),
  };
  auto dist = engine.distribution(ins);
  EXPECT_EQ(dist.size(), 4u);  // Top, s1, s2, s1∩s2
  int sources = 0;
  for (const auto& rp : dist) {
    EXPECT_GE(rp.probability, 0.0);
    EXPECT_LE(rp.probability, 1.0);
    if (rp.isSource) ++sources;
  }
  EXPECT_EQ(sources, 2);

  auto norm = engine.distribution(ins, /*normalize=*/true);
  // Single minimal region (the overlap) -> its normalized probability is 1.
  double maxProb = 0;
  for (const auto& rp : norm) maxProb = std::max(maxProb, rp.probability);
  EXPECT_NEAR(maxProb, 1.0, 1e-9);
}

TEST(FusionEngineTest, EstimateClassificationUsesSensorPs) {
  FusionEngine engine(kUniverse);
  geo::Rect r = geo::Rect::fromOrigin({10, 10}, 3, 3);
  // One very reliable sensor: estimate probability should exceed its p and
  // classify as VeryHigh.
  auto est = engine.infer({input("ubi", r, 0.95, 0.00001)});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.95);
  EXPECT_EQ(est->cls, ProbabilityClass::VeryHigh);
}

TEST(FusionEngineTest, InputsOutsideUniverseDropped) {
  FusionEngine engine(kUniverse);
  FusionInputs ins{
      input("out", geo::Rect::fromOrigin({500, 500}, 5, 5), 0.9, 0.01),
      input("in", geo::Rect::fromOrigin({10, 10}, 5, 5), 0.8, 0.05),
  };
  auto est = engine.infer(ins);
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, geo::Rect::fromOrigin({10, 10}, 5, 5));
}

TEST(FusionEngineTest, StraddlingInputClippedToUniverse) {
  FusionEngine engine(kUniverse);
  // GPS reading half outside the building.
  auto est = engine.infer({input("gps", geo::Rect::fromOrigin({95, 95}, 10, 10), 0.9, 0.01)});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->region, geo::Rect::fromOrigin({95, 95}, 5, 5));
}

}  // namespace
}  // namespace mw::fusion
