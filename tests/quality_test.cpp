#include <gtest/gtest.h>

#include "quality/error_model.hpp"
#include "quality/tdf.hpp"
#include "util/error.hpp"

namespace mw::quality {
namespace {

using mw::util::Duration;
using mw::util::minutes;
using mw::util::msec;
using mw::util::sec;

// --- error model (§4.1.1) ----------------------------------------------------

TEST(ErrorModelTest, PerfectSensorFullyCarried) {
  // x=1, y=1, z=0: always right.
  auto c = deriveConfidence({1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(c.p, 1.0);
  EXPECT_DOUBLE_EQ(c.q, 0.0);
  EXPECT_TRUE(c.informative());
}

TEST(ErrorModelTest, BiometricAssumptions) {
  // §6.3: fingerprint x=1 (a finger is always "carried"), y=.99, z=.01.
  auto c = deriveConfidence(biometricSpec());
  EXPECT_NEAR(c.p, 0.99, 1e-12);
  EXPECT_NEAR(c.q, 0.01, 1e-12);
}

TEST(ErrorModelTest, CarriedDeviceReducesToYandZ) {
  // With x=1 the formulas collapse: p = y, q = z.
  for (double y : {0.5, 0.75, 0.95}) {
    for (double z : {0.01, 0.1, 0.25}) {
      auto c = deriveConfidence({1.0, y, z});
      EXPECT_NEAR(c.p, y, 1e-12);
      EXPECT_NEAR(c.q, z, 1e-12);
    }
  }
}

TEST(ErrorModelTest, NotCarryingDegradesInformativeness) {
  // Ubisense badge left on the desk: the lower x is, the less informative.
  auto carried = deriveConfidence(ubisenseSpec(1.0));
  auto mostly = deriveConfidence(ubisenseSpec(0.8));
  auto rarely = deriveConfidence(ubisenseSpec(0.2));
  EXPECT_GT(carried.p - carried.q, mostly.p - mostly.q);
  EXPECT_GT(mostly.p - mostly.q, rarely.p - rarely.q);
}

TEST(ErrorModelTest, ResultsAlwaysClampedToUnitInterval) {
  // The paper's q = z + y(1-x) can exceed 1 for small x and large y+z.
  auto c = deriveConfidence({0.0, 0.99, 0.9});
  EXPECT_LE(c.q, 1.0);
  EXPECT_GE(c.p, 0.0);
  EXPECT_LE(c.p, 1.0);
}

TEST(ErrorModelTest, SpecValidationRejectsOutOfRange) {
  EXPECT_THROW(deriveConfidence({-0.1, 0.9, 0.1}), mw::util::ContractError);
  EXPECT_THROW(deriveConfidence({0.5, 1.5, 0.1}), mw::util::ContractError);
  EXPECT_THROW(deriveConfidence({0.5, 0.9, -1}), mw::util::ContractError);
}

TEST(ErrorModelTest, AreaScaledMisidentification) {
  // Ubisense: z = 0.05 * area(A)/area(U) (§6.1).
  EXPECT_DOUBLE_EQ(scaleMisidentifyByArea(0.05, 1.0, 100.0), 0.0005);
  EXPECT_DOUBLE_EQ(scaleMisidentifyByArea(0.05, 100.0, 100.0), 0.05);
  EXPECT_DOUBLE_EQ(scaleMisidentifyByArea(0.5, 1000.0, 100.0), 1.0) << "clamped";
  EXPECT_THROW(scaleMisidentifyByArea(0.05, 1.0, 0.0), mw::util::ContractError);
}

TEST(ErrorModelTest, TechnologyPresetsMatchPaperSection6) {
  EXPECT_DOUBLE_EQ(ubisenseSpec(0.9).detect, 0.95);
  EXPECT_DOUBLE_EQ(ubisenseSpec(0.9).misidentify, 0.05);
  EXPECT_DOUBLE_EQ(rfidBadgeSpec(0.9).detect, 0.75);
  EXPECT_DOUBLE_EQ(rfidBadgeSpec(0.9).misidentify, 0.25);
  EXPECT_DOUBLE_EQ(biometricSpec().carry, 1.0);
  EXPECT_DOUBLE_EQ(gpsSpec(0.7).detect, 0.99);
}

// --- area-scaled refinement (see EXPERIMENTS.md fidelity note) ------------------

TEST(AreaScaledModelTest, ReducesToPaperFormulasAtFullArea) {
  for (double x : {0.5, 0.8, 1.0}) {
    SensorErrorSpec spec{x, 0.9, 0.05};
    auto verbatim = deriveConfidence(spec);
    auto scaled = deriveConfidenceAreaScaled(spec, 1.0);
    EXPECT_NEAR(scaled.q, verbatim.q, 1e-12) << "x=" << x;
  }
}

TEST(AreaScaledModelTest, CarriedDeviceUnaffectedByArea) {
  // With x=1 there is no uncarried-device term: p = y regardless of area.
  for (double f : {0.001, 0.1, 1.0}) {
    auto c = deriveConfidenceAreaScaled({1.0, 0.95, 0.05}, f);
    EXPECT_NEAR(c.p, 0.95, 1e-12);
    EXPECT_NEAR(c.q, 0.05 * f, 1e-12);
  }
}

TEST(AreaScaledModelTest, SmallReadingsStayInformativeWhenNotAlwaysCarried) {
  // The verbatim model makes a 1-ft Ubisense fix useless at x=0.9; the
  // area-scaled model keeps p >> q.
  SensorErrorSpec spec = ubisenseSpec(0.9);
  double f = 1.0 / 5000.0;  // tiny region in a big building
  auto scaled = deriveConfidenceAreaScaled(spec, f);
  EXPECT_TRUE(scaled.informative());
  EXPECT_GT(scaled.p / scaled.q, 100.0);
}

TEST(AreaScaledModelTest, FalsePositiveRateMonotonicInArea) {
  SensorErrorSpec spec = rfidBadgeSpec(0.8);
  double prev = -1;
  for (double f : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    auto c = deriveConfidenceAreaScaled(spec, f);
    EXPECT_GT(c.q, prev) << "bigger regions collect more false positives";
    prev = c.q;
  }
}

TEST(AreaScaledModelTest, Validation) {
  EXPECT_THROW(deriveConfidenceAreaScaled({1, 0.9, 0.1}, -0.1), mw::util::ContractError);
  EXPECT_THROW(deriveConfidenceAreaScaled({1, 0.9, 0.1}, 1.5), mw::util::ContractError);
}

// --- temporal degradation (§3.2) ----------------------------------------------

TEST(TdfTest, NoDegradationIsIdentity) {
  NoDegradation tdf;
  EXPECT_DOUBLE_EQ(tdf.apply(0.93, minutes(60)), 0.93);
}

TEST(TdfTest, LinearReachesZeroAtHorizon) {
  LinearDegradation tdf{minutes(10)};
  EXPECT_DOUBLE_EQ(tdf.apply(0.8, Duration::zero()), 0.8);
  EXPECT_DOUBLE_EQ(tdf.apply(0.8, minutes(5)), 0.4);
  EXPECT_DOUBLE_EQ(tdf.apply(0.8, minutes(10)), 0.0);
  EXPECT_DOUBLE_EQ(tdf.apply(0.8, minutes(20)), 0.0) << "never negative";
}

TEST(TdfTest, ExponentialHalvesEachHalfLife) {
  ExponentialDegradation tdf{sec(30)};
  EXPECT_DOUBLE_EQ(tdf.apply(0.8, Duration::zero()), 0.8);
  EXPECT_NEAR(tdf.apply(0.8, sec(30)), 0.4, 1e-12);
  EXPECT_NEAR(tdf.apply(0.8, sec(60)), 0.2, 1e-12);
}

TEST(TdfTest, StepAppliesLastReachedThreshold) {
  StepDegradation tdf{{{sec(10), 0.8}, {sec(60), 0.5}, {minutes(5), 0.1}}};
  EXPECT_DOUBLE_EQ(tdf.apply(1.0, sec(5)), 1.0);
  EXPECT_DOUBLE_EQ(tdf.apply(1.0, sec(10)), 0.8);
  EXPECT_DOUBLE_EQ(tdf.apply(1.0, sec(59)), 0.8);
  EXPECT_DOUBLE_EQ(tdf.apply(1.0, minutes(2)), 0.5);
  EXPECT_DOUBLE_EQ(tdf.apply(1.0, minutes(30)), 0.1);
}

TEST(TdfTest, StepValidation) {
  EXPECT_THROW(StepDegradation({{sec(10), 0.5}, {sec(10), 0.4}}), mw::util::ContractError)
      << "non-increasing ages";
  EXPECT_THROW(StepDegradation({{sec(10), 0.0}}), mw::util::ContractError) << "factor 0";
  EXPECT_THROW(StepDegradation({{sec(10), 1.5}}), mw::util::ContractError) << "factor > 1";
}

TEST(TdfTest, ConstructorsRejectNonPositiveDurations) {
  EXPECT_THROW(LinearDegradation{Duration::zero()}, mw::util::ContractError);
  EXPECT_THROW(ExponentialDegradation{msec(-5)}, mw::util::ContractError);
}

// Property: every tdf is monotonically non-increasing in age and never
// amplifies confidence.
class TdfMonotonicity : public ::testing::TestWithParam<std::shared_ptr<TemporalDegradation>> {};

TEST_P(TdfMonotonicity, NonIncreasingInAge) {
  const auto& tdf = *GetParam();
  double prev = tdf.apply(0.9, Duration::zero());
  EXPECT_LE(prev, 0.9 + 1e-12);
  for (int s = 1; s <= 600; s += 7) {
    double cur = tdf.apply(0.9, sec(s));
    EXPECT_LE(cur, prev + 1e-12) << "age " << s << "s";
    EXPECT_GE(cur, 0.0);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTdfs, TdfMonotonicity,
    ::testing::Values(std::make_shared<NoDegradation>(),
                      std::make_shared<LinearDegradation>(minutes(5)),
                      std::make_shared<ExponentialDegradation>(sec(45)),
                      std::make_shared<StepDegradation>(std::vector<StepDegradation::Step>{
                          {sec(30), 0.7}, {minutes(2), 0.3}})));

// --- quality profile ----------------------------------------------------------

TEST(QualityProfileTest, TtlExpiryZeroesConfidence) {
  // Card reader: TTL 10 seconds (§5.2).
  QualityProfile profile{std::make_shared<NoDegradation>(), sec(10)};
  EXPECT_DOUBLE_EQ(profile.confidenceAt(0.9, sec(9)), 0.9);
  EXPECT_DOUBLE_EQ(profile.confidenceAt(0.9, sec(10)), 0.9) << "TTL is inclusive";
  EXPECT_DOUBLE_EQ(profile.confidenceAt(0.9, sec(11)), 0.0);
  EXPECT_TRUE(profile.expiredAt(sec(11)));
  EXPECT_FALSE(profile.expiredAt(sec(10)));
}

TEST(QualityProfileTest, CombinesTdfAndTtl) {
  QualityProfile profile{std::make_shared<LinearDegradation>(minutes(10)), minutes(15)};
  EXPECT_DOUBLE_EQ(profile.confidenceAt(1.0, minutes(5)), 0.5);
  EXPECT_DOUBLE_EQ(profile.confidenceAt(1.0, minutes(12)), 0.0) << "tdf floor";
  EXPECT_DOUBLE_EQ(profile.confidenceAt(1.0, minutes(16)), 0.0) << "ttl";
}

}  // namespace
}  // namespace mw::quality
