// Calibrator tests (§6 calibration process, §11 user studies): the (x,y,z)
// spec must be recoverable from simulated trials.
#include <gtest/gtest.h>

#include "quality/calibration.hpp"
#include "util/rng.hpp"

namespace mw::quality {
namespace {

TEST(CalibratorTest, FreshCalibratorIsMaximallyUncertain) {
  Calibrator cal;
  EXPECT_EQ(cal.trialCount(), 0u);
  EXPECT_DOUBLE_EQ(cal.detectEstimate(), 0.5) << "Laplace prior";
  EXPECT_DOUBLE_EQ(cal.misidentifyEstimate(), 0.5);
  EXPECT_DOUBLE_EQ(cal.carryEstimate(), 1.0) << "biometric default";
}

TEST(CalibratorTest, RecoversUbisenseParameters) {
  // Simulate a ground-truthed Ubisense installation: y=0.95, z=0.02, x=0.9.
  util::Rng rng{2024};
  Calibrator cal;
  for (int i = 0; i < 20'000; ++i) {
    bool present = rng.chance(0.5);
    bool reported = present ? rng.chance(0.95) : rng.chance(0.02);
    cal.recordTrial(present, reported);
    cal.recordCarry(rng.chance(0.9));
  }
  auto spec = cal.estimate();
  EXPECT_NEAR(spec.detect, 0.95, 0.01);
  EXPECT_NEAR(spec.misidentify, 0.02, 0.01);
  EXPECT_NEAR(spec.carry, 0.9, 0.01);
  spec.validate();  // estimates are always a valid spec
}

TEST(CalibratorTest, SmoothingPreventsCertainty) {
  Calibrator cal;
  for (int i = 0; i < 50; ++i) cal.recordTrial(true, true);  // perfect run
  EXPECT_LT(cal.detectEstimate(), 1.0);
  EXPECT_GT(cal.detectEstimate(), 0.95);
  for (int i = 0; i < 50; ++i) cal.recordTrial(false, false);
  EXPECT_GT(cal.misidentifyEstimate(), 0.0);
  EXPECT_LT(cal.misidentifyEstimate(), 0.05);
}

TEST(CalibratorTest, CountsTracked) {
  Calibrator cal;
  cal.recordTrial(true, true);
  cal.recordTrial(false, false);
  cal.recordCarry(true);
  EXPECT_EQ(cal.trialCount(), 2u);
  EXPECT_EQ(cal.carryCount(), 1u);
}

TEST(CalibratorTest, EstimatesFeedTheErrorModel) {
  // End to end: calibrate then derive the fusion confidences.
  Calibrator cal;
  for (int i = 0; i < 1000; ++i) {
    cal.recordTrial(true, i % 100 < 75);   // y ≈ 0.75 (the RFID spec)
    cal.recordTrial(false, i % 100 < 25);  // z ≈ 0.25
    cal.recordCarry(i % 10 < 8);           // x ≈ 0.8
  }
  auto pair = deriveConfidenceAreaScaled(cal.estimate(), 0.01);
  EXPECT_TRUE(pair.informative());
}

}  // namespace
}  // namespace mw::quality
