// City generator determinism, the log-linear histogram, the open-loop load
// harness (coordinated-omission self-test) and the population engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "citysim/city.hpp"
#include "citysim/crowd_monitor.hpp"
#include "citysim/histogram.hpp"
#include "citysim/loadgen.hpp"
#include "citysim/population.hpp"
#include "core/location_service.hpp"
#include "util/clock.hpp"

using namespace mw;
using namespace mw::citysim;

namespace {

CityConfig smallCity() {
  CityConfig config;
  config.name = "Test";
  config.rows = 2;
  config.cols = 2;
  config.building.floors = 2;
  config.building.roomsPerSide = 3;
  return config;
}

}  // namespace

TEST(CityGenerator, SameConfigYieldsByteIdenticalFingerprint) {
  const CityBlueprint a = generateCity(smallCity());
  const CityBlueprint b = generateCity(smallCity());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_FALSE(a.fingerprint().empty());
}

TEST(CityGenerator, DifferentConfigChangesFingerprint) {
  CityConfig other = smallCity();
  other.cols = 3;
  EXPECT_NE(generateCity(smallCity()).fingerprint(), generateCity(other).fingerprint());
}

TEST(CityGenerator, LayoutIsCollisionFreeAndConnected) {
  const CityBlueprint city = generateCity(smallCity());
  ASSERT_EQ(city.buildings.size(), 4u);
  // 2 streets + (cols+1) plazas per row.
  ASSERT_EQ(city.outdoors.size(), 2u + 2u * 3u);

  const reasoning::ConnectivityGraph graph = city.connectivity();
  // Room of one building to a room of the diagonally opposite building,
  // through entrance doors, plazas and streets.
  const auto route = graph.route("B0-0-101", "B1-1-251");
  ASSERT_TRUE(route.has_value());
  EXPECT_GT(route->regions.size(), 4u);
  // Outdoor circulation is reachable from inside.
  EXPECT_TRUE(graph.route("B0-0-100", "street-0").has_value());
}

TEST(CityGenerator, PopulatesDatabaseWithFramesInstalled) {
  const CityBlueprint city = generateCity(smallCity());
  util::VirtualClock clock;
  db::SpatialDatabase database(clock, city.universe, city.frames());
  city.populate(database);
  // Rooms + floors + doors + outdoor rows + city passages all landed.
  std::size_t doors = 0;
  for (const CityBuilding& b : city.buildings) doors += b.blueprint.doors.size();
  const std::size_t floors = city.buildings.size() * 2;
  EXPECT_EQ(database.objectCount(), city.roomCount() + floors + doors + city.outdoors.size() +
                                        city.passages.size());
  // A room row is queryable at its city-frame location.
  const sim::BlueprintRoom* room = city.roomNamed("B1-0-102");
  ASSERT_NE(room, nullptr);
  const auto rows = database.objectsContaining(room->rect.center());
  EXPECT_FALSE(rows.empty());
}

TEST(LatencyHistogramTest, ExactBelowSixtyFourAndBoundedErrorAbove) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.valueAtPercentile(100), 63u);
  EXPECT_EQ(h.min(), 0u);

  LatencyHistogram big;
  const std::uint64_t value = 1'000'000;
  big.record(value);
  const std::uint64_t reported = big.valueAtPercentile(99);
  EXPECT_GE(reported, value);  // conservative: never under-states
  EXPECT_LE(static_cast<double>(reported),
            static_cast<double>(value) * (1.0 + 1.0 / 32));  // log-linear precision
}

TEST(LatencyHistogramTest, MergeAndPercentiles) {
  LatencyHistogram a, b;
  for (int i = 1; i <= 900; ++i) a.record(100);
  for (int i = 1; i <= 100; ++i) b.record(100'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.valueAtPercentile(50), 100u);
  EXPECT_GE(a.valueAtPercentile(99), 100'000u * 31 / 32);
  EXPECT_EQ(a.valueAtPercentile(100), a.max());
  EXPECT_NEAR(a.mean(), (900.0 * 100 + 100.0 * 100'000) / 1000, 1.0);
}

// The coordinated-omission self-test: a single 100 ms server stall must
// surface in the corrected (arrival-schedule) percentiles even though only
// one operation was actually slow. A closed-loop or skip-late harness would
// report one slow sample and a clean tail — exactly the lie open-loop
// correction exists to prevent.
TEST(OpenLoopLoadGenTest, ServerStallSurfacesInCorrectedTail) {
  static constexpr double kRate = 400;      // arrivals/s
  static constexpr double kDuration = 0.5;  // s -> 200 arrivals
  static constexpr auto kStall = std::chrono::milliseconds(100);

  OpenLoopLoadGen stalled(kDuration);
  stalled.addClass(OpClassSpec{"stalled", kRate, 1, [](std::uint64_t seq) {
                                 if (seq == 20) std::this_thread::sleep_for(kStall);
                               }});
  const auto stalledResults = stalled.run();
  ASSERT_EQ(stalledResults.size(), 1u);
  const OpClassResult& r = stalledResults[0];
  EXPECT_EQ(r.completed, static_cast<std::uint64_t>(kRate * kDuration));

  // ~40 arrivals queued behind the stall, delays decaying from 100 ms: the
  // p90..p999 corrected tail must show tens of milliseconds.
  EXPECT_GE(r.corrected.valueAtPercentile(99.9), 50'000'000u);
  EXPECT_GE(r.corrected.valueAtPercentile(99), 30'000'000u);
  // The service-time histogram sees one slow call; its p90 stays flat.
  EXPECT_LT(r.service.valueAtPercentile(90), 20'000'000u);

  // Control run without the stall: corrected tail stays near scheduler
  // jitter, far below the stalled run.
  OpenLoopLoadGen control(kDuration);
  control.addClass(OpClassSpec{"control", kRate, 1, [](std::uint64_t) {}});
  const auto controlResults = control.run();
  EXPECT_LT(controlResults[0].corrected.valueAtPercentile(99),
            r.corrected.valueAtPercentile(99) / 2);
}

TEST(OpenLoopLoadGenTest, DrainsBacklogPastDeadlineInsteadOfSkipping) {
  // Every op takes ~4 ms but arrivals come at 1 kHz: the run must still
  // complete EVERY scheduled arrival (no skips = no omission), far past the
  // nominal deadline.
  OpenLoopLoadGen gen(0.1);
  std::atomic<std::uint64_t> executed{0};
  gen.addClass(OpClassSpec{"slow", 1000, 1, [&](std::uint64_t) {
                             executed.fetch_add(1);
                             std::this_thread::sleep_for(std::chrono::milliseconds(4));
                           }});
  const auto results = gen.run();
  EXPECT_EQ(results[0].completed, 100u);
  EXPECT_EQ(executed.load(), 100u);
  // Overload shows up as a monotone-growing corrected tail.
  EXPECT_GT(results[0].corrected.valueAtPercentile(99),
            results[0].service.valueAtPercentile(99));
}

TEST(PopulationTest, DeterministicReplay) {
  const CityBlueprint city = generateCity(smallCity());
  PopulationConfig config;
  config.commuters = 50;
  config.crowd = 30;
  config.vehicles = 20;
  config.staff = 10;

  Population a(city, config);
  Population b(city, config);
  ASSERT_EQ(a.size(), 110u);

  util::TimePoint now{};
  std::vector<db::SensorReading> ra, rb;
  for (int tick = 0; tick < 20; ++tick) {
    now += util::sec(1);
    ra.clear();
    rb.clear();
    a.step(now, util::sec(1), ra);
    b.step(now, util::sec(1), rb);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].mobileObjectId, rb[i].mobileObjectId);
      EXPECT_EQ(ra[i].location, rb[i].location);
      EXPECT_EQ(ra[i].sensorId, rb[i].sensorId);
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positionOf(i), b.positionOf(i));
  }
}

TEST(PopulationTest, ModelsEmitTheirTechnology) {
  const CityBlueprint city = generateCity(smallCity());
  PopulationConfig config;
  config.commuters = 40;
  config.crowd = 40;
  config.vehicles = 40;
  config.staff = 40;
  Population pop(city, config);

  util::TimePoint now{};
  std::vector<db::SensorReading> readings;
  std::size_t uwb = 0, gps = 0, badge = 0;
  for (int tick = 0; tick < 60; ++tick) {
    now += util::sec(1);
    readings.clear();
    pop.step(now, util::sec(1), readings);
    for (const db::SensorReading& r : readings) {
      EXPECT_EQ(r.globPrefix, "Test");
      if (r.sensorType == "Ubisense") {
        ++uwb;
        EXPECT_FALSE(r.symbolicRegion.has_value());
      } else if (r.sensorType == "GPS") {
        ++gps;
        EXPECT_EQ(r.detectionRadius, 15.0);
      } else if (r.sensorType == "CardReader") {
        ++badge;
        // Badge readings are symbolic: the whole room, on entry only.
        EXPECT_TRUE(r.symbolicRegion.has_value());
      } else {
        ADD_FAILURE() << "unexpected sensor type " << r.sensorType;
      }
    }
  }
  EXPECT_GT(uwb, 0u);
  EXPECT_GT(gps, 0u);
  EXPECT_GT(badge, 0u);
  EXPECT_EQ(pop.emitted(), static_cast<std::uint64_t>(uwb + gps + badge));
}

TEST(PopulationTest, EventAnnouncementDrawsCrowd) {
  const CityBlueprint city = generateCity(smallCity());
  PopulationConfig config;
  config.commuters = 0;
  config.crowd = 100;
  config.vehicles = 0;
  config.staff = 0;
  config.walkingSpeed = 10;  // compress the walk so the test converges fast
  Population pop(city, config);

  const OutdoorRegion* venue = pop.size() ? city.outdoorNamed("plaza-0-1") : nullptr;
  ASSERT_NE(venue, nullptr);
  pop.announceEvent(venue->rect);

  util::TimePoint now{};
  std::vector<db::SensorReading> readings;
  for (int tick = 0; tick < 240; ++tick) {
    now += util::sec(1);
    readings.clear();
    pop.step(now, util::sec(1), readings);
  }
  std::size_t atVenue = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    if (venue->rect.inflated(30).contains(pop.positionOf(i))) ++atVenue;
  }
  EXPECT_GT(atVenue, 50u);
}

TEST(CrowdMonitorTest, FlowCountersTrackMembershipChanges) {
  std::vector<WatchedRegion> regions{{"left", geo::Rect::fromOrigin({0, 0}, 10, 10)},
                                     {"right", geo::Rect::fromOrigin({20, 0}, 10, 10)}};
  // Scripted populations: obj-1 moves left -> right between sweeps.
  int sweep = 0;
  CrowdMonitor monitor(
      regions,
      [&](const geo::Rect& rect, double) {
        std::vector<std::pair<util::MobileObjectId, double>> out;
        const bool left = rect.lo().x == 0;
        if ((sweep == 0) == left) out.emplace_back(util::MobileObjectId{"obj-1"}, 0.9);
        return out;
      });
  monitor.sweep();
  sweep = 1;
  monitor.sweep();
  EXPECT_EQ(monitor.population("right"), 1u);
  const auto flows = monitor.topFlows(5);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].from, "left");
  EXPECT_EQ(flows[0].to, "right");
  EXPECT_EQ(flows[0].count, 1u);

  core::DensityNotification alarm;
  alarm.edge = cq::CountEdge::Rose;
  monitor.onDensity(alarm);
  alarm.edge = cq::CountEdge::Fell;
  monitor.onDensity(alarm);
  EXPECT_EQ(monitor.alarmCount(), 1u);
  EXPECT_EQ(monitor.clearCount(), 1u);
}
