// LocationService tests: ingestion, pull queries, push subscriptions,
// privacy granularity and relationship queries (§4).
#include "core/location_service.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

// World: building "SC", one floor (0,0)-(100,50); rooms A (0,0)-(20,20) and
// B (40,0)-(60,20); corridor strip above them.
struct Fixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  Fixture() : db(makeDb(clock)), service(clock, db) {
    service.connectivity().addRegion("roomA", geo::Rect::fromOrigin({0, 0}, 20, 20));
    service.connectivity().addRegion("roomB", geo::Rect::fromOrigin({40, 0}, 20, 20));
    service.connectivity().addRegion("corridor", geo::Rect::fromOrigin({0, 20}, 100, 10));
    service.connectivity().addPassage(
        {"doorA", {{8, 20}, {11, 20}}, reasoning::PassageKind::Free});
    service.connectivity().addPassage(
        {"doorB", {{48, 20}, {51, 20}}, reasoning::PassageKind::Free});
  }

  static db::SpatialDatabase makeDb(const util::Clock& clock) {
    db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
    auto addRegion = [&](const char* id, geo::Rect r, db::ObjectType type) {
      db::SpatialObjectRow row;
      row.id = util::SpatialObjectId{id};
      row.globPrefix = "SC";
      row.objectType = type;
      row.geometryType = db::GeometryType::Polygon;
      row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
      database.addObject(row);
      return row;
    };
    addRegion("roomA", geo::Rect::fromOrigin({0, 0}, 20, 20), db::ObjectType::Room);
    addRegion("roomB", geo::Rect::fromOrigin({40, 0}, 20, 20), db::ObjectType::Room);
    addRegion("corridor", geo::Rect::fromOrigin({0, 20}, 100, 10), db::ObjectType::Corridor);
    // Displays for nearestObjectOfType.
    db::SpatialObjectRow display;
    display.id = util::SpatialObjectId{"displayA"};
    display.globPrefix = "SC";
    display.objectType = db::ObjectType::Display;
    display.geometryType = db::GeometryType::Point;
    display.points = {{5, 19}};
    database.addObject(display);
    db::SpatialObjectRow display2 = display;
    display2.id = util::SpatialObjectId{"displayB"};
    display2.points = {{45, 19}};
    database.addObject(display2);

    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    database.registerSensor(ubi);
    db::SensorMeta ubi2 = ubi;
    ubi2.sensorId = SensorId{"ubi-2"};
    database.registerSensor(ubi2);
    return database;
  }

  db::SensorReading reading(const char* sensor, const char* person, geo::Point2 where,
                            double radius = 0.5) {
    db::SensorReading r;
    r.sensorId = SensorId{sensor};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = radius;
    r.detectionTime = clock.now();
    return r;
  }
};

TEST(LocationServiceTest, UnknownObjectHasNoLocation) {
  Fixture f;
  EXPECT_EQ(f.service.locateObject(MobileObjectId{"ghost"}), std::nullopt);
  EXPECT_EQ(f.service.locateSymbolic(MobileObjectId{"ghost"}), std::nullopt);
}

TEST(LocationServiceTest, LocateAfterIngest) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto est = f.service.locateObject(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->region.contains(geo::Point2{5, 5}));
  EXPECT_GT(est->probability, 0.9);
}

TEST(LocationServiceTest, SymbolicLocationNamesSmallestRegion) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto symbolic = f.service.locateSymbolic(MobileObjectId{"alice"});
  ASSERT_TRUE(symbolic.has_value());
  EXPECT_EQ(symbolic->str(), "SC/roomA");
}

TEST(LocationServiceTest, PrivacyGranularityTruncates) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.setPrivacyGranularity(MobileObjectId{"alice"}, 1);
  auto symbolic = f.service.locateSymbolic(MobileObjectId{"alice"});
  ASSERT_TRUE(symbolic.has_value());
  EXPECT_EQ(symbolic->str(), "SC") << "room withheld, only the building revealed";
  EXPECT_EQ(f.service.privacyGranularity(MobileObjectId{"alice"}), 1u);
  EXPECT_EQ(f.service.privacyGranularity(MobileObjectId{"bob"}), std::nullopt);
  EXPECT_THROW(f.service.setPrivacyGranularity(MobileObjectId{"alice"}, 0),
               mw::util::ContractError);
}

TEST(LocationServiceTest, TwoSensorsReinforce) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  double single = f.service.probabilityInRegion(MobileObjectId{"alice"},
                                                geo::Rect::fromOrigin({0, 0}, 20, 20));
  f.service.ingest(f.reading("ubi-2", "alice", {5.2, 5.2}));
  double both = f.service.probabilityInRegion(MobileObjectId{"alice"},
                                              geo::Rect::fromOrigin({0, 0}, 20, 20));
  EXPECT_GT(both, single);
}

TEST(LocationServiceTest, StaleReadingsExpire) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.clock.advance(sec(60));  // past the 30 s TTL
  EXPECT_EQ(f.service.locateObject(MobileObjectId{"alice"}), std::nullopt);
}

TEST(LocationServiceTest, ObjectsInRegion) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-2", "bob", {45, 5}));
  auto inRoomA =
      f.service.objectsInRegion(geo::Rect::fromOrigin({0, 0}, 20, 20), 0.5);
  ASSERT_EQ(inRoomA.size(), 1u);
  EXPECT_EQ(inRoomA[0].first.str(), "alice");
  EXPECT_GT(inRoomA[0].second, 0.5);
}

TEST(LocationServiceTest, DistributionExposed) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto dist = f.service.distributionFor(MobileObjectId{"alice"});
  EXPECT_GE(dist.size(), 2u);  // Top + the sensor rect
}

TEST(LocationServiceTest, SubscriptionNotifiesOnQualifyingUpdate) {
  Fixture f;
  std::vector<Notification> notes;
  auto id = f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20),
                                 std::nullopt,
                                 0.5,
                                 std::nullopt,
                                 false,
                                 [&](const Notification& n) { notes.push_back(n); }});
  EXPECT_TRUE(id.valid());
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].object.str(), "alice");
  EXPECT_GT(notes[0].probability, 0.5);
  EXPECT_EQ(notes[0].id, id);
  // An update outside the region does not notify.
  f.service.ingest(f.reading("ubi-1", "alice", {80, 40}));
  EXPECT_EQ(notes.size(), 1u);
}

TEST(LocationServiceTest, SubscriptionSubjectFilter) {
  Fixture f;
  int count = 0;
  f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20),
                       MobileObjectId{"alice"},
                       0.5,
                       std::nullopt,
                       false,
                       [&](const Notification&) { ++count; }});
  f.service.ingest(f.reading("ubi-1", "bob", {5, 5}));
  EXPECT_EQ(count, 0);
  f.service.ingest(f.reading("ubi-2", "alice", {5, 5}));
  EXPECT_EQ(count, 1);
}

TEST(LocationServiceTest, SubscriptionThresholdSuppressesWeakEvidence) {
  Fixture f;
  int count = 0;
  f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20),
                       std::nullopt,
                       0.999999,  // nothing is this certain
                       std::nullopt,
                       false,
                       [&](const Notification&) { ++count; }});
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  EXPECT_EQ(count, 0);
}

TEST(LocationServiceTest, SubscriptionMinClassFilter) {
  // §4.4: "Applications can, thus, choose to be notified if the location of
  // the person is known with low, medium, high or very high probability."
  Fixture f;
  int veryHigh = 0, low = 0;
  f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.0,
                       fusion::ProbabilityClass::VeryHigh, false,
                       [&](const Notification&) { ++veryHigh; }});
  f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.0,
                       fusion::ProbabilityClass::Low, false,
                       [&](const Notification&) { ++low; }});
  // A precise Ubisense fix: probability exceeds the sensor's own p, which
  // classifies as VeryHigh — both subscriptions fire.
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  EXPECT_EQ(veryHigh, 1);
  EXPECT_EQ(low, 1);
  // A huge, vague reading: probability classifies below VeryHigh — only the
  // Low subscription fires.
  f.service.ingest(f.reading("ubi-2", "bob", {10, 10}, /*radius=*/40));
  EXPECT_EQ(veryHigh, 1);
  EXPECT_EQ(low, 2);
}

TEST(LocationServiceTest, EdgeTriggeredSubscription) {
  Fixture f;
  int count = 0;
  f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20),
                       std::nullopt,
                       0.5,
                       std::nullopt,
                       /*onlyOnEntry=*/true,
                       [&](const Notification&) { ++count; }});
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.clock.advance(sec(1));
  f.service.ingest(f.reading("ubi-1", "alice", {6, 5}));
  EXPECT_EQ(count, 1) << "second qualifying update suppressed (still inside)";
  // Leave and re-enter.
  f.clock.advance(sec(1));
  f.service.ingest(f.reading("ubi-1", "alice", {80, 40}));
  f.clock.advance(sec(1));
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  EXPECT_EQ(count, 2) << "re-entry notifies again";
}

TEST(LocationServiceTest, Unsubscribe) {
  Fixture f;
  int count = 0;
  auto id = f.service.subscribe({geo::Rect::fromOrigin({0, 0}, 20, 20),
                                 std::nullopt,
                                 0.5,
                                 std::nullopt,
                                 false,
                                 [&](const Notification&) { ++count; }});
  EXPECT_TRUE(f.service.unsubscribe(id));
  EXPECT_FALSE(f.service.unsubscribe(id));
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(f.service.subscriptionCount(), 0u);
}

TEST(LocationServiceTest, SubscriptionValidation) {
  Fixture f;
  EXPECT_THROW(f.service.subscribe({geo::Rect{}, std::nullopt, 0.5, std::nullopt, false,
                                    [](const Notification&) {}}),
               mw::util::ContractError);
  EXPECT_THROW(f.service.subscribe(
                   {geo::Rect::fromOrigin({0, 0}, 1, 1), std::nullopt, 0.5, std::nullopt,
                    false, nullptr}),
               mw::util::ContractError);
}

TEST(LocationServiceTest, ProximityAndCoLocation) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-2", "bob", {6, 5}));
  EXPECT_GT(f.service.proximity(MobileObjectId{"alice"}, MobileObjectId{"bob"}, 5.0), 0.8);
  EXPECT_GT(f.service.coLocation(MobileObjectId{"alice"}, MobileObjectId{"bob"}), 0.8)
      << "both in roomA";
  EXPECT_DOUBLE_EQ(f.service.proximity(MobileObjectId{"alice"}, MobileObjectId{"ghost"}, 5.0),
                   0.0);
}

TEST(LocationServiceTest, CoLocationAtGranularity) {
  // §4.6.3: co-location "of a specified granularity such as room, floor or
  // building". alice in roomA, bob in roomB: not room-co-located, but
  // building-co-located.
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-2", "bob", {45, 5}));
  // Name the building so granularity 0 resolves to it.
  f.service.defineRegion("SC", geo::Rect::fromOrigin({0, 0}, 100, 50));
  double roomLevel =
      f.service.coLocationAt(MobileObjectId{"alice"}, MobileObjectId{"bob"}, 1);
  double buildingLevel =
      f.service.coLocationAt(MobileObjectId{"alice"}, MobileObjectId{"bob"}, 0);
  EXPECT_LT(roomLevel, 0.01) << "different rooms";
  EXPECT_GT(buildingLevel, 0.8) << "same building";
  EXPECT_DOUBLE_EQ(
      f.service.coLocationAt(MobileObjectId{"alice"}, MobileObjectId{"ghost"}, 0), 0.0);
}

TEST(LocationServiceTest, DistanceQueries) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-2", "bob", {45, 5}));
  auto d = f.service.distanceBetween(MobileObjectId{"alice"}, MobileObjectId{"bob"});
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(d->expected, 40.0, 0.5);
  auto pd = f.service.pathDistanceBetween(MobileObjectId{"alice"}, MobileObjectId{"bob"});
  ASSERT_TRUE(pd.has_value());
  EXPECT_GT(*pd, d->expected) << "walking through the corridor is longer";
  EXPECT_EQ(f.service.distanceBetween(MobileObjectId{"alice"}, MobileObjectId{"ghost"}),
            std::nullopt);
}

TEST(LocationServiceTest, NearestDisplayForFollowMe) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  auto display = f.service.nearestObjectOfType(MobileObjectId{"alice"}, db::ObjectType::Display);
  ASSERT_TRUE(display.has_value());
  EXPECT_EQ(display->id.str(), "displayA");
}

}  // namespace
}  // namespace mw::core
