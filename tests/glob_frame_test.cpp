#include "glob/frame.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "util/error.hpp"

namespace mw::glob {
namespace {

using mw::util::ContractError;
using mw::util::NotFoundError;

FrameTree buildingTree() {
  // Building SC; floor 3 offset by (0, 0); room 3216 at (45, 12) on floor 3.
  FrameTree tree;
  tree.addRoot("SC");
  tree.addFrame("SC/3", "SC", Transform2{{0, 0}, 0});
  tree.addFrame("SC/3/3216", "SC/3", Transform2{{45, 12}, 0});
  tree.addFrame("SC/3/3105", "SC/3", Transform2{{330, 0}, 0});
  return tree;
}

TEST(Transform2Test, IdentityByDefault) {
  Transform2 t;
  EXPECT_EQ(t.apply({3, 4}), (geo::Point2{3, 4}));
  EXPECT_EQ(t.invert({3, 4}), (geo::Point2{3, 4}));
}

TEST(Transform2Test, TranslationRoundTrip) {
  Transform2 t{{10, -5}, 0};
  geo::Point2 p{1, 2};
  EXPECT_EQ(t.apply(p), (geo::Point2{11, -3}));
  EXPECT_EQ(t.invert(t.apply(p)), p);
}

TEST(Transform2Test, RotationBy90) {
  Transform2 t{{0, 0}, std::numbers::pi / 2};
  geo::Point2 q = t.apply({1, 0});
  EXPECT_NEAR(q.x, 0, 1e-12);
  EXPECT_NEAR(q.y, 1, 1e-12);
}

TEST(Transform2Test, CompositionMatchesSequentialApplication) {
  Transform2 a{{3, 4}, 0.3};
  Transform2 b{{-1, 2}, 1.1};
  geo::Point2 p{5, 6};
  geo::Point2 viaCompose = (a * b).apply(p);
  geo::Point2 viaSeq = a.apply(b.apply(p));
  EXPECT_NEAR(viaCompose.x, viaSeq.x, 1e-12);
  EXPECT_NEAR(viaCompose.y, viaSeq.y, 1e-12);
}

TEST(FrameTreeTest, RootRegistration) {
  FrameTree tree;
  tree.addRoot("SC");
  EXPECT_TRUE(tree.has("SC"));
  EXPECT_EQ(tree.rootName(), "SC");
  EXPECT_EQ(tree.parentOf("SC"), std::nullopt);
  EXPECT_THROW(tree.addRoot("other"), ContractError);
}

TEST(FrameTreeTest, UnknownFrameThrows) {
  FrameTree tree;
  tree.addRoot("SC");
  EXPECT_THROW(tree.addFrame("SC/9/100", "SC/9", Transform2{}), NotFoundError);
  EXPECT_THROW((void)tree.toRoot("nope", {0, 0}), NotFoundError);
  EXPECT_THROW((void)tree.parentOf("nope"), NotFoundError);
}

TEST(FrameTreeTest, DuplicateFrameThrows) {
  FrameTree tree = buildingTree();
  EXPECT_THROW(tree.addFrame("SC/3", "SC", Transform2{}), ContractError);
}

TEST(FrameTreeTest, RoomToBuildingConversion) {
  FrameTree tree = buildingTree();
  // The paper's example: lightswitch1 at (12,3) in room 3216's frame; room
  // origin is (45,12) on floor 3, floor aligned with the building.
  geo::Point2 inBuilding = tree.toRoot("SC/3/3216", {12, 3});
  EXPECT_EQ(inBuilding, (geo::Point2{57, 15}));
  EXPECT_EQ(tree.fromRoot("SC/3/3216", inBuilding), (geo::Point2{12, 3}));
}

TEST(FrameTreeTest, RoomToRoomConversion) {
  FrameTree tree = buildingTree();
  geo::Point2 in3105 = tree.convert("SC/3/3216", "SC/3/3105", {12, 3});
  // (12,3) in 3216 == (57,15) on floor == (57-330, 15-0) in 3105.
  EXPECT_EQ(in3105, (geo::Point2{-273, 15}));
  // Round trip back.
  EXPECT_EQ(tree.convert("SC/3/3105", "SC/3/3216", in3105), (geo::Point2{12, 3}));
}

TEST(FrameTreeTest, SameFrameConversionIsIdentity) {
  FrameTree tree = buildingTree();
  geo::Point2 p{4, 4};
  EXPECT_EQ(tree.convert("SC/3", "SC/3", p), p);
}

TEST(FrameTreeTest, ConvertRectTranslationExact) {
  FrameTree tree = buildingTree();
  geo::Rect local = geo::Rect::fromOrigin({0, 0}, 20, 28);  // room 3216 outline
  geo::Rect inFloor = tree.convertRect("SC/3/3216", "SC/3", local);
  EXPECT_EQ(inFloor, geo::Rect::fromOrigin({45, 12}, 20, 28));
}

TEST(FrameTreeTest, ConvertRectUnderRotationIsMbr) {
  FrameTree tree;
  tree.addRoot("U");
  tree.addFrame("U/rot", "U", Transform2{{0, 0}, std::numbers::pi / 4});
  geo::Rect unit = geo::Rect::fromOrigin({0, 0}, 1, 1);
  geo::Rect mbr = tree.convertRect("U/rot", "U", unit);
  // Rotating the unit square by 45° gives an MBR of sqrt(2) x sqrt(2).
  EXPECT_NEAR(mbr.width(), std::numbers::sqrt2, 1e-9);
  EXPECT_NEAR(mbr.height(), std::numbers::sqrt2, 1e-9);
  EXPECT_GE(mbr.area(), unit.area()) << "MBR over-approximates (§4.1.2)";
}

TEST(FrameTreeTest, ConvertPolygonPreservesArea) {
  FrameTree tree;
  tree.addRoot("U");
  tree.addFrame("U/rot", "U", Transform2{{5, 7}, 0.7});
  geo::Polygon tri{{0, 0}, {4, 0}, {0, 3}};
  geo::Polygon out = tree.convertPolygon("U/rot", "U", tri);
  EXPECT_NEAR(out.area(), tri.area(), 1e-9) << "rigid transforms preserve area";
}

TEST(FrameTreeTest, ConvertEmptyRect) {
  FrameTree tree = buildingTree();
  EXPECT_TRUE(tree.convertRect("SC/3", "SC", geo::Rect{}).empty());
}

TEST(FrameTreeTest, DeepHierarchy) {
  FrameTree tree;
  tree.addRoot("campus");
  tree.addFrame("b", "campus", Transform2{{100, 0}, 0});
  tree.addFrame("b/f", "b", Transform2{{0, 50}, 0});
  tree.addFrame("b/f/r", "b/f", Transform2{{10, 10}, 0});
  tree.addFrame("b/f/r/desk", "b/f/r", Transform2{{1, 1}, 0});
  EXPECT_EQ(tree.toRoot("b/f/r/desk", {0, 0}), (geo::Point2{111, 61}));
  EXPECT_EQ(tree.size(), 5u);
}

}  // namespace
}  // namespace mw::glob
