#include "reasoning/datalog.hpp"

#include <gtest/gtest.h>

#include "reasoning/spatial_rules.hpp"
#include "util/error.hpp"

namespace mw::reasoning {
namespace {

Term v(const char* name) { return Term::var(name); }
Term c(const char* value) { return Term::atom(value); }

TEST(DatalogTest, GroundFactsAndQueries) {
  Datalog db;
  db.addFact("room", {"3105"});
  db.addFact("room", {"3216"});
  db.addFact("corridor", {"hall3"});
  EXPECT_EQ(db.factCount(), 3u);
  EXPECT_TRUE(db.holds({"room", {c("3105")}}));
  EXPECT_FALSE(db.holds({"room", {c("hall3")}}));
  auto rooms = db.query({"room", {v("X")}});
  EXPECT_EQ(rooms.size(), 2u);
}

TEST(DatalogTest, DuplicateFactsCollapse) {
  Datalog db;
  db.addFact("p", {"a"});
  db.addFact("p", {"a"});
  EXPECT_EQ(db.factCount(), 1u);
}

TEST(DatalogTest, NonGroundFactThrows) {
  Datalog db;
  EXPECT_THROW(db.addFact({"p", {v("X")}}), mw::util::ContractError);
}

TEST(DatalogTest, RangeRestrictionEnforced) {
  Datalog db;
  // head variable Y never bound in body.
  EXPECT_THROW(db.addRule(Rule{{"q", {v("Y")}}, {{"p", {v("X")}}}}), mw::util::ContractError);
  EXPECT_THROW(db.addRule(Rule{{"q", {c("a")}}, {}}), mw::util::ContractError) << "empty body";
}

TEST(DatalogTest, SimpleRuleDerivation) {
  Datalog db;
  db.addFact("parent", {"alice", "bob"});
  db.addRule(Rule{{"child", {v("Y"), v("X")}}, {{"parent", {v("X"), v("Y")}}}});
  EXPECT_TRUE(db.holds({"child", {c("bob"), c("alice")}}));
}

TEST(DatalogTest, TransitiveClosure) {
  Datalog db;
  db.addFact("edge", {"a", "b"});
  db.addFact("edge", {"b", "c"});
  db.addFact("edge", {"c", "d"});
  db.addRule(Rule{{"path", {v("X"), v("Y")}}, {{"edge", {v("X"), v("Y")}}}});
  db.addRule(Rule{{"path", {v("X"), v("Y")}},
                  {{"edge", {v("X"), v("Z")}}, {"path", {v("Z"), v("Y")}}}});
  EXPECT_TRUE(db.holds({"path", {c("a"), c("d")}}));
  EXPECT_FALSE(db.holds({"path", {c("d"), c("a")}}));
  auto fromA = db.query({"path", {c("a"), v("Y")}});
  EXPECT_EQ(fromA.size(), 3u);
}

TEST(DatalogTest, JoinSharedVariable) {
  Datalog db;
  db.addFact("in", {"tom", "3105"});
  db.addFact("in", {"ann", "3105"});
  db.addFact("in", {"bob", "3216"});
  db.addRule(Rule{{"together", {v("A"), v("B")}},
                  {{"in", {v("A"), v("R")}}, {"in", {v("B"), v("R")}}}});
  EXPECT_TRUE(db.holds({"together", {c("tom"), c("ann")}}));
  EXPECT_FALSE(db.holds({"together", {c("tom"), c("bob")}}));
}

TEST(DatalogTest, IncrementalFactsAfterSaturation) {
  Datalog db;
  db.addRule(Rule{{"q", {v("X")}}, {{"p", {v("X")}}}});
  db.addFact("p", {"a"});
  EXPECT_TRUE(db.holds({"q", {c("a")}}));
  db.addFact("p", {"b"});  // must re-saturate lazily
  EXPECT_TRUE(db.holds({"q", {c("b")}}));
}

TEST(DatalogTest, ConstantsInRuleHeadAndBody) {
  Datalog db;
  db.addFact("swiped", {"alice", "3105"});
  db.addFact("swiped", {"bob", "vault"});
  // Anyone who swiped into the vault gets flagged, with a constant head arg.
  db.addRule(Rule{{"alert", {v("Who"), c("vault-entry")}},
                  {{"swiped", {v("Who"), c("vault")}}}});
  EXPECT_TRUE(db.holds({"alert", {c("bob"), c("vault-entry")}}));
  EXPECT_FALSE(db.holds({"alert", {c("alice"), v("X")}}));
}

TEST(DatalogTest, MultipleRulesForTheSameHead) {
  Datalog db;
  db.addFact("door", {"a", "b"});
  db.addFact("stair", {"b", "c"});
  db.addRule(Rule{{"linked", {v("X"), v("Y")}}, {{"door", {v("X"), v("Y")}}}});
  db.addRule(Rule{{"linked", {v("X"), v("Y")}}, {{"stair", {v("X"), v("Y")}}}});
  EXPECT_TRUE(db.holds({"linked", {c("a"), c("b")}}));
  EXPECT_TRUE(db.holds({"linked", {c("b"), c("c")}}));
  EXPECT_EQ(db.query({"linked", {v("X"), v("Y")}}).size(), 2u);
}

TEST(DatalogTest, RepeatedVariableInPattern) {
  Datalog db;
  db.addFact("pair", {"x", "x"});
  db.addFact("pair", {"x", "y"});
  // A repeated variable must bind to the same constant.
  EXPECT_EQ(db.query({"pair", {v("A"), v("A")}}).size(), 1u);
}

TEST(DatalogTest, QueryBindingsContainVariableAssignments) {
  Datalog db;
  db.addFact("edge", {"a", "b"});
  auto results = db.query({"edge", {v("From"), v("To")}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("From"), "a");
  EXPECT_EQ(results[0].at("To"), "b");
}

// --- spatial rules bridge ------------------------------------------------------

TEST(SpatialRulesTest, ReachabilityThroughFreeDoors) {
  // roomA - corridor - roomB (free doors); vault off corridor (locked).
  std::vector<NamedRegion> regions{
      {"roomA", geo::Rect::fromOrigin({0, 0}, 4, 4)},
      {"roomB", geo::Rect::fromOrigin({8, 0}, 4, 4)},
      {"corridor", geo::Rect::fromOrigin({0, 4}, 12, 2)},
      {"vault", geo::Rect::fromOrigin({0, 6}, 4, 4)},
  };
  std::vector<Passage> passages{
      {"doorA", {{1, 4}, {2, 4}}, PassageKind::Free},
      {"doorB", {{9, 4}, {10, 4}}, PassageKind::Free},
      {"vaultDoor", {{1, 6}, {2, 6}}, PassageKind::Restricted},
  };
  Datalog db;
  assertSpatialFacts(db, regions, passages);
  installReachabilityRules(db);

  EXPECT_TRUE(db.holds({"ecfp", {c("roomA"), c("corridor")}}));
  EXPECT_TRUE(db.holds({"ecrp", {c("vault"), c("corridor")}}));
  EXPECT_TRUE(db.holds({"reachable", {c("roomA"), c("roomB")}}))
      << "transitively reachable through the corridor";
  EXPECT_FALSE(db.holds({"reachable", {c("roomA"), c("vault")}}))
      << "vault needs a key: not freely reachable";
  EXPECT_TRUE(db.holds({"accessible", {c("roomA"), c("vault")}}))
      << "but accessible when restricted passages may be used";
}

TEST(SpatialRulesTest, Rcc8FactsAsserted) {
  std::vector<NamedRegion> regions{
      {"floor", geo::Rect::fromOrigin({0, 0}, 100, 100)},
      {"room", geo::Rect::fromOrigin({10, 10}, 5, 5)},
  };
  Datalog db;
  assertSpatialFacts(db, regions, {});
  EXPECT_TRUE(db.holds({"ntpp", {c("room"), c("floor")}}));
  EXPECT_TRUE(db.holds({"ntppi", {c("floor"), c("room")}}));
}

}  // namespace
}  // namespace mw::reasoning
