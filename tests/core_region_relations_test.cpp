// Service-level region-to-region relations (§4.6.1): RCC-8, EC refinement
// through database Door rows, and Datalog reachability.
#include <gtest/gtest.h>

#include "core/location_service.hpp"
#include "sim/blueprint.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::VirtualClock;

struct Fixture {
  VirtualClock clock;
  sim::Blueprint bp;
  db::SpatialDatabase db;
  LocationService service;

  Fixture()
      : bp(sim::paperFloor()), db(clock, bp.universe, bp.frames()), service(clock, db) {
    bp.populate(db);
  }
};

TEST(RegionRelationsTest, Rcc8BetweenPaperRooms) {
  Fixture f;
  EXPECT_EQ(f.service.regionRelation("CS/1/3105", "CS/1/NetLab"), reasoning::Rcc8::DC)
      << "3105 ends at x=350, NetLab starts at 360";
  EXPECT_EQ(f.service.regionRelation("CS/1/NetLab", "CS/1/HCILab"), reasoning::Rcc8::EC);
  EXPECT_EQ(f.service.regionRelation("CS/1/3105", "CS/1/LabCorridor"), reasoning::Rcc8::EC);
  EXPECT_EQ(f.service.regionRelation("CS/1/3105", "CS/1"), reasoning::Rcc8::TPP)
      << "the room touches the floor's boundary (y=0)";
  EXPECT_EQ(f.service.regionRelation("CS/1", "CS/1/3105"), reasoning::Rcc8::TPPi);
}

TEST(RegionRelationsTest, UnknownRegionThrows) {
  Fixture f;
  EXPECT_THROW((void)f.service.regionRelation("CS/1/3105", "CS/1/Atlantis"),
               mw::util::NotFoundError);
}

TEST(RegionRelationsTest, PassageClassification) {
  Fixture f;
  // 3105 <-> LabCorridor share a wall with a free door.
  EXPECT_EQ(f.service.passageRelation("CS/1/3105", "CS/1/LabCorridor"),
            reasoning::EcKind::ECFP);
  // NetLab <-> HCILab have only the restricted door.
  EXPECT_EQ(f.service.passageRelation("CS/1/NetLab", "CS/1/HCILab"),
            reasoning::EcKind::ECRP);
  // LabCorridor <-> NetLab: EC via... LabCorridor is at x[310,330], NetLab at
  // x[360,380]: disjoint, so NotEc.
  EXPECT_EQ(f.service.passageRelation("CS/1/LabCorridor", "CS/1/NetLab"),
            reasoning::EcKind::NotEc);
}

TEST(RegionRelationsTest, DoorPassagesFromDatabase) {
  Fixture f;
  auto passages = f.service.doorPassages();
  EXPECT_EQ(passages.size(), f.bp.doors.size());
  bool sawRestricted = false;
  for (const auto& p : passages) {
    if (p.kind == reasoning::PassageKind::Restricted) sawRestricted = true;
  }
  EXPECT_TRUE(sawRestricted) << "the NetLab-HCILab door is restricted";
}

TEST(RegionRelationsTest, ReachabilityThroughDatalog) {
  Fixture f;
  // 3105 -> NetLab: via the hallway, free doors all the way.
  EXPECT_TRUE(f.service.regionsReachable("CS/1/3105", "CS/1/NetLab"));
  // Reflexive by convention.
  EXPECT_TRUE(f.service.regionsReachable("CS/1/3105", "CS/1/3105"));
  // HCILab is reachable via its own free hallway door too.
  EXPECT_TRUE(f.service.regionsReachable("CS/1/3105", "CS/1/HCILab"));
  // An app-defined island region with no doors is unreachable.
  f.service.defineRegion("CS/1/island", geo::Rect::fromOrigin({450, 60}, 10, 10));
  EXPECT_FALSE(f.service.regionsReachable("CS/1/3105", "CS/1/island"));
  EXPECT_FALSE(f.service.regionsReachable("CS/1/3105", "CS/1/island", true));
}

TEST(RegionRelationsTest, RestrictedOnlyPathNeedsAllowRestricted) {
  // Build a minimal world where the only way into a vault is a locked door.
  VirtualClock clock;
  db::SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "B");
  LocationService service(clock, db);

  auto addRoom = [&](const char* id, geo::Rect r) {
    db::SpatialObjectRow row;
    row.id = util::SpatialObjectId{id};
    row.globPrefix = "B";
    row.objectType = db::ObjectType::Room;
    row.geometryType = db::GeometryType::Polygon;
    row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
    db.addObject(row);
  };
  addRoom("lobby", geo::Rect::fromOrigin({0, 0}, 20, 20));
  addRoom("vault", geo::Rect::fromOrigin({20, 0}, 20, 20));
  db::SpatialObjectRow door;
  door.id = util::SpatialObjectId{"vaultDoor"};
  door.globPrefix = "B";
  door.objectType = db::ObjectType::Door;
  door.geometryType = db::GeometryType::Line;
  door.points = {{20, 8}, {20, 12}};
  door.properties["passage"] = "restricted";
  db.addObject(door);

  EXPECT_FALSE(service.regionsReachable("B/lobby", "B/vault"));
  EXPECT_TRUE(service.regionsReachable("B/lobby", "B/vault", /*allowRestricted=*/true));
}

}  // namespace
}  // namespace mw::core
