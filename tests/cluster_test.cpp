// Cluster tests: N LocationService shard processes behind the registry,
// fronted by the ClusterLocationService router. The load-bearing property is
// oracle equivalence — a sharded cluster answers byte-for-byte like one
// single-process service fed the same readings — plus graceful degradation
// when a shard dies.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_location_service.hpp"
#include "cluster/shard_host.hpp"
#include "cluster/shard_map.hpp"
#include "core/codec.hpp"
#include "core/middlewhere.hpp"
#include "core/remote_registry.hpp"
#include "util/error.hpp"

namespace mw::cluster {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

geo::Rect universe() { return geo::Rect::fromOrigin({0, 0}, 100, 50); }

/// The shared world every shard AND the oracle must agree on: one room, one
/// calibrated Ubisense sensor. Identical configuration is what makes fused
/// answers comparable across deployments.
void configureWorld(core::Middlewhere& mw) {
  db::SpatialObjectRow room;
  room.id = util::SpatialObjectId{"roomA"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  mw.database().addObject(room);

  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  mw.database().registerSensor(ubi);
}

db::SensorReading makeReading(const util::Clock& clock, geo::Point2 where,
                              const std::string& object) {
  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{object};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

/// Tight-but-not-hair-trigger failure knobs so degraded-mode tests converge
/// in milliseconds instead of the production seconds.
RetryPolicy fastRetry() {
  RetryPolicy p;
  p.callDeadline = util::sec(2);
  p.maxRetries = 1;
  p.backoffBase = util::msec(2);
  p.backoffMax = util::msec(10);
  p.downAfterFailures = 2;
  p.probeInterval = util::msec(30);
  return p;
}

util::Bytes estimateBytes(const fusion::LocationEstimate& est) {
  util::ByteWriter w;
  core::encodeEstimate(w, est);
  return w.bytes();
}

// --- shard map unit tests -------------------------------------------------------

TEST(ShardMapTest, ShardNameRoundTrip) {
  EXPECT_EQ(shardName(0, 1), "location.shard.0/1");
  EXPECT_EQ(shardName(3, 8), "location.shard.3/8");
  auto parsed = parseShardName("location.shard.3/8");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->index, 3u);
  EXPECT_EQ(parsed->total, 8u);
  for (std::size_t total : {1u, 2u, 5u}) {
    for (std::size_t i = 0; i < total; ++i) {
      auto back = parseShardName(shardName(i, total));
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(back->index, i);
      EXPECT_EQ(back->total, total);
    }
  }
}

TEST(ShardMapTest, ParseRejectsMalformedNames) {
  EXPECT_EQ(parseShardName(""), std::nullopt);
  EXPECT_EQ(parseShardName("LocationService"), std::nullopt);
  EXPECT_EQ(parseShardName("location.shard."), std::nullopt);
  EXPECT_EQ(parseShardName("location.shard.1"), std::nullopt) << "no /total";
  EXPECT_EQ(parseShardName("location.shard./4"), std::nullopt);
  EXPECT_EQ(parseShardName("location.shard.x/4"), std::nullopt);
  EXPECT_EQ(parseShardName("location.shard.1/x"), std::nullopt);
  EXPECT_EQ(parseShardName("location.shard.4/4"), std::nullopt) << "index >= total";
  EXPECT_EQ(parseShardName("location.shard.0/0"), std::nullopt) << "empty cluster";
  EXPECT_EQ(parseShardName("location.shard.1/4trailing"), std::nullopt);
}

TEST(ShardMapTest, ShardForObjectIsDeterministicInRangeAndSpreads) {
  const std::size_t total = 4;
  std::set<std::size_t> hit;
  for (int i = 0; i < 200; ++i) {
    MobileObjectId object{"user-" + std::to_string(i)};
    const std::size_t shard = shardForObject(object, total);
    EXPECT_LT(shard, total);
    EXPECT_EQ(shard, shardForObject(object, total)) << "same object, same shard";
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), total) << "200 objects should land on every shard of 4";
  EXPECT_EQ(shardForObject(MobileObjectId{"anyone"}, 1), 0u);
}

TEST(ShardMapTest, ResolveFromRegistry) {
  core::RegistryServer registry;
  core::RegistryClient client("127.0.0.1", registry.port());

  auto empty = resolveShardMap(client);
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(empty.announcedCount(), 0u);

  client.announce(shardName(1, 2), {"127.0.0.1", 7001});
  auto partial = resolveShardMap(client);
  EXPECT_EQ(partial.total, 2u);
  EXPECT_EQ(partial.announcedCount(), 1u);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.endpoints[0], std::nullopt);
  ASSERT_TRUE(partial.endpoints[1].has_value());
  EXPECT_EQ(partial.endpoints[1]->port, 7001);

  client.announce(shardName(0, 2), {"127.0.0.1", 7000});
  client.announce("LocationService", {"127.0.0.1", 9999});  // non-shard noise
  auto full = resolveShardMap(client);
  EXPECT_TRUE(full.complete());
  EXPECT_EQ(full.endpoints[0]->port, 7000);

  // Two clusters of different widths in one registry is a deployment error.
  client.announce(shardName(2, 3), {"127.0.0.1", 7002});
  EXPECT_THROW(resolveShardMap(client), util::ContractError);
}

// --- consistent-hash ring unit tests --------------------------------------------

TEST(HashRingTest, RingMemberNamesRoundTripAndExcludeStandbys) {
  EXPECT_EQ(ringMemberName("alpha"), "location.ring.alpha");
  EXPECT_EQ(parseRingMemberName("location.ring.alpha"), "alpha");
  EXPECT_EQ(parseRingMemberName("location.ring."), std::nullopt);
  EXPECT_EQ(parseRingMemberName("location.shard.0/1"), std::nullopt);
  EXPECT_EQ(parseRingMemberName("LocationService"), std::nullopt);
  EXPECT_EQ(parseRingMemberName("location.ring.alpha.backup"), std::nullopt)
      << "a standby announcement is not a ring member";
  EXPECT_EQ(parseRingMemberName("location.ring..backup"), std::nullopt);
}

TEST(HashRingTest, ArcContainsIsHalfOpenAndWraps) {
  const RingArc plain{10, 20};
  EXPECT_FALSE(plain.contains(10)) << "lo is exclusive";
  EXPECT_TRUE(plain.contains(11));
  EXPECT_TRUE(plain.contains(20)) << "hi is inclusive";
  EXPECT_FALSE(plain.contains(21));

  const std::uint64_t top = ~std::uint64_t{0};
  const RingArc wrap{top - 5, 5};
  EXPECT_FALSE(wrap.contains(top - 5));
  EXPECT_TRUE(wrap.contains(top));
  EXPECT_TRUE(wrap.contains(0)) << "wraps through zero";
  EXPECT_TRUE(wrap.contains(5));
  EXPECT_FALSE(wrap.contains(6));

  const RingArc full{7, 7};
  EXPECT_TRUE(full.contains(0)) << "lo == hi is the full circle";
  EXPECT_TRUE(full.contains(7));
  EXPECT_TRUE(full.contains(top));
}

TEST(HashRingTest, OwnershipIsDeterministicAcrossJoinOrderAndSpreads) {
  const HashRing ring({"alpha", "beta", "gamma"});
  const HashRing reordered({"gamma", "alpha", "beta", "beta"});  // dup collapses
  std::set<std::string> hit;
  for (int i = 0; i < 300; ++i) {
    MobileObjectId object{"user-" + std::to_string(i)};
    const std::string& owner = ring.ownerForObject(object);
    EXPECT_EQ(owner, reordered.ownerForObject(object)) << "same member set, same ring";
    // The owner's arcs are exactly where the key falls — arcsOf and
    // ownerForKey must agree on every boundary.
    const std::uint64_t key = objectRingKey(object);
    for (const std::string& member : ring.members()) {
      bool inArcs = false;
      for (const RingArc& arc : ring.arcsOf(member)) inArcs = inArcs || arc.contains(key);
      EXPECT_EQ(inArcs, member == owner) << member << " vs " << object.str();
    }
    hit.insert(owner);
  }
  EXPECT_EQ(hit.size(), 3u) << "300 objects should land on every member";
  EXPECT_EQ(ring.members(), (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_TRUE(ring.hasMember("beta"));
  EXPECT_FALSE(ring.hasMember("delta"));
  EXPECT_TRUE(ring.arcsOf("delta").empty());

  const HashRing solo({"solo"});
  EXPECT_EQ(solo.ownerForKey(0), "solo");
  EXPECT_EQ(solo.ownerForKey(~std::uint64_t{0}), "solo");
  EXPECT_THROW((void)HashRing().ownerForKey(7), util::ContractError);
}

TEST(HashRingTest, ClaimsForMovesOnlyTheJoinersArcs) {
  const HashRing before({"alpha", "beta"});
  const HashRing after({"alpha", "beta", "gamma"});
  const auto claims = HashRing::claimsFor(before, after, "gamma");
  ASSERT_FALSE(claims.empty());
  for (const auto& claim : claims) {
    EXPECT_TRUE(claim.loser == "alpha" || claim.loser == "beta") << claim.loser;
    EXPECT_EQ(after.ownerForKey(claim.arc.hi), "gamma");
    EXPECT_EQ(before.ownerForKey(claim.arc.hi), claim.loser);
  }

  int movedCount = 0;
  for (int i = 0; i < 400; ++i) {
    MobileObjectId object{"user-" + std::to_string(i)};
    const std::uint64_t key = objectRingKey(object);
    const bool moved = before.ownerForKey(key) != after.ownerForKey(key);
    if (moved) {
      ++movedCount;
      EXPECT_EQ(after.ownerForKey(key), "gamma") << "an incumbent never gains from a join";
    }
    int covering = 0;
    for (const auto& claim : claims) {
      if (!claim.arc.contains(key)) continue;
      ++covering;
      EXPECT_EQ(before.ownerForKey(key), claim.loser) << "one previous owner per claimed arc";
    }
    EXPECT_EQ(covering, moved ? 1 : 0) << "claims cover exactly the moved keys";
  }
  EXPECT_GT(movedCount, 0);
  EXPECT_LT(movedCount, 400) << "bounded movement: most objects stay put";

  // Rejoining an existing member claims nothing; the genesis join has no
  // one to lose from.
  EXPECT_TRUE(HashRing::claimsFor(after, after, "gamma").empty());
  const auto genesis = HashRing::claimsFor(HashRing(), HashRing({"solo"}), "solo");
  ASSERT_FALSE(genesis.empty());
  for (const auto& claim : genesis) EXPECT_TRUE(claim.loser.empty());
}

// --- cluster fixture ------------------------------------------------------------

class ClusterTest : public ::testing::Test {
 protected:
  void startCluster(std::size_t n) {
    registry_ = std::make_unique<core::RegistryServer>();
    for (std::size_t i = 0; i < n; ++i) {
      hosts_.push_back(startShard(i, n));
    }
    ClusterLocationService::Options opts;
    opts.retry = fastRetry();
    router_ = std::make_unique<ClusterLocationService>("127.0.0.1", registry_->port(), opts);
    oracle_ = std::make_unique<core::Middlewhere>(clock_, universe(), "SC");
    configureWorld(*oracle_);
    oracleClient_ = oracle_->connectLocal();
  }

  std::unique_ptr<ShardHost> startShard(std::size_t index, std::size_t total,
                                        std::uint16_t registryPort = 0, bool enableShm = true) {
    ShardHost::Options opts;
    opts.index = index;
    opts.total = total;
    opts.announceTtl = util::sec(5);
    opts.heartbeatPeriod = util::msec(100);
    opts.enableShm = enableShm;
    auto host = std::make_unique<ShardHost>(clock_, universe(), "SC", "127.0.0.1",
                                            registryPort != 0 ? registryPort : registry_->port(),
                                            opts);
    configureWorld(host->core());
    host->start();
    return host;
  }

  /// Starts a host from explicit options (replication / ring tests).
  std::unique_ptr<ShardHost> startHost(ShardHost::Options opts, std::uint16_t registryPort = 0) {
    auto host = std::make_unique<ShardHost>(clock_, universe(), "SC", "127.0.0.1",
                                            registryPort != 0 ? registryPort : registry_->port(),
                                            std::move(opts));
    configureWorld(host->core());
    host->start();
    return host;
  }

  /// Feeds the same reading to the cluster and to the single-process oracle.
  void ingestBoth(const db::SensorReading& reading) {
    router_->ingest(reading);
    oracleClient_->ingest(reading);
  }

  /// An object id owned by `shard` (deterministic: scans a fixed namespace).
  std::string objectOwnedBy(std::size_t shard) const {
    for (int i = 0; i < 1000; ++i) {
      std::string name = "obj-" + std::to_string(i);
      if (shardForObject(MobileObjectId{name}, router_->shardCount()) == shard) return name;
    }
    ADD_FAILURE() << "no object found for shard " << shard;
    return "obj-0";
  }

  VirtualClock clock_;
  std::unique_ptr<core::RegistryServer> registry_;
  std::vector<std::unique_ptr<ShardHost>> hosts_;
  std::unique_ptr<ClusterLocationService> router_;
  std::unique_ptr<core::Middlewhere> oracle_;
  /// In-process client to the oracle: the same marshalling path the router
  /// uses, so answers are comparable byte-for-byte.
  std::unique_ptr<core::RemoteLocationClient> oracleClient_;
};

// --- oracle equivalence ---------------------------------------------------------

TEST_F(ClusterTest, ShardedLocateMatchesSingleProcessOracle) {
  startCluster(2);
  std::vector<std::string> objects;
  for (int i = 0; i < 12; ++i) objects.push_back("obj-" + std::to_string(i));

  for (std::size_t i = 0; i < objects.size(); ++i) {
    const double x = 1.0 + static_cast<double>(i % 6) * 3.0;
    const double y = 2.0 + static_cast<double>(i / 6) * 5.0;
    ingestBoth(makeReading(clock_, {x, y}, objects[i]));
    clock_.advance(util::msec(50));
    ingestBoth(makeReading(clock_, {x + 0.5, y}, objects[i]));
  }

  // Both shards must actually own traffic, or the test proves nothing.
  EXPECT_GT(hosts_[0]->core().locationService().ingestedReadings(), 0u);
  EXPECT_GT(hosts_[1]->core().locationService().ingestedReadings(), 0u);

  for (const auto& name : objects) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle))
        << name << ": sharded locate must be byte-identical to the oracle";
    EXPECT_EQ(router_->locateSymbolic(object), oracleClient_->locateSymbolic(object)) << name;
  }
  EXPECT_EQ(router_->locate(MobileObjectId{"ghost"}), std::nullopt);
  EXPECT_EQ(router_->stats().failedRoutedCalls, 0u) << "unknown object is a miss, not a failure";
}

TEST_F(ClusterTest, ShmAndTcpLanesAnswerByteIdentically) {
  // Two identical clusters, one difference: the first announces shm lanes
  // (the router connects over shared memory), the second is TCP-only. Fed
  // the same readings, every routed answer must be byte-identical — the
  // transport lane must never leak into results.
  startCluster(2);
  if (hosts_[0]->shmName().empty()) GTEST_SKIP() << "POSIX shm unavailable";
  for (const auto& host : hosts_) {
    EXPECT_FALSE(host->shmName().empty()) << "shm lane should be announced by default";
  }

  auto tcpRegistry = std::make_unique<core::RegistryServer>();
  std::vector<std::unique_ptr<ShardHost>> tcpHosts;
  for (std::size_t i = 0; i < 2; ++i) {
    tcpHosts.push_back(startShard(i, 2, tcpRegistry->port(), /*enableShm=*/false));
    EXPECT_TRUE(tcpHosts.back()->shmName().empty());
  }
  ClusterLocationService::Options opts;
  opts.retry = fastRetry();
  auto tcpRouter =
      std::make_unique<ClusterLocationService>("127.0.0.1", tcpRegistry->port(), opts);

  std::vector<std::string> objects;
  for (int i = 0; i < 8; ++i) objects.push_back("obj-" + std::to_string(i));
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const double x = 2.0 + static_cast<double>(i % 4) * 4.0;
    const double y = 3.0 + static_cast<double>(i / 4) * 6.0;
    auto reading = makeReading(clock_, {x, y}, objects[i]);
    router_->ingest(reading);
    tcpRouter->ingest(reading);
    clock_.advance(util::msec(50));
  }

  for (const auto& name : objects) {
    MobileObjectId object{name};
    auto viaShm = router_->locate(object);
    auto viaTcp = tcpRouter->locate(object);
    ASSERT_TRUE(viaShm.has_value()) << name;
    ASSERT_TRUE(viaTcp.has_value()) << name;
    EXPECT_EQ(estimateBytes(*viaShm), estimateBytes(*viaTcp))
        << name << ": shm-lane answers must be byte-identical to tcp-lane answers";
    EXPECT_EQ(router_->locateSymbolic(object), tcpRouter->locateSymbolic(object)) << name;
  }
  EXPECT_EQ(router_->stats().failedRoutedCalls, 0u);
  EXPECT_EQ(tcpRouter->stats().failedRoutedCalls, 0u);
}

TEST_F(ClusterTest, ProbabilityInRegionPrefersEvidenceOverPriors) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  const std::string inhabitant = objectOwnedBy(0);
  ingestBoth(makeReading(clock_, {5, 5}, inhabitant));

  // Evidence case: only the owning shard has readings; the other (N-1)
  // shards answer with the bare prior. The merge must pick the fused value.
  EXPECT_DOUBLE_EQ(router_->probabilityInRegion(MobileObjectId{inhabitant}, region),
                   oracleClient_->probabilityInRegion(MobileObjectId{inhabitant}, region));

  // No-evidence case: every shard reports the same prior mass; the cluster
  // must agree with the oracle's prior answer, not invent a zero.
  EXPECT_DOUBLE_EQ(router_->probabilityInRegion(MobileObjectId{"ghost"}, region),
                   oracleClient_->probabilityInRegion(MobileObjectId{"ghost"}, region));
  EXPECT_EQ(router_->stats().degradedQueries, 0u);
}

TEST_F(ClusterTest, ObjectsInRegionMergesAcrossShards) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  for (int i = 0; i < 10; ++i) {
    ingestBoth(makeReading(clock_, {2.0 + i, 3.0 + (i % 4)}, "obj-" + std::to_string(i)));
  }
  // One object outside the region, to prove filtering matches too.
  ingestBoth(makeReading(clock_, {60, 40}, "outsider"));

  auto fromCluster = router_->objectsInRegionDetailed(region, 0.5);
  auto fromOracle = oracleClient_->objectsInRegion(region, 0.5);
  EXPECT_FALSE(fromCluster.degraded);
  EXPECT_EQ(fromCluster.shardsAnswered, 2u);
  ASSERT_EQ(fromCluster.members.size(), fromOracle.size());
  for (std::size_t i = 0; i < fromOracle.size(); ++i) {
    EXPECT_EQ(fromCluster.members[i].first, fromOracle[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(fromCluster.members[i].second, fromOracle[i].second) << "rank " << i;
  }
  EXPECT_GE(router_->stats().scatterGathers, 1u);
}

TEST_F(ClusterTest, IngestBatchSplitsByOwningShard) {
  startCluster(2);
  std::vector<db::SensorReading> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(makeReading(clock_, {1.0 + i % 5, 2.0 + i % 7}, "obj-" + std::to_string(i)));
  }
  router_->ingestBatch(batch);
  oracleClient_->ingestBatch(batch);

  EXPECT_EQ(hosts_[0]->core().locationService().ingestedReadings() +
                hosts_[1]->core().locationService().ingestedReadings(),
            batch.size())
      << "every reading lands on exactly one shard";
  EXPECT_GT(hosts_[0]->core().locationService().ingestedReadings(), 0u);
  EXPECT_GT(hosts_[1]->core().locationService().ingestedReadings(), 0u);

  for (const auto& reading : batch) {
    auto fromCluster = router_->locate(reading.mobileObjectId);
    auto fromOracle = oracleClient_->locate(reading.mobileObjectId);
    ASSERT_TRUE(fromCluster.has_value());
    ASSERT_TRUE(fromOracle.has_value());
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle));
  }
}

// --- degraded mode --------------------------------------------------------------

TEST_F(ClusterTest, KillOneShardDegradesButKeepsAnswering) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  const std::string onLive = objectOwnedBy(0);
  const std::string onDead = objectOwnedBy(1);
  ingestBoth(makeReading(clock_, {4, 4}, onLive));
  ingestBoth(makeReading(clock_, {8, 8}, onDead));
  ASSERT_TRUE(router_->locate(MobileObjectId{onDead}).has_value());

  hosts_[1].reset();  // the shard process dies: port closed, entry withdrawn

  // Scatter-gather still answers — partially, and says so.
  auto population = router_->objectsInRegionDetailed(region, 0.5);
  EXPECT_TRUE(population.degraded);
  EXPECT_EQ(population.shardsAnswered, 1u);
  ASSERT_EQ(population.members.size(), 1u);
  EXPECT_EQ(population.members[0].first, MobileObjectId{onLive});

  // Routed calls: the live shard's objects answer, the dead shard's return
  // "unknown" instead of hanging or throwing.
  ASSERT_TRUE(router_->locate(MobileObjectId{onLive}).has_value());
  EXPECT_EQ(router_->locate(MobileObjectId{onDead}), std::nullopt);
  EXPECT_GT(router_->probabilityInRegion(MobileObjectId{onLive}, region), 0.9);

  auto stats = router_->stats();
  EXPECT_TRUE(stats.shards[1].down) << "consecutive failures must mark the shard down";
  EXPECT_FALSE(stats.shards[0].down);
  EXPECT_GT(stats.shards[1].failures, 0u);
  EXPECT_GT(stats.degradedQueries, 0u);
  EXPECT_GT(stats.failedRoutedCalls, 0u);

  // Down shards fail fast: a routed call between probes costs ~nothing.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(router_->locate(MobileObjectId{onDead}), std::nullopt);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(500));
}

TEST_F(ClusterTest, RestartedShardIsReadmittedByProbe) {
  startCluster(2);
  const std::string object = objectOwnedBy(1);
  ingestBoth(makeReading(clock_, {5, 5}, object));

  hosts_[1].reset();
  EXPECT_EQ(router_->locate(MobileObjectId{object}), std::nullopt);
  ASSERT_TRUE(router_->stats().shards[1].down);

  // Restart shard 1 on a fresh port; the heartbeat re-announces it.
  hosts_[1] = startShard(1, 2);
  router_->refreshShardMap();

  // Probe until the health machine re-admits it (probeInterval is 30ms).
  for (int i = 0; i < 200 && router_->stats().shards[1].down; ++i) {
    router_->probeDownShards();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(router_->stats().shards[1].down);

  // The restarted shard is empty (state died with the process); new
  // readings route to it and answer again.
  router_->ingest(makeReading(clock_, {6, 6}, object));
  auto est = router_->locate(MobileObjectId{object});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

// --- subscriptions --------------------------------------------------------------

TEST_F(ClusterTest, SubscriptionFansOutAndCarriesOneClusterId) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  const std::string onShard0 = objectOwnedBy(0);
  const std::string onShard1 = objectOwnedBy(1);

  std::mutex notesMutex;
  std::vector<core::Notification> notes;
  auto id = router_->subscribe(region, std::nullopt, 0.5, [&](const core::Notification& n) {
    std::lock_guard lock(notesMutex);
    notes.push_back(n);
  });
  EXPECT_TRUE(id.valid());

  router_->ingest(makeReading(clock_, {5, 5}, onShard0));
  router_->ingest(makeReading(clock_, {10, 10}, onShard1));

  // Notifications arrive on the clients' event threads; poll.
  for (int i = 0; i < 400; ++i) {
    std::lock_guard lock(notesMutex);
    if (notes.size() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::set<std::string> notified;
  {
    std::lock_guard lock(notesMutex);
    ASSERT_EQ(notes.size(), 2u) << "one notification per shard-matched ingest";
    for (const auto& n : notes) {
      EXPECT_EQ(n.id, id) << "whichever shard matched, the caller sees ONE id";
      EXPECT_GT(n.probability, 0.5);
      notified.insert(n.object.str());
    }
  }
  EXPECT_EQ(notified, (std::set<std::string>{onShard0, onShard1}));

  EXPECT_TRUE(router_->unsubscribe(id));
  EXPECT_FALSE(router_->unsubscribe(id));
  router_->ingest(makeReading(clock_, {6, 6}, onShard0));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::lock_guard lock(notesMutex);
  EXPECT_EQ(notes.size(), 2u) << "no notifications after unsubscribe";
}

TEST_F(ClusterTest, SubscriptionReplaysOntoRestartedShard) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  const std::string object = objectOwnedBy(1);

  std::mutex notesMutex;
  std::vector<core::Notification> notes;
  auto id = router_->subscribe(region, std::nullopt, 0.5, [&](const core::Notification& n) {
    std::lock_guard lock(notesMutex);
    notes.push_back(n);
  });

  hosts_[1].reset();
  router_->ingest(makeReading(clock_, {5, 5}, object));  // dropped; marks shard down
  hosts_[1] = startShard(1, 2);
  router_->refreshShardMap();
  for (int i = 0; i < 200 && router_->stats().shards[1].down; ++i) {
    router_->probeDownShards();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(router_->stats().shards[1].down);

  // The reconnect replayed the live subscription onto the fresh shard: an
  // ingest routed there must still notify under the original cluster id.
  router_->ingest(makeReading(clock_, {7, 7}, object));
  for (int i = 0; i < 400; ++i) {
    std::lock_guard lock(notesMutex);
    if (!notes.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard lock(notesMutex);
  ASSERT_FALSE(notes.empty()) << "subscription must survive the shard restart";
  EXPECT_EQ(notes.back().id, id);
  EXPECT_EQ(notes.back().object, MobileObjectId{object});
}

// --- replication and failover ---------------------------------------------------

TEST_F(ClusterTest, KillPrimaryPromotesBackupWithoutLosingAcknowledgedReadings) {
  startCluster(2);
  ShardHost::Options backupOpts;
  backupOpts.index = 1;
  backupOpts.total = 2;
  backupOpts.role = ShardHost::Role::Backup;
  backupOpts.announceTtl = util::sec(5);
  backupOpts.heartbeatPeriod = util::msec(100);
  auto backup = startHost(backupOpts);
  EXPECT_EQ(backup->name(), shardName(1, 2) + kBackupSuffix);
  EXPECT_EQ(backup->primaryName(), shardName(1, 2));
  ASSERT_EQ(backup->role(), ShardHost::Role::Backup);

  // Wait until the primary discovered its backup and the initial sync went
  // live — from here every acked ingest exists on both sides.
  std::shared_ptr<ReplicationLink> link;
  for (int i = 0; i < 500; ++i) {
    link = hosts_[1]->replicationLink();
    if (link && link->live()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(link && link->live()) << "primary must discover and sync its backup";

  std::vector<std::string> objects;
  for (int i = 0; i < 12; ++i) objects.push_back("obj-" + std::to_string(i));
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const double x = 1.0 + static_cast<double>(i % 6) * 3.0;
    const double y = 2.0 + static_cast<double>(i / 6) * 5.0;
    ingestBoth(makeReading(clock_, {x, y}, objects[i]));
    clock_.advance(util::msec(50));
    ingestBoth(makeReading(clock_, {x + 0.5, y}, objects[i]));
  }
  EXPECT_GT(link->mirroredReadings(), 0u) << "shard 1's ingests must mirror synchronously";
  EXPECT_EQ(link->failures(), 0u);

  hosts_[1].reset();  // the primary dies; its registry entry disappears

  // The backup notices the missing entry on its next monitor tick and
  // claims the primary name at the last seen generation + 1.
  for (int i = 0; i < 500 && backup->role() != ShardHost::Role::Primary; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(backup->role(), ShardHost::Role::Primary) << "backup must promote";
  EXPECT_EQ(backup->promotions(), 1u);
  EXPECT_GE(backup->generation(), 2u);

  // Shard 1's name now resolves to the promoted backup; the router re-routes.
  router_->refreshShardMap();
  for (int i = 0; i < 200 && router_->stats().shards[1].down; ++i) {
    router_->probeDownShards();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_FALSE(router_->stats().shards[1].down);

  // No acknowledged reading was lost: every object — including the dead
  // shard's — answers byte-identically to the oracle.
  for (const auto& name : objects) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle))
        << name << ": post-failover locate must be byte-identical to the oracle";
    EXPECT_EQ(router_->locateSymbolic(object), oracleClient_->locateSymbolic(object)) << name;
  }

  // The promoted backup is a full primary: fresh readings keep fusing.
  const std::string onPromoted = objectOwnedBy(1);
  clock_.advance(util::msec(50));
  ingestBoth(makeReading(clock_, {6, 6}, onPromoted));
  auto fromCluster = router_->locate(MobileObjectId{onPromoted});
  auto fromOracle = oracleClient_->locate(MobileObjectId{onPromoted});
  ASSERT_TRUE(fromCluster.has_value());
  ASSERT_TRUE(fromOracle.has_value());
  EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle));
}

TEST_F(ClusterTest, FencedStalePrimaryDoesNotFlapOwnershipBack) {
  startCluster(1);
  ShardHost::Options backupOpts;
  backupOpts.index = 0;
  backupOpts.total = 1;
  backupOpts.role = ShardHost::Role::Backup;
  backupOpts.announceTtl = util::sec(5);
  backupOpts.heartbeatPeriod = util::msec(50);
  auto backup = startHost(backupOpts);

  std::shared_ptr<ReplicationLink> link;
  for (int i = 0; i < 500; ++i) {
    link = hosts_[0]->replicationLink();
    if (link && link->live()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(link && link->live());

  // Simulate the primary's entry expiring while the process is slow but
  // ALIVE: an admin client withdraws it out from under the still-beating
  // heartbeat. The primary keeps re-announcing, so keep withdrawing until
  // the backup's monitor wins the race and promotes.
  core::RegistryClient admin("127.0.0.1", registry_->port());
  const std::string name = shardName(0, 1);
  for (int i = 0; i < 1000 && backup->role() != ShardHost::Role::Primary; ++i) {
    (void)admin.withdraw(name);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(backup->role(), ShardHost::Role::Primary);
  EXPECT_EQ(backup->generation(), 2u) << "claimed at the last seen generation + 1";
  EXPECT_EQ(backup->promotions(), 1u);

  // The stale primary's next heartbeat announce (generation 1) hits the
  // fence: it must demote itself instead of reclaiming the name.
  for (int i = 0; i < 400 && !hosts_[0]->fenced(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(hosts_[0]->fenced());
  EXPECT_GE(hosts_[0]->fencedHeartbeats(), 1u);

  // Ownership settles on the promoted backup...
  std::optional<core::RegistryClient::ResolvedEntry> entry;
  for (int i = 0; i < 400; ++i) {
    entry = admin.lookupEntry(name);
    if (entry && entry->endpoint.port == backup->port()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->endpoint.port, backup->port());
  EXPECT_EQ(entry->generation, 2u);

  // ...and STAYS there across several more of the stale primary's
  // heartbeats — the whole point of the fence.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  entry = admin.lookupEntry(name);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->endpoint.port, backup->port()) << "no flap: the fence holds";
  EXPECT_EQ(entry->generation, 2u);
}

// --- online resharding ----------------------------------------------------------

TEST_F(ClusterTest, RingJoinMovesOnlyItsArcsUnderLiveIngest) {
  registry_ = std::make_unique<core::RegistryServer>();
  for (const char* token : {"alpha", "beta"}) {
    ShardHost::Options opts;
    opts.ringToken = token;
    opts.announceTtl = util::sec(5);
    opts.heartbeatPeriod = util::msec(100);
    hosts_.push_back(startHost(opts));
  }
  ClusterLocationService::Options routerOpts;
  routerOpts.retry = fastRetry();
  routerOpts.partitioning = ClusterLocationService::Partitioning::Ring;
  router_ = std::make_unique<ClusterLocationService>("127.0.0.1", registry_->port(), routerOpts);
  EXPECT_EQ(router_->shardCount(), 2u);
  EXPECT_FALSE(router_->dualReadWindowOpen());
  oracle_ = std::make_unique<core::Middlewhere>(clock_, universe(), "SC");
  configureWorld(*oracle_);
  oracleClient_ = oracle_->connectLocal();

  // A static population ingested before the join, untouched afterwards.
  std::vector<std::string> statics;
  for (int i = 0; i < 24; ++i) statics.push_back("ring-" + std::to_string(i));
  for (std::size_t i = 0; i < statics.size(); ++i) {
    const double x = 1.0 + static_cast<double>(i % 8) * 2.0;
    const double y = 2.0 + static_cast<double>(i / 8) * 5.0;
    ingestBoth(makeReading(clock_, {x, y}, statics[i]));
    clock_.advance(util::msec(20));
    ingestBoth(makeReading(clock_, {x + 0.5, y}, statics[i]));
  }

  // Live traffic across the whole join: a feeder thread hammering a small
  // object set through the router AND the oracle. Timestamps are frozen (the
  // feeder must not race the VirtualClock) and router ingest is
  // request-reply, so each reading is fully applied — wherever the current
  // topology routes it, including a handoff buffer or forward — before the
  // next one leaves. Per-object order therefore matches the oracle's
  // exactly, which is what makes the final byte-identical check fair.
  constexpr int kLiveObjects = 6;
  const auto frozenNow = clock_.now();
  std::atomic<bool> stopFeeder{false};
  std::atomic<int> fed{0};
  std::thread feeder([&] {
    for (int i = 0; !stopFeeder.load(std::memory_order_acquire); ++i) {
      db::SensorReading r;
      r.sensorId = SensorId{"ubi-1"};
      r.sensorType = "Ubisense";
      r.mobileObjectId = MobileObjectId{"live-" + std::to_string(i % kLiveObjects)};
      r.location = {2.0 + i % 16, 3.0 + i % 5};
      r.detectionRadius = 0.5;
      r.detectionTime = frozenNow;
      router_->ingest(r);
      oracleClient_->ingest(r);
      fed.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Every live object must exist on its pre-join owner before the join so
  // the handoff's export list covers it.
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fed.load(std::memory_order_acquire), 20);

  // gamma joins under load: handoff sessions first, announce second.
  ShardHost::Options gammaOpts;
  gammaOpts.ringToken = "gamma";
  gammaOpts.deferAnnounce = true;
  gammaOpts.announceTtl = util::sec(5);
  gammaOpts.heartbeatPeriod = util::msec(100);
  auto gamma = startHost(gammaOpts);
  gamma->joinRing();

  router_->refreshShardMap();
  EXPECT_TRUE(router_->dualReadWindowOpen()) << "a membership change must open the window";
  EXPECT_EQ(router_->shardCount(), 3u);

  // Mid-window the statics already answer exactly: the joiner does not have
  // the moved objects yet, so reads fall back to the previous owner.
  for (const auto& name : statics) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle)) << name << " (mid-window)";
  }

  gamma->completeJoin();
  router_->refreshShardMap();
  EXPECT_FALSE(router_->dualReadWindowOpen()) << "an unchanged refresh closes the window";

  // Keep feeding a little with the window closed (moved objects now route
  // straight to gamma), then stop.
  const int beforeClose = fed.load(std::memory_order_acquire);
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < beforeClose + 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stopFeeder.store(true, std::memory_order_release);
  feeder.join();

  // Exactness: every object — static and live, moved and kept — answers
  // byte-identically to the oracle after the join.
  std::vector<std::string> all = statics;
  for (int k = 0; k < kLiveObjects; ++k) all.push_back("live-" + std::to_string(k));
  for (const auto& name : all) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle))
        << name << ": post-join locate must be byte-identical to the oracle";
    EXPECT_EQ(router_->locateSymbolic(object), oracleClient_->locateSymbolic(object)) << name;
  }
  EXPECT_EQ(router_->stats().failedRoutedCalls, 0u);
  EXPECT_EQ(router_->stats().droppedIngestReadings, 0u);

  // Movement is bounded and exact: gamma holds precisely the objects its
  // arcs own, and the losers dropped precisely those.
  const HashRing after({"alpha", "beta", "gamma"});
  std::set<std::string> moved;
  for (const auto& name : all) {
    if (after.ownerForObject(MobileObjectId{name}) == "gamma") moved.insert(name);
  }
  EXPECT_FALSE(moved.empty()) << "the joiner should claim some of " << all.size() << " objects";
  std::set<std::string> onGamma;
  for (const auto& id : gamma->core().database().knownMobileObjects()) onGamma.insert(id.str());
  EXPECT_EQ(onGamma, moved) << "the joiner holds exactly its arcs' objects";
  for (const auto& host : hosts_) {
    for (const auto& id : host->core().database().knownMobileObjects()) {
      EXPECT_FALSE(moved.count(id.str()))
          << id.str() << " should have been dropped by " << host->name();
    }
  }
}

TEST_F(ClusterTest, RingPlannedLeaveDrainsUnderLiveIngest) {
  registry_ = std::make_unique<core::RegistryServer>();
  for (const char* token : {"alpha", "beta"}) {
    ShardHost::Options opts;
    opts.ringToken = token;
    opts.announceTtl = util::sec(5);
    opts.heartbeatPeriod = util::msec(100);
    hosts_.push_back(startHost(opts));
  }
  ShardHost::Options gammaOpts;
  gammaOpts.ringToken = "gamma";
  gammaOpts.announceTtl = util::sec(5);
  gammaOpts.heartbeatPeriod = util::msec(100);
  auto gamma = startHost(gammaOpts);
  ClusterLocationService::Options routerOpts;
  routerOpts.retry = fastRetry();
  routerOpts.partitioning = ClusterLocationService::Partitioning::Ring;
  router_ = std::make_unique<ClusterLocationService>("127.0.0.1", registry_->port(), routerOpts);
  EXPECT_EQ(router_->shardCount(), 3u);
  oracle_ = std::make_unique<core::Middlewhere>(clock_, universe(), "SC");
  configureWorld(*oracle_);
  oracleClient_ = oracle_->connectLocal();

  // A static population spread over all three members.
  std::vector<std::string> statics;
  for (int i = 0; i < 24; ++i) statics.push_back("ring-" + std::to_string(i));
  for (std::size_t i = 0; i < statics.size(); ++i) {
    const double x = 1.0 + static_cast<double>(i % 8) * 2.0;
    const double y = 2.0 + static_cast<double>(i / 8) * 5.0;
    ingestBoth(makeReading(clock_, {x, y}, statics[i]));
    clock_.advance(util::msec(20));
    ingestBoth(makeReading(clock_, {x + 0.5, y}, statics[i]));
  }

  // Live traffic across the whole drain (frozen timestamps, request-reply
  // ingest — see the join test for the exactness argument).
  constexpr int kLiveObjects = 6;
  const auto frozenNow = clock_.now();
  std::atomic<bool> stopFeeder{false};
  std::atomic<int> fed{0};
  std::thread feeder([&] {
    for (int i = 0; !stopFeeder.load(std::memory_order_acquire); ++i) {
      db::SensorReading r;
      r.sensorId = SensorId{"ubi-1"};
      r.sensorType = "Ubisense";
      r.mobileObjectId = MobileObjectId{"live-" + std::to_string(i % kLiveObjects)};
      r.location = {2.0 + i % 16, 3.0 + i % 5};
      r.detectionRadius = 0.5;
      r.detectionTime = frozenNow;
      router_->ingest(r);
      oracleClient_->ingest(r);
      fed.fetch_add(1, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fed.load(std::memory_order_acquire), 20);

  // The planned departure: gamma installs a handoff session per inheriting
  // member, withdraws (routers recompute the ring) and drains its objects
  // across — all while the feeder keeps hammering it.
  gamma->leaveRing();
  EXPECT_TRUE(gamma->running()) << "the leaver keeps serving stragglers after the drain";

  router_->refreshShardMap();
  EXPECT_TRUE(router_->dualReadWindowOpen()) << "a departure must open the window";
  // Shard slots are stable (the leaver keeps its slot and endpoint for
  // prev-ring routing while the window is open); membership is what shrank.
  EXPECT_EQ(router_->shardCount(), 3u);

  // Mid-window exactness: moved-arc ingest still routes to gamma (which
  // forwards), reads route new-owner-first. The drain already ran, so the
  // inheritors answer directly.
  for (const auto& name : statics) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle)) << name << " (mid-window)";
  }

  router_->refreshShardMap();
  EXPECT_FALSE(router_->dualReadWindowOpen()) << "an unchanged refresh closes the window";

  // Keep feeding with the window closed (moved arcs now route straight to
  // the inheritors), then stop.
  const int beforeClose = fed.load(std::memory_order_acquire);
  for (int i = 0; i < 5000 && fed.load(std::memory_order_acquire) < beforeClose + 20; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stopFeeder.store(true, std::memory_order_release);
  feeder.join();

  std::vector<std::string> all = statics;
  for (int k = 0; k < kLiveObjects; ++k) all.push_back("live-" + std::to_string(k));
  for (const auto& name : all) {
    MobileObjectId object{name};
    auto fromCluster = router_->locate(object);
    auto fromOracle = oracleClient_->locate(object);
    ASSERT_TRUE(fromCluster.has_value()) << name;
    ASSERT_TRUE(fromOracle.has_value()) << name;
    EXPECT_EQ(estimateBytes(*fromCluster), estimateBytes(*fromOracle))
        << name << ": post-leave locate must be byte-identical to the oracle";
    EXPECT_EQ(router_->locateSymbolic(object), oracleClient_->locateSymbolic(object)) << name;
  }
  EXPECT_EQ(router_->stats().failedRoutedCalls, 0u);
  EXPECT_EQ(router_->stats().droppedIngestReadings, 0u);

  // Movement is exact and bounded: gamma dropped precisely its former
  // objects, and each one landed on the member whose arc inherits it.
  const HashRing before({"alpha", "beta", "gamma"});
  const HashRing after({"alpha", "beta"});
  std::set<std::string> moved;
  for (const auto& name : all) {
    if (before.ownerForObject(MobileObjectId{name}) == "gamma") moved.insert(name);
  }
  EXPECT_FALSE(moved.empty()) << "the leaver should have owned some of " << all.size();
  for (const auto& id : gamma->core().database().knownMobileObjects()) {
    EXPECT_FALSE(moved.count(id.str())) << id.str() << " should have been dropped by the leaver";
  }
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    const std::string token = h == 0 ? "alpha" : "beta";
    std::set<std::string> resident;
    for (const auto& id : hosts_[h]->core().database().knownMobileObjects()) {
      resident.insert(id.str());
    }
    for (const auto& name : moved) {
      EXPECT_EQ(resident.count(name) > 0, after.ownerForObject(MobileObjectId{name}) == token)
          << name << " vs " << token;
    }
  }
}

// --- concurrency (runs under TSan in CI) ----------------------------------------

TEST_F(ClusterTest, ClusterConcurrencyMixedOpsThroughOneRouter) {
  startCluster(2);
  const auto region = geo::Rect::fromOrigin({0, 0}, 20, 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 25;

  std::atomic<std::uint64_t> located{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string object = "obj-" + std::to_string(t) + "-" + std::to_string(i % 7);
        router_->ingest(makeReading(clock_, {2.0 + i % 8, 3.0 + t}, object));
        if (router_->locate(MobileObjectId{object})) {
          located.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 5 == 0) {
          (void)router_->objectsInRegionDetailed(region, 0.5);
          (void)router_->probabilityInRegion(MobileObjectId{object}, region);
        }
        if (i % 10 == 0) {
          auto id = router_->subscribe(region, std::nullopt, 0.9, [](const core::Notification&) {});
          router_->unsubscribe(id);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(located.load(), static_cast<std::uint64_t>(kThreads) * kIters)
      << "a healthy cluster must answer every routed locate";
  auto stats = router_->stats();
  EXPECT_EQ(stats.failedRoutedCalls, 0u);
  EXPECT_EQ(stats.droppedIngestReadings, 0u);
  EXPECT_FALSE(stats.shards[0].down);
  EXPECT_FALSE(stats.shards[1].down);
  EXPECT_EQ(hosts_[0]->core().locationService().ingestedReadings() +
                hosts_[1]->core().locationService().ingestedReadings(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mw::cluster
