// Concurrent ingest/query discipline: readers and writers share the
// database, fusion cache and subscription table without data races (run
// under -DMW_SANITIZE=thread to prove it) and without deadlock, including
// callbacks that reenter the service.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

struct Fixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  Fixture() : db(makeDb(clock)), service(clock, db) {}

  static db::SpatialDatabase makeDb(const util::Clock& clock) {
    db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    database.registerSensor(ubi);
    return database;
  }

  db::SensorReading reading(const char* person, geo::Point2 where) {
    db::SensorReading r;
    r.sensorId = SensorId{"ubi-1"};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    return r;
  }
};

TEST(ConcurrencyTest, ParallelIngestAndQueries) {
  Fixture f;
  constexpr int kObjects = 8;
  constexpr int kRounds = 50;

  std::atomic<bool> stop{false};
  std::atomic<int> located{0};

  // Writer: batch-ingests all objects each round through 4 shards.
  std::thread writer([&] {
    f.service.setIngestShards(4);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<db::SensorReading> batch;
      for (int p = 0; p < kObjects; ++p) {
        batch.push_back(
            f.reading(("p" + std::to_string(p)).c_str(), {5.0 + p * 2.0 + round * 0.01, 5}));
      }
      f.service.ingestBatch(batch);
    }
    stop.store(true);
  });

  // Readers: hammer pull queries across all objects while ingest runs.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        MobileObjectId who{"p" + std::to_string(t % kObjects)};
        if (f.service.locateObject(who)) located.fetch_add(1);
        (void)f.service.probabilityInRegion(who, geo::Rect::fromOrigin({0, 0}, 50, 50));
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // Every object locatable at the end, with the last round's position.
  for (int p = 0; p < kObjects; ++p) {
    auto est = f.service.locateObject(MobileObjectId{"p" + std::to_string(p)});
    ASSERT_TRUE(est.has_value());
    EXPECT_TRUE(est->region.contains(geo::Point2{5.0 + p * 2.0 + (kRounds - 1) * 0.01, 5}));
  }
}

TEST(ConcurrencyTest, ConcurrentQueriesShareCache) {
  Fixture f;
  f.service.ingest(f.reading("alice", {5, 5}));
  f.service.resetFusionCacheCounters();

  constexpr int kThreads = 4;
  constexpr int kQueries = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueries; ++i) {
        auto est = f.service.locateObject(MobileObjectId{"alice"});
        ASSERT_TRUE(est.has_value());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Readings and clock are frozen, so at worst each thread misses once while
  // racing the first fill; everything else must be a hit.
  EXPECT_LE(f.service.fusionCacheMisses(), static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(f.service.fusionCacheHits(),
            static_cast<std::uint64_t>(kThreads * kQueries - kThreads));
}

TEST(ConcurrencyTest, SubscriptionsFireUnderBatchIngestWithReentrantCallback) {
  Fixture f;
  f.service.setIngestShards(4);
  std::atomic<int> fired{0};
  geo::Rect roomA = geo::Rect::fromOrigin({0, 0}, 20, 20);
  f.service.subscribe({roomA, std::nullopt, 0.5, std::nullopt, false,
                       [&](const Notification& n) {
                         // Reentrant query from inside the callback: must not
                         // deadlock against any service or database lock.
                         (void)f.service.locateObject(n.object);
                         fired.fetch_add(1);
                       }});

  for (int round = 0; round < 10; ++round) {
    std::vector<db::SensorReading> batch;
    for (int p = 0; p < 8; ++p) {
      // Half the objects inside roomA, half far away.
      geo::Point2 where = p % 2 == 0 ? geo::Point2{5.0 + 0.01 * round, 5}
                                     : geo::Point2{80.0, 40};
      batch.push_back(f.reading(("p" + std::to_string(p)).c_str(), where));
    }
    f.service.ingestBatch(batch);
  }
  EXPECT_EQ(fired.load(), 10 * 4);  // 4 inside objects x 10 rounds, level-triggered
}

TEST(ConcurrencyTest, TriggerCallbacksRunOutsideTheDatabaseLock) {
  // A database trigger that reenters the database must not self-deadlock.
  Fixture f;
  std::atomic<int> fired{0};
  db::TriggerSpec spec;
  spec.region = geo::Rect::fromOrigin({0, 0}, 100, 50);
  spec.callback = [&](const db::TriggerEvent& event) {
    (void)f.db.readingsFor(event.reading.mobileObjectId);  // shared lock reentry
    fired.fetch_add(1);
  };
  f.db.createTrigger(std::move(spec));
  f.service.ingest(f.reading("alice", {5, 5}));
  EXPECT_EQ(fired.load(), 1);
}

}  // namespace
}  // namespace mw::core
