// Territory-aware backup placement: a standby must not share a host with
// the shards whose territories border its primary's.
#include <gtest/gtest.h>

#include <unordered_map>

#include "cluster/placement.hpp"
#include "cluster/territory_map.hpp"

using namespace mw;
using namespace mw::cluster;

namespace {

geo::Rect universe() { return geo::Rect::fromOrigin({0, 0}, 100, 100); }

/// Uniform 2x2 split over a/b/c/d. The kd split halves the long axis first,
/// so every member owns one quadrant; with closed-set adjacency each member
/// neighbours the other three (two edges + the shared center corner).
TerritoryMap quadMap() { return TerritoryMap::uniform(universe(), {"a", "b", "c", "d"}); }

}  // namespace

TEST(PlacementPolicy, NeighboursAreSortedUniqueAndExcludeSelf) {
  const TerritoryMap map = quadMap();
  for (const std::string& token : {"a", "b", "c", "d"}) {
    const auto neighbours = territoryNeighbours(map, token);
    EXPECT_FALSE(neighbours.empty());
    EXPECT_TRUE(std::is_sorted(neighbours.begin(), neighbours.end()));
    EXPECT_EQ(std::adjacent_find(neighbours.begin(), neighbours.end()), neighbours.end());
    for (const std::string& n : neighbours) EXPECT_NE(n, token);
  }
}

TEST(PlacementPolicy, UnknownOrSoleOwnerHasNoNeighbours) {
  EXPECT_TRUE(territoryNeighbours(quadMap(), "nope").empty());
  const TerritoryMap solo = TerritoryMap::uniform(universe(), {"only"});
  EXPECT_TRUE(territoryNeighbours(solo, "only").empty());
}

TEST(PlacementPolicy, RefusesBackupColocatedWithANeighbour) {
  const TerritoryMap map = quadMap();
  const auto neighbours = territoryNeighbours(map, "a");
  ASSERT_FALSE(neighbours.empty());

  std::unordered_map<std::string, std::string> hosts{
      {"a", "host-1"}, {"b", "host-2"}, {"c", "host-3"}, {"d", "host-4"}};

  // Candidate on a neighbour's host: refused, conflict names the neighbour.
  const std::string conflicted = hosts.at(neighbours.front());
  const PlacementDecision refused = evaluateBackupPlacement(map, "a", conflicted, hosts);
  EXPECT_FALSE(refused.accepted);
  ASSERT_FALSE(refused.conflicts.empty());
  EXPECT_EQ(refused.conflicts.front(), neighbours.front());

  // Candidate on a fresh host: accepted.
  const PlacementDecision ok = evaluateBackupPlacement(map, "a", "host-9", hosts);
  EXPECT_TRUE(ok.accepted);
  EXPECT_TRUE(ok.conflicts.empty());
}

TEST(PlacementPolicy, PrimariesOwnHostIsNotAConflict) {
  // The primary itself is not in its neighbour set, so a standby process on
  // the primary's host is a (pointless but) accepted placement as far as
  // THIS policy goes — the replication layer separately refuses self-links.
  const TerritoryMap map = quadMap();
  std::unordered_map<std::string, std::string> hosts{{"a", "host-1"}};
  const PlacementDecision decision = evaluateBackupPlacement(map, "a", "host-1", hosts);
  EXPECT_TRUE(decision.accepted);
}

TEST(PlacementPolicy, UnknownMembersAreIgnored) {
  const TerritoryMap map = quadMap();
  // Host assignment only known for one neighbour; others missing from the
  // registry snapshot must not crash or conflict.
  std::unordered_map<std::string, std::string> hosts{{"b", "host-2"}};
  EXPECT_TRUE(evaluateBackupPlacement(map, "a", "host-7", hosts).accepted);
  const PlacementDecision refused = evaluateBackupPlacement(map, "a", "host-2", hosts);
  EXPECT_FALSE(refused.accepted);
}

TEST(PlacementPolicy, ColocatedEverythingConflictsOnEveryNeighbour) {
  // Single-host dev clusters: every member on 127.0.0.1. Strict placement
  // would refuse any backup; this is why ShardHost defaults to Permissive.
  const TerritoryMap map = quadMap();
  std::unordered_map<std::string, std::string> hosts;
  for (const std::string& token : {"a", "b", "c", "d"}) hosts[token] = "127.0.0.1";
  const PlacementDecision decision = evaluateBackupPlacement(map, "a", "127.0.0.1", hosts);
  EXPECT_FALSE(decision.accepted);
  EXPECT_EQ(decision.conflicts.size(), territoryNeighbours(map, "a").size());
}
