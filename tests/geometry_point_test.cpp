#include "geometry/point.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mw::geo {
namespace {

TEST(Point2Test, Arithmetic) {
  Point2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, (Point2{4, 7}));
  EXPECT_EQ(b - a, (Point2{2, 3}));
  EXPECT_EQ(a * 2.5, (Point2{2.5, 5}));
}

TEST(Point2Test, Distance) {
  EXPECT_DOUBLE_EQ(distance(Point2{0, 0}, Point2{3, 4}), 5);
  EXPECT_DOUBLE_EQ(distance(Point2{1, 1}, Point2{1, 1}), 0);
}

TEST(Point2Test, CrossSignGivesTurnDirection) {
  Point2 o{0, 0}, a{1, 0};
  EXPECT_GT(cross(o, a, Point2{1, 1}), 0) << "left turn";
  EXPECT_LT(cross(o, a, Point2{1, -1}), 0) << "right turn";
  EXPECT_DOUBLE_EQ(cross(o, a, Point2{2, 0}), 0) << "collinear";
}

TEST(Point2Test, Dot) {
  EXPECT_DOUBLE_EQ(dot(Point2{1, 0}, Point2{0, 1}), 0) << "perpendicular";
  EXPECT_DOUBLE_EQ(dot(Point2{2, 3}, Point2{4, 5}), 23);
}

TEST(Point2Test, Streams) {
  std::ostringstream os;
  os << Point2{1.5, -2};
  EXPECT_EQ(os.str(), "(1.5,-2)");
}

TEST(Point3Test, ArithmeticAndProjection) {
  Point3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Point3{5, 7, 9}));
  EXPECT_EQ(b - a, (Point3{3, 3, 3}));
  EXPECT_EQ(a.xy(), (Point2{1, 2}));
  EXPECT_DOUBLE_EQ(distance(Point3{0, 0, 0}, Point3{2, 3, 6}), 7);
}

TEST(Point3Test, Streams) {
  std::ostringstream os;
  os << Point3{1, 2, 3};
  EXPECT_EQ(os.str(), "(1,2,3)");
}

}  // namespace
}  // namespace mw::geo
