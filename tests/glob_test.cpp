#include "glob/glob.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mw::glob {
namespace {

using mw::util::ParseError;

// --- parsing the paper's own examples (§3.1) --------------------------------

TEST(GlobParseTest, SymbolicPoint) {
  Glob g = Glob::parse("SC/3/3216/lightswitch1");
  EXPECT_TRUE(g.isSymbolic());
  EXPECT_EQ(g.depth(), 4u);
  EXPECT_EQ(g.name(), "lightswitch1");
  EXPECT_EQ(g.prefix(), "SC/3/3216");
  EXPECT_EQ(g.geometryKind(), GeometryKind::Region);
}

TEST(GlobParseTest, CoordinatePoint) {
  Glob g = Glob::parse("SC/3/3216/(12,3,4)");
  EXPECT_TRUE(g.isCoordinate());
  EXPECT_EQ(g.pathString(), "SC/3/3216");
  ASSERT_EQ(g.coords().size(), 1u);
  EXPECT_EQ(g.coords()[0], (geo::Point3{12, 3, 4}));
  EXPECT_EQ(g.geometryKind(), GeometryKind::Point);
}

TEST(GlobParseTest, CoordinateLine) {
  Glob g = Glob::parse("SC/3/3216/(1,3),(4,5)");
  ASSERT_EQ(g.coords().size(), 2u);
  EXPECT_EQ(g.coords()[0], (geo::Point3{1, 3, 0}));
  EXPECT_EQ(g.coords()[1], (geo::Point3{4, 5, 0}));
  EXPECT_EQ(g.geometryKind(), GeometryKind::Line);
}

TEST(GlobParseTest, CoordinatePolygonRoom) {
  Glob g = Glob::parse("SC/3/(45,12),(45,40),(65,40),(65,12)");
  EXPECT_EQ(g.pathString(), "SC/3");
  ASSERT_EQ(g.coords().size(), 4u);
  EXPECT_EQ(g.geometryKind(), GeometryKind::Polygon);
  auto poly = g.asPolygon();
  ASSERT_TRUE(poly.has_value());
  EXPECT_DOUBLE_EQ(poly->area(), 20.0 * 28.0);
}

TEST(GlobParseTest, SymbolicRegion) {
  Glob g = Glob::parse("SC/3/3216");
  EXPECT_TRUE(g.isSymbolic());
  EXPECT_EQ(g.name(), "3216");
  EXPECT_EQ(g.geometryKind(), GeometryKind::Region);
}

TEST(GlobParseTest, NegativeAndFractionalCoordinates) {
  Glob g = Glob::parse("SC/(-1.5,2.25)");
  ASSERT_EQ(g.coords().size(), 1u);
  EXPECT_DOUBLE_EQ(g.coords()[0].x, -1.5);
  EXPECT_DOUBLE_EQ(g.coords()[0].y, 2.25);
}

TEST(GlobParseTest, MalformedInputsThrow) {
  EXPECT_THROW(Glob::parse(""), ParseError);
  EXPECT_THROW(Glob::parse("SC//3"), ParseError);
  EXPECT_THROW(Glob::parse("SC/3/"), ParseError);
  EXPECT_THROW(Glob::parse("SC/(1)"), ParseError);         // tuple needs >= 2 numbers
  EXPECT_THROW(Glob::parse("SC/(1,2"), ParseError);        // unterminated
  EXPECT_THROW(Glob::parse("SC/(1,2)x"), ParseError);      // junk after tuple
  EXPECT_THROW(Glob::parse("SC/(a,b)"), ParseError);       // not numbers
  EXPECT_THROW(Glob::parse("SC/(1,2),"), ParseError);      // dangling comma
}

// --- round-tripping ----------------------------------------------------------

TEST(GlobRoundTripTest, SymbolicAndCoordinateFormsSurvive) {
  for (const char* text :
       {"SC/3/3216/lightswitch1", "SC/3/3216/(12,3,4)", "SC/3/3216/(1,3),(4,5)", "SC/3/3216",
        "SC/3/(45,12),(45,40),(65,40),(65,12)"}) {
    Glob g = Glob::parse(text);
    EXPECT_EQ(Glob::parse(g.str()), g) << text;
    EXPECT_EQ(g.str(), text) << "canonical form preserved";
  }
}

// --- construction ------------------------------------------------------------

TEST(GlobBuildTest, SymbolicFactoryValidates) {
  EXPECT_THROW(Glob::symbolic({}), mw::util::ContractError);
  EXPECT_THROW(Glob::symbolic({"SC", ""}), mw::util::ContractError);
  EXPECT_THROW(Glob::symbolic({"SC", "a/b"}), mw::util::ContractError);
  EXPECT_THROW(Glob::symbolic({"SC", "(1,2)"}), mw::util::ContractError);
  Glob g = Glob::symbolic({"SC", "3", "3216"});
  EXPECT_EQ(g.str(), "SC/3/3216");
}

TEST(GlobBuildTest, CoordinateFactoryValidates) {
  EXPECT_THROW(Glob::coordinate({"SC"}, {}), mw::util::ContractError);
  Glob g = Glob::coordinate({"SC", "3"}, {{1, 2, 0}});
  EXPECT_EQ(g.str(), "SC/3/(1,2)");
}

// --- hierarchy operations ----------------------------------------------------

TEST(GlobHierarchyTest, PrefixRelation) {
  Glob building = Glob::parse("SC");
  Glob floor = Glob::parse("SC/3");
  Glob room = Glob::parse("SC/3/3216");
  Glob otherFloor = Glob::parse("SC/2");
  EXPECT_TRUE(building.isPrefixOf(room));
  EXPECT_TRUE(floor.isPrefixOf(room));
  EXPECT_TRUE(room.isPrefixOf(room));
  EXPECT_FALSE(room.isPrefixOf(floor));
  EXPECT_FALSE(otherFloor.isPrefixOf(room));
}

TEST(GlobHierarchyTest, TruncationForPrivacy) {
  // §4.5: "privacy constraints that specify that a user's location can only
  // be revealed upto a certain granularity (like a room or a floor)".
  Glob precise = Glob::parse("SC/3/3216/(12,3,4)");
  EXPECT_EQ(precise.truncated(2).str(), "SC/3");
  EXPECT_EQ(precise.truncated(3).str(), "SC/3/3216");
  EXPECT_EQ(precise.truncated(10).str(), "SC/3/3216") << "clamped to depth";
  EXPECT_TRUE(precise.truncated(2).isSymbolic()) << "coordinates are dropped";
}

TEST(GlobGeometryTest, AsPointAndMbr) {
  Glob pt = Glob::parse("SC/3/(7,8)");
  ASSERT_TRUE(pt.asPoint().has_value());
  EXPECT_EQ(*pt.asPoint(), (geo::Point2{7, 8}));
  EXPECT_EQ(pt.asPolygon(), std::nullopt);

  Glob poly = Glob::parse("SC/3/(0,0),(4,0),(4,2),(0,2)");
  EXPECT_EQ(poly.asPoint(), std::nullopt);
  EXPECT_EQ(poly.mbr(), geo::Rect::fromOrigin({0, 0}, 4, 2));

  Glob sym = Glob::parse("SC/3/3216");
  EXPECT_TRUE(sym.mbr().empty()) << "symbolic GLOBs have no inline geometry";
}

}  // namespace
}  // namespace mw::glob
