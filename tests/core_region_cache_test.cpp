// Region population cache (the second cache level): objectsInRegion memoizes
// the population per (region, minProbability) key and revalidates members by
// readings epoch, so repolling an N-person region re-fuses only the objects
// that actually changed. These tests pin the invalidation edges: member epoch
// bumps, TTL expiry, sensor (de)registration, spatial-object insert/delete and
// population appear/disappear, asserted through the hit/miss/revalidation
// counters and the per-object fusion-cache counters underneath.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/location_service.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::minutes;
using mw::util::MobileObjectId;
using mw::util::msec;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

// Same world as core_service_test: floor (0,0)-(100,50), rooms A and B,
// two long-TTL Ubisense sensors plus one short-TTL badge sensor so TTL
// expiry can hit one member while the rest of the population stays fresh.
struct Fixture {
  VirtualClock clock;
  db::SpatialDatabase db;
  LocationService service;

  static constexpr double kRoomSide = 20;

  Fixture() : db(makeDb(clock)), service(clock, db) {}

  static db::SpatialDatabase makeDb(const util::Clock& clock) {
    db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
    auto addRoom = [&](const char* id, geo::Rect r) {
      db::SpatialObjectRow row;
      row.id = util::SpatialObjectId{id};
      row.globPrefix = "SC";
      row.objectType = db::ObjectType::Room;
      row.geometryType = db::GeometryType::Polygon;
      row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
      database.addObject(row);
    };
    addRoom("roomA", roomA());
    addRoom("roomB", roomB());

    db::SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.scaleMisidentifyByArea = true;
    ubi.quality.ttl = sec(30);
    database.registerSensor(ubi);
    db::SensorMeta ubi2 = ubi;
    ubi2.sensorId = SensorId{"ubi-2"};
    database.registerSensor(ubi2);
    db::SensorMeta badge = ubi;
    badge.sensorId = SensorId{"badge-1"};
    badge.quality.ttl = sec(2);  // expires long before the Ubisense readings
    database.registerSensor(badge);
    return database;
  }

  static geo::Rect roomA() { return geo::Rect::fromOrigin({0, 0}, kRoomSide, kRoomSide); }
  static geo::Rect roomB() { return geo::Rect::fromOrigin({40, 0}, kRoomSide, kRoomSide); }

  db::SensorReading reading(const char* sensor, const char* person, geo::Point2 where,
                            double radius = 0.5) {
    db::SensorReading r;
    r.sensorId = SensorId{sensor};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = radius;
    r.detectionTime = clock.now();
    return r;
  }

  void resetAllCounters() {
    service.resetFusionCacheCounters();
    service.resetRegionCacheCounters();
  }
};

bool contains(const std::vector<std::pair<MobileObjectId, double>>& population,
              const char* person) {
  for (const auto& [who, p] : population) {
    if (who == MobileObjectId{person}) return true;
  }
  return false;
}

TEST(RegionCacheTest, RepeatPollHitsCache) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {10, 10}));
  f.resetAllCounters();

  auto first = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.regionCacheHits(), 0u);
  ASSERT_EQ(first.size(), 2u);

  auto second = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(f.service.regionCacheRevalidations(), 0u);
  EXPECT_EQ(first, second);

  // A different threshold is a different key: its own miss, not a hit.
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.2);
  EXPECT_EQ(f.service.regionCacheMisses(), 2u);
}

TEST(RegionCacheTest, MovedMemberRevalidatesAlone) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {10, 10}));
  f.service.ingest(f.reading("ubi-1", "carol", {15, 15}));
  auto warm = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  ASSERT_EQ(warm.size(), 3u);

  // One of three moves: the repoll must re-fuse exactly that one member.
  f.service.ingest(f.reading("ubi-1", "alice", {6, 6}));
  f.resetAllCounters();
  auto population = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(f.service.regionCacheMisses(), 0u);
  EXPECT_EQ(f.service.regionCacheRevalidations(), 1u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);  // alice, and only alice
  EXPECT_EQ(population.size(), 3u);
}

TEST(RegionCacheTest, TtlExpiryRevalidatesOnlyTheExpiredMember) {
  Fixture f;
  // Both of bob's legs matter: the badge reading expires at 2 s, the
  // Ubisense one keeps him in the population, so expiry changes his epoch
  // without shrinking the population (no catalog move, no full rebuild).
  f.service.setFusionCacheTolerance(minutes(10));
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {10, 10}));
  f.service.ingest(f.reading("badge-1", "bob", {10, 10}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);

  f.clock.advance(sec(5));  // past badge TTL, within Ubisense TTL
  f.resetAllCounters();
  auto population = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(f.service.regionCacheMisses(), 0u);
  EXPECT_EQ(f.service.regionCacheRevalidations(), 1u);  // bob, and only bob
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);
  EXPECT_EQ(population.size(), 2u);
}

TEST(RegionCacheTest, SpatialObjectInsertRebuildsWithoutRefusing) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {10, 10}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);

  // A new spatial object moves the catalog epoch: the region cache must
  // rebuild (a desk could carry a usage region, a room could re-shape the
  // lattice) — but the per-object fused states are untouched, so the
  // rebuild is served entirely from the first cache level.
  db::SpatialObjectRow desk;
  desk.id = util::SpatialObjectId{"desk-1"};
  desk.globPrefix = "SC";
  desk.objectType = db::ObjectType::Other;
  desk.geometryType = db::GeometryType::Point;
  desk.points = {{3, 3}};
  f.db.addObject(desk);

  f.resetAllCounters();
  auto population = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.regionCacheHits(), 0u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 0u);  // epochs unchanged: L1 warm
  EXPECT_EQ(f.service.fusionCacheHits(), 2u);
  EXPECT_EQ(population.size(), 2u);

  // Deleting it bumps the catalog again: one more rebuild, still no fusion.
  ASSERT_TRUE(f.db.removeObject("SC", util::SpatialObjectId{"desk-1"}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 2u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 0u);
}

TEST(RegionCacheTest, SensorDeregistrationForcesFullRefusion) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {10, 10}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);

  // Dropping a sensor changes the evidence model for every object (its
  // readings must stop contributing), so the meta epoch shift invalidates
  // both cache levels: full rebuild AND every member re-fused.
  ASSERT_TRUE(f.db.deregisterSensor(SensorId{"badge-1"}));
  f.resetAllCounters();
  auto population = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.regionCacheHits(), 0u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 2u);  // alice and bob both re-fuse
  EXPECT_EQ(population.size(), 2u);

  EXPECT_FALSE(f.db.deregisterSensor(SensorId{"badge-1"}));  // already gone
}

TEST(RegionCacheTest, NewObjectAppearingInvalidates) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);

  // First reading for a new object grows the mobile population — a catalog
  // move, because a cached "who is in room A" answer that predates dave can
  // never contain him no matter how member epochs look.
  f.service.ingest(f.reading("ubi-1", "dave", {8, 8}));
  f.resetAllCounters();
  auto population = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_TRUE(contains(population, "dave"));
  EXPECT_TRUE(contains(population, "alice"));
}

TEST(RegionCacheTest, MovedAwayMemberDropsOutOnRevalidation) {
  Fixture f;
  f.service.setFusionCacheTolerance(minutes(10));
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {45, 5}));  // room B: never a candidate
  auto before = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_TRUE(contains(before, "alice"));

  // Alice walks to room B, spotted by the OTHER sensor (so her stale room-A
  // reading stays stored and she remains a discovery candidate); the fresher
  // reading wins conflict resolution and her room-A probability collapses.
  f.clock.advance(sec(5));
  f.service.ingest(f.reading("ubi-2", "alice", {45, 6}));
  f.resetAllCounters();
  auto after = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_FALSE(contains(after, "alice"));
  // She was still a candidate (her stale room-A evidence box intersects), so
  // this is a hit that re-fused her — not a rebuild.
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(f.service.regionCacheRevalidations(), 1u);

  auto roomB = f.service.objectsInRegion(Fixture::roomB(), 0.5);
  EXPECT_TRUE(contains(roomB, "alice"));
  EXPECT_TRUE(contains(roomB, "bob"));
}

TEST(RegionCacheTest, GlobKeyedPollSharesTheRectCache) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.resetAllCounters();

  auto byName = f.service.objectsInRegion("SC/roomA", 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  ASSERT_EQ(byName.size(), 1u);

  // The glob resolves to the same universe MBR, so the rect overload lands
  // on the same cache entry.
  auto byRect = f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(byName, byRect);

  EXPECT_THROW((void)f.service.objectsInRegion("SC/no-such-room", 0.5),
               mw::util::NotFoundError);
}

TEST(RegionCacheTest, CapacityBoundsEntriesAndEvictionMisses) {
  Fixture f;
  f.service.setRegionCacheCapacity(1);
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  f.service.ingest(f.reading("ubi-1", "bob", {45, 5}));
  f.resetAllCounters();

  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);  // miss, cached
  (void)f.service.objectsInRegion(Fixture::roomB(), 0.5);  // miss, evicts A
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);  // miss again
  EXPECT_EQ(f.service.regionCacheMisses(), 3u);
  EXPECT_EQ(f.service.regionCacheHits(), 0u);
}

TEST(RegionCacheTest, ExplicitInvalidationFlushesBothLevels) {
  Fixture f;
  f.service.ingest(f.reading("ubi-1", "alice", {5, 5}));
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);

  // invalidateFusionCache drops the fused states the region members point
  // at, so it must flush the region cache too — a member whose state is
  // gone from L1 can't be "fresh".
  f.service.invalidateFusionCache();
  f.resetAllCounters();
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 1u);

  // invalidateRegionCache alone keeps L1 warm.
  f.service.invalidateRegionCache();
  f.resetAllCounters();
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.5);
  EXPECT_EQ(f.service.regionCacheMisses(), 1u);
  EXPECT_EQ(f.service.fusionCacheMisses(), 0u);
  EXPECT_EQ(f.service.fusionCacheHits(), 1u);
}

// Exercised under TSan in CI: region polls racing batch ingest and sensor
// (de)registration must stay data-race free and conservatively fresh.
TEST(RegionCacheTest, PollsConcurrentWithBatchIngest) {
  Fixture f;
  constexpr int kPeople = 8;
  std::vector<db::SensorReading> seed;
  for (int i = 0; i < kPeople; ++i) {
    seed.push_back(f.reading("ubi-1", ("p" + std::to_string(i)).c_str(),
                             {2.0 + static_cast<double>(i), 5.0}));
  }
  f.service.ingestBatch(seed);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 0; round < 50; ++round) {
      std::vector<db::SensorReading> batch;
      for (int i = 0; i < kPeople; ++i) {
        batch.push_back(f.reading(i % 2 ? "ubi-1" : "ubi-2",
                                  ("p" + std::to_string(i)).c_str(),
                                  {2.0 + static_cast<double>((i + round) % 16), 5.0}));
      }
      f.service.ingestBatch(batch);
    }
    stop.store(true);
  });
  std::vector<std::thread> pollers;
  for (int t = 0; t < 3; ++t) {
    pollers.emplace_back([&] {
      while (!stop.load()) {
        auto population = f.service.objectsInRegion(Fixture::roomA(), 0.2);
        EXPECT_LE(population.size(), static_cast<std::size_t>(kPeople));
      }
    });
  }
  writer.join();
  for (auto& t : pollers) t.join();

  // Quiescent repoll: every member fresh, nothing re-fused.
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.2);
  f.resetAllCounters();
  (void)f.service.objectsInRegion(Fixture::roomA(), 0.2);
  EXPECT_EQ(f.service.regionCacheHits(), 1u);
  EXPECT_EQ(f.service.regionCacheRevalidations(), 0u);
}

}  // namespace
}  // namespace mw::core
