// Remote access tests: the Location Service over the MicroOrb, in-process
// and over TCP loopback (§7's CORBA deployment path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/codec.hpp"
#include "core/middlewhere.hpp"
#include "core/registry.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

std::unique_ptr<Middlewhere> makeStack(const util::Clock& clock) {
  auto mw = std::make_unique<Middlewhere>(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  db::SpatialObjectRow room;
  room.id = util::SpatialObjectId{"roomA"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  mw->database().addObject(room);

  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  mw->database().registerSensor(ubi);
  return mw;
}

db::SensorReading makeReading(const util::Clock& clock, geo::Point2 where) {
  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{"alice"};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

// --- codec ------------------------------------------------------------------------

TEST(CodecTest, RectRoundTrip) {
  util::ByteWriter w;
  encodeRect(w, geo::Rect::fromOrigin({1.5, 2.5}, 3, 4));
  encodeRect(w, geo::Rect{});
  util::ByteReader r(w.bytes());
  EXPECT_EQ(decodeRect(r), geo::Rect::fromOrigin({1.5, 2.5}, 3, 4));
  EXPECT_TRUE(decodeRect(r).empty());
}

TEST(CodecTest, ReadingRoundTrip) {
  VirtualClock clock;
  db::SensorReading reading = makeReading(clock, {7, 8});
  reading.globPrefix = "SC/3";
  reading.symbolicRegion = geo::Rect::fromOrigin({0, 0}, 5, 5);
  util::ByteWriter w;
  encodeReading(w, reading);
  util::ByteReader r(w.bytes());
  db::SensorReading back = decodeReading(r);
  EXPECT_EQ(back.sensorId, reading.sensorId);
  EXPECT_EQ(back.globPrefix, reading.globPrefix);
  EXPECT_EQ(back.mobileObjectId, reading.mobileObjectId);
  EXPECT_EQ(back.location, reading.location);
  EXPECT_EQ(back.detectionRadius, reading.detectionRadius);
  EXPECT_EQ(back.detectionTime, reading.detectionTime);
  EXPECT_EQ(back.symbolicRegion, reading.symbolicRegion);
}

TEST(CodecTest, EstimateRoundTrip) {
  fusion::LocationEstimate est;
  est.region = geo::Rect::fromOrigin({1, 2}, 3, 4);
  est.probability = 0.87;
  est.cls = fusion::ProbabilityClass::High;
  est.supporting = {SensorId{"a"}, SensorId{"b"}};
  est.discarded = {SensorId{"c"}};
  util::ByteWriter w;
  encodeEstimate(w, est);
  util::ByteReader r(w.bytes());
  auto back = decodeEstimate(r);
  EXPECT_EQ(back.region, est.region);
  EXPECT_DOUBLE_EQ(back.probability, est.probability);
  EXPECT_EQ(back.cls, est.cls);
  EXPECT_EQ(back.supporting, est.supporting);
  EXPECT_EQ(back.discarded, est.discarded);
}

// --- in-process remote ---------------------------------------------------------------

TEST(RemoteTest, LocalClientFullLoop) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();

  client->ingest(makeReading(clock, {5, 5}));
  auto est = client->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->region.contains(geo::Point2{5, 5}));
  EXPECT_EQ(client->locateSymbolic(MobileObjectId{"alice"}), "SC/roomA");
  EXPECT_GT(client->probabilityInRegion(MobileObjectId{"alice"},
                                        geo::Rect::fromOrigin({0, 0}, 20, 20)),
            0.9);
  EXPECT_EQ(client->locate(MobileObjectId{"ghost"}), std::nullopt);
}

TEST(RemoteTest, SubscriptionOverOrb) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();

  std::vector<Notification> notes;
  auto id = client->subscribe(geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.5,
                              [&](const Notification& n) { notes.push_back(n); });
  EXPECT_TRUE(id.valid());
  client->ingest(makeReading(clock, {5, 5}));
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].object.str(), "alice");
  EXPECT_GT(notes[0].probability, 0.5);

  EXPECT_TRUE(client->unsubscribe(id));
  client->ingest(makeReading(clock, {6, 5}));
  EXPECT_EQ(notes.size(), 1u);
}

TEST(RemoteTest, ServiceRegistryDiscovery) {
  // Gaia-style discovery: register the service, look it up, use it.
  VirtualClock clock;
  auto mw = std::make_shared<Middlewhere>(clock, geo::Rect::fromOrigin({0, 0}, 10, 10), "SC");
  ServiceRegistry registry;
  registry.registerService<Middlewhere>("LocationService", mw);
  EXPECT_EQ(registry.list(), (std::vector<std::string>{"LocationService"}));
  auto found = registry.lookup<Middlewhere>("LocationService");
  ASSERT_TRUE(found != nullptr);
  EXPECT_EQ(registry.lookup<Middlewhere>("nope"), nullptr);
  EXPECT_EQ(registry.lookup<int>("LocationService"), nullptr) << "wrong type";
  EXPECT_TRUE(registry.unregisterService("LocationService"));
  EXPECT_FALSE(registry.unregisterService("LocationService"));
}

// --- TCP remote -------------------------------------------------------------------------

TEST(RemoteTest, TcpClientFullLoop) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  client->ingest(makeReading(clock, {5, 5}));
  auto est = client->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

TEST(RemoteTest, OnewayIngestOverTcp) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  client->ingestAsync(makeReading(clock, {5, 5}));
  // Oneway: no reply to wait on; poll the service until the reading lands.
  std::optional<fusion::LocationEstimate> est;
  for (int i = 0; i < 200 && !est; ++i) {
    est = client->locate(MobileObjectId{"alice"});
    if (!est) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

TEST(RemoteTest, TcpSubscriptionDeliversEvents) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  std::atomic<int> count{0};
  client->subscribe(geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.5,
                    [&](const Notification&) { count.fetch_add(1); });
  client->ingest(makeReading(clock, {5, 5}));
  for (int i = 0; i < 200 && count.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace mw::core
