// Remote access tests: the Location Service over the MicroOrb, in-process
// and over TCP loopback (§7's CORBA deployment path).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/codec.hpp"
#include "core/middlewhere.hpp"
#include "core/registry.hpp"
#include "orb/rpc.hpp"
#include "orb/tcp.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::SensorId;
using mw::util::VirtualClock;

std::unique_ptr<Middlewhere> makeStack(const util::Clock& clock) {
  auto mw = std::make_unique<Middlewhere>(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC");
  db::SpatialObjectRow room;
  room.id = util::SpatialObjectId{"roomA"};
  room.globPrefix = "SC";
  room.objectType = db::ObjectType::Room;
  room.geometryType = db::GeometryType::Polygon;
  room.points = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  mw->database().addObject(room);

  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = util::sec(30);
  mw->database().registerSensor(ubi);
  return mw;
}

db::SensorReading makeReading(const util::Clock& clock, geo::Point2 where,
                              const std::string& object = "alice") {
  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{object};
  r.location = where;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

/// Polls until the service has accepted `expected` readings (oneway traffic
/// has no reply to wait on).
void waitForIngested(Middlewhere& mw, std::uint64_t expected) {
  for (int i = 0; i < 2000 && mw.locationService().ingestedReadings() < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(mw.locationService().ingestedReadings(), expected);
}

// --- codec ------------------------------------------------------------------------

TEST(CodecTest, RectRoundTrip) {
  util::ByteWriter w;
  encodeRect(w, geo::Rect::fromOrigin({1.5, 2.5}, 3, 4));
  encodeRect(w, geo::Rect{});
  util::ByteReader r(w.bytes());
  EXPECT_EQ(decodeRect(r), geo::Rect::fromOrigin({1.5, 2.5}, 3, 4));
  EXPECT_TRUE(decodeRect(r).empty());
}

TEST(CodecTest, ReadingRoundTrip) {
  VirtualClock clock;
  db::SensorReading reading = makeReading(clock, {7, 8});
  reading.globPrefix = "SC/3";
  reading.symbolicRegion = geo::Rect::fromOrigin({0, 0}, 5, 5);
  util::ByteWriter w;
  encodeReading(w, reading);
  util::ByteReader r(w.bytes());
  db::SensorReading back = decodeReading(r);
  EXPECT_EQ(back.sensorId, reading.sensorId);
  EXPECT_EQ(back.globPrefix, reading.globPrefix);
  EXPECT_EQ(back.mobileObjectId, reading.mobileObjectId);
  EXPECT_EQ(back.location, reading.location);
  EXPECT_EQ(back.detectionRadius, reading.detectionRadius);
  EXPECT_EQ(back.detectionTime, reading.detectionTime);
  EXPECT_EQ(back.symbolicRegion, reading.symbolicRegion);
}

TEST(CodecTest, EstimateRoundTrip) {
  fusion::LocationEstimate est;
  est.region = geo::Rect::fromOrigin({1, 2}, 3, 4);
  est.probability = 0.87;
  est.cls = fusion::ProbabilityClass::High;
  est.supporting = {SensorId{"a"}, SensorId{"b"}};
  est.discarded = {SensorId{"c"}};
  util::ByteWriter w;
  encodeEstimate(w, est);
  util::ByteReader r(w.bytes());
  auto back = decodeEstimate(r);
  EXPECT_EQ(back.region, est.region);
  EXPECT_DOUBLE_EQ(back.probability, est.probability);
  EXPECT_EQ(back.cls, est.cls);
  EXPECT_EQ(back.supporting, est.supporting);
  EXPECT_EQ(back.discarded, est.discarded);
}

// --- in-process remote ---------------------------------------------------------------

TEST(RemoteTest, LocalClientFullLoop) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();

  client->ingest(makeReading(clock, {5, 5}));
  auto est = client->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(est->region.contains(geo::Point2{5, 5}));
  EXPECT_EQ(client->locateSymbolic(MobileObjectId{"alice"}), "SC/roomA");
  EXPECT_GT(client->probabilityInRegion(MobileObjectId{"alice"},
                                        geo::Rect::fromOrigin({0, 0}, 20, 20)),
            0.9);
  EXPECT_EQ(client->locate(MobileObjectId{"ghost"}), std::nullopt);
}

TEST(RemoteTest, SubscriptionOverOrb) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();

  std::vector<Notification> notes;
  auto id = client->subscribe(geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.5,
                              [&](const Notification& n) { notes.push_back(n); });
  EXPECT_TRUE(id.valid());
  client->ingest(makeReading(clock, {5, 5}));
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].object.str(), "alice");
  EXPECT_GT(notes[0].probability, 0.5);

  EXPECT_TRUE(client->unsubscribe(id));
  client->ingest(makeReading(clock, {6, 5}));
  EXPECT_EQ(notes.size(), 1u);
}

TEST(RemoteTest, ServiceRegistryDiscovery) {
  // Gaia-style discovery: register the service, look it up, use it.
  VirtualClock clock;
  auto mw = std::make_shared<Middlewhere>(clock, geo::Rect::fromOrigin({0, 0}, 10, 10), "SC");
  ServiceRegistry registry;
  registry.registerService<Middlewhere>("LocationService", mw);
  EXPECT_EQ(registry.list(), (std::vector<std::string>{"LocationService"}));
  auto found = registry.lookup<Middlewhere>("LocationService");
  ASSERT_TRUE(found != nullptr);
  EXPECT_EQ(registry.lookup<Middlewhere>("nope"), nullptr);
  EXPECT_EQ(registry.lookup<int>("LocationService"), nullptr) << "wrong type";
  EXPECT_TRUE(registry.unregisterService("LocationService"));
  EXPECT_FALSE(registry.unregisterService("LocationService"));
}

// --- TCP remote -------------------------------------------------------------------------

TEST(RemoteTest, TcpClientFullLoop) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  client->ingest(makeReading(clock, {5, 5}));
  auto est = client->locate(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

TEST(RemoteTest, OnewayIngestOverTcp) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  client->ingestAsync(makeReading(clock, {5, 5}));
  // Oneway: no reply to wait on; poll the service until the reading lands.
  std::optional<fusion::LocationEstimate> est;
  for (int i = 0; i < 200 && !est; ++i) {
    est = client->locate(MobileObjectId{"alice"});
    if (!est) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
}

TEST(RemoteTest, TcpSubscriptionDeliversEvents) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  std::atomic<int> count{0};
  client->subscribe(geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt, 0.5,
                    [&](const Notification&) { count.fetch_add(1); });
  client->ingest(makeReading(clock, {5, 5}));
  for (int i = 0; i < 200 && count.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 1);
}

// --- wire batches -----------------------------------------------------------------

TEST(IngestBatchTest, BlockingBatchLandsEveryReading) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();

  std::vector<db::SensorReading> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(makeReading(clock, {1.0 + i, 5}, "obj" + std::to_string(i % 3)));
  }
  client->ingestBatch(batch);
  EXPECT_EQ(mw->locationService().ingestedBatches(), 1u);
  EXPECT_EQ(mw->locationService().ingestedReadings(), 10u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client->locate(MobileObjectId{"obj" + std::to_string(i)}).has_value()) << i;
  }
}

TEST(IngestBatchTest, EmptyBatchIsANoop) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  auto client = mw->connectLocal();
  client->ingestBatch({});
  client->ingestBatchAsync({});
  EXPECT_EQ(mw->locationService().ingestedReadings(), 0u);
}

TEST(IngestBatchTest, OnewayBatchOverTcpDrains) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto client = Middlewhere::connectRemote("127.0.0.1", port);

  std::vector<db::SensorReading> batch;
  for (int i = 0; i < 32; ++i) batch.push_back(makeReading(clock, {5, 5}));
  client->ingestBatchAsync(batch);
  waitForIngested(*mw, 32);
  EXPECT_EQ(mw->locationService().ingestedBatches(), 1u);
  EXPECT_TRUE(client->locate(MobileObjectId{"alice"}).has_value());
}

TEST(IngestBatchTest, RemoteBatchMatchesSequentialOracle) {
  // The same reading sequence, ingested one call at a time into one stack and
  // as wire batches through the dispatcher into another, must produce
  // byte-identical location estimates: sharded batch ingest preserves each
  // object's reading order.
  VirtualClock clock;
  const std::vector<std::string> objects{"bob", "carol", "dave"};
  std::vector<db::SensorReading> sequence;
  for (int i = 0; i < 60; ++i) {
    const auto& who = objects[static_cast<std::size_t>(i) % objects.size()];
    sequence.push_back(makeReading(clock, {1.0 + (i % 18), 1.0 + (i % 12)}, who));
  }

  auto sequential = makeStack(clock);
  auto seqClient = sequential->connectLocal();
  for (const auto& r : sequence) seqClient->ingest(r);

  auto batched = makeStack(clock);
  std::uint16_t port = batched->listen();
  auto batchClient = Middlewhere::connectRemote("127.0.0.1", port);
  for (std::size_t off = 0; off < sequence.size(); off += 20) {
    batchClient->ingestBatch(
        std::span<const db::SensorReading>(sequence).subspan(off, 20));
  }

  for (const auto& who : objects) {
    auto a = seqClient->locate(MobileObjectId{who});
    auto b = batchClient->locate(MobileObjectId{who});
    ASSERT_TRUE(a.has_value()) << who;
    ASSERT_TRUE(b.has_value()) << who;
    util::ByteWriter wa, wb;
    encodeEstimate(wa, *a);
    encodeEstimate(wb, *b);
    EXPECT_EQ(wa.bytes(), wb.bytes()) << who;
  }
}

TEST(IngestBatchTest, BatchingClientFlushesBySize) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto rpc = std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", port));

  BatchingIngestClient::Options opts;
  opts.maxBatch = 4;
  opts.maxDelay = util::sec(60);  // never fires in this test
  BatchingIngestClient batcher(rpc, opts);
  for (int i = 0; i < 8; ++i) batcher.ingest(makeReading(clock, {5, 5}));
  waitForIngested(*mw, 8);
  EXPECT_EQ(batcher.batchesSent(), 2u);
  EXPECT_EQ(batcher.readingsSent(), 8u);
  EXPECT_EQ(mw->locationService().ingestedBatches(), 2u);
}

TEST(IngestBatchTest, BatchingClientFlushesOnDeadline) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto rpc = std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", port));

  BatchingIngestClient::Options opts;
  opts.maxBatch = 1000;  // size threshold never reached
  opts.maxDelay = util::msec(5);
  BatchingIngestClient batcher(rpc, opts);
  batcher.ingest(makeReading(clock, {5, 5}));
  batcher.ingest(makeReading(clock, {6, 5}));
  waitForIngested(*mw, 2);  // the flusher thread shipped the partial batch
  EXPECT_EQ(batcher.batchesSent(), 1u);
}

TEST(IngestBatchTest, BatchingClientFlushesOnDestructionAndExplicitly) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto rpc = std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", port));

  BatchingIngestClient::Options opts;
  opts.maxBatch = 1000;
  opts.maxDelay = util::sec(60);
  {
    BatchingIngestClient batcher(rpc, opts);
    batcher.ingest(makeReading(clock, {5, 5}));
    batcher.flush();
    EXPECT_EQ(batcher.batchesSent(), 1u);
    batcher.flush();  // empty buffer: no extra batch
    EXPECT_EQ(batcher.batchesSent(), 1u);
    batcher.ingest(makeReading(clock, {6, 5}));
    batcher.ingest(makeReading(clock, {7, 5}));
  }  // destructor ships the remainder
  waitForIngested(*mw, 3);
  EXPECT_EQ(mw->locationService().ingestedBatches(), 2u);
}

TEST(IngestBatchTest, BatchingClientCountsFlushFailuresOnDeadConnection) {
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();
  auto rpc = std::make_shared<orb::RpcClient>(orb::tcpConnect("127.0.0.1", port));

  BatchingIngestClient::Options opts;
  opts.maxBatch = 1000;
  opts.maxDelay = util::sec(60);
  BatchingIngestClient batcher(rpc, opts);
  batcher.ingest(makeReading(clock, {5, 5}));
  batcher.flush();
  EXPECT_EQ(batcher.flushFailures(), 0u);
  EXPECT_EQ(batcher.droppedReadings(), 0u);

  mw.reset();  // the service dies with readings still to come

  // A flush on the dead connection drops the batch — oneway semantics, the
  // caller keeps running — but the drop must be counted, not swallowed.
  // TCP surfaces the peer's death lazily (first write after close may still
  // be buffered), so feed flushes until the failure registers.
  for (int i = 0; i < 200 && batcher.flushFailures() == 0; ++i) {
    batcher.ingest(makeReading(clock, {6, 5}));
    batcher.flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(batcher.flushFailures(), 0u);
  EXPECT_GT(batcher.droppedReadings(), 0u);
}

// --- concurrent serving -----------------------------------------------------------

TEST(RemoteConcurrencyTest, ManyClientsMixedWorkloadOverTcp) {
  // The TSan workhorse: several clients hammer one server with every method
  // concurrently — blocking ingest, oneway ingest, pull queries,
  // subscribe/unsubscribe churn — through the dispatcher lanes.
  VirtualClock clock;
  auto mw = makeStack(clock);
  ASSERT_GT(mw->rpcServer().dispatchLanes(), 0u) << "dispatcher on by default";
  std::uint16_t port = mw->listen();

  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<int> notifications{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto client = Middlewhere::connectRemote("127.0.0.1", port);
      const std::string mine = "obj" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        client->ingest(makeReading(clock, {1.0 + t, 1.0 + (i % 10)}, mine));
        client->ingestAsync(makeReading(clock, {2.0 + t, 1.0 + (i % 10)}, "shared"));
        (void)client->locate(MobileObjectId{mine});
        (void)client->locateSymbolic(MobileObjectId{"shared"});
        (void)client->probabilityInRegion(MobileObjectId{mine},
                                          geo::Rect::fromOrigin({0, 0}, 20, 20));
        if (i % 5 == 0) {
          auto id = client->subscribe(geo::Rect::fromOrigin({0, 0}, 20, 20), std::nullopt,
                                      0.5, [&](const Notification&) {
                                        notifications.fetch_add(1, std::memory_order_relaxed);
                                      });
          client->ingest(makeReading(clock, {3.0 + t, 4}, mine));
          client->unsubscribe(id);
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto perThread = kIters * 2 + kIters / 5;  // blocking + oneway + subscribe probes
  waitForIngested(*mw, static_cast<std::uint64_t>(kThreads * perThread));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(mw->locationService().locateObject(MobileObjectId{"obj" + std::to_string(t)}))
        << t;
  }
  const auto stats = mw->rpcServer().stats();
  EXPECT_EQ(stats.undecodableFrames, 0u);
  EXPECT_EQ(stats.unknownMethodErrors, 0u);
  EXPECT_GT(stats.dispatchedRequests, 0u);
  EXPECT_GT(notifications.load(), 0);
}

TEST(RemoteConcurrencyTest, ConcurrentSameObjectIngestKeepsLaneOrder) {
  // Two connections racing on the same object: the hash(object) lane rule
  // serializes them onto one lane, so the last write each connection sends
  // is one of the two final positions (no interleaving corruption), and the
  // estimate stays well-formed throughout.
  VirtualClock clock;
  auto mw = makeStack(clock);
  std::uint16_t port = mw->listen();

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      auto client = Middlewhere::connectRemote("127.0.0.1", port);
      for (int i = 0; i < 50; ++i) {
        client->ingestAsync(makeReading(clock, {1.0 + t * 10, 1.0 + (i % 15)}, "alice"));
      }
    });
  }
  std::thread reader([&] {
    auto client = Middlewhere::connectRemote("127.0.0.1", port);
    for (int i = 0; i < 30; ++i) {
      auto est = client->locate(MobileObjectId{"alice"});
      if (est) {
        EXPECT_GE(est->probability, 0.0);
        EXPECT_LE(est->probability, 1.0);
      }
    }
  });
  for (auto& w : writers) w.join();
  reader.join();
  waitForIngested(*mw, 100);
  EXPECT_TRUE(mw->locationService().locateObject(MobileObjectId{"alice"}).has_value());
}

}  // namespace
}  // namespace mw::core
