// End-to-end integration tests: simulated building, four sensor
// technologies, the MicroOrb, the spatial database, fusion and triggers all
// wired together — the Fig-1 stack — plus failure injection.
#include <gtest/gtest.h>

#include "adapters/biometric.hpp"
#include "adapters/card_reader.hpp"
#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace mw {
namespace {

using core::Middlewhere;
using core::Notification;
using mw::util::AdapterId;
using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

struct Stack {
  VirtualClock clock;
  sim::Blueprint blueprint;
  std::unique_ptr<Middlewhere> mw;
  std::unique_ptr<sim::World> world;

  explicit Stack(std::uint64_t seed = 42)
      : blueprint(sim::generateBlueprint({.building = "SC", .floors = 1, .roomsPerSide = 4})) {
    mw = std::make_unique<Middlewhere>(clock, blueprint.universe, blueprint.frames());
    blueprint.populate(mw->database());
    mw->locationService().connectivity() = blueprint.connectivity();
    world = std::make_unique<sim::World>(blueprint, seed);
  }

  core::LocationService& service() { return mw->locationService(); }

  std::shared_ptr<adapters::UbisenseAdapter> ubisense(const char* sensor) {
    auto a = std::make_shared<adapters::UbisenseAdapter>(
        AdapterId{std::string(sensor) + "-adapter"}, SensorId{sensor},
        adapters::UbisenseConfig{blueprint.universe, 0.5, 1.0, sec(5), ""});
    a->registerWith(mw->database());
    return a;
  }

  std::shared_ptr<adapters::RfidBadgeAdapter> rfid(const char* sensor, geo::Point2 base) {
    auto a = std::make_shared<adapters::RfidBadgeAdapter>(
        AdapterId{std::string(sensor) + "-adapter"}, SensorId{sensor},
        adapters::RfidConfig{base, 15.0, 1.0, sec(60), ""});
    a->registerWith(mw->database());
    return a;
  }
};

TEST(IntegrationTest, TrackedPersonIsLocatedInTheRightRoom) {
  Stack stack;
  stack.world->addPerson({MobileObjectId{"alice"}, "101", 4.0, 1.0, 1.0, 0.0});

  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { stack.service().ingest(r); });
  scenario.addAdapter(stack.ubisense("ubi-1"), sec(1));
  scenario.run(sec(10));

  auto est = stack.service().locateObject(MobileObjectId{"alice"});
  ASSERT_TRUE(est.has_value());
  auto trueRoom = stack.world->currentRoom(MobileObjectId{"alice"});
  ASSERT_TRUE(trueRoom.has_value());
  // The estimate's center must be near the true position. The last reading
  // can be up to ~2 s old (1 s sampling period + detection jitter) while
  // alice walks at 4 ft/s, so allow 2 s of walking plus sensor noise.
  auto truePos = stack.world->position(MobileObjectId{"alice"});
  EXPECT_LT(geo::distance(est->region.center(), *truePos), 9.0);

  auto symbolic = stack.service().locateSymbolic(MobileObjectId{"alice"});
  ASSERT_TRUE(symbolic.has_value());
  EXPECT_EQ(symbolic->name(), *trueRoom);
}

TEST(IntegrationTest, MultiTechnologyFusionTracksThroughTheBuilding) {
  Stack stack;
  stack.world->addPerson({MobileObjectId{"bob"}, "102", 4.0, 1.0, 1.0, 0.0});

  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { stack.service().ingest(r); });
  scenario.addAdapter(stack.ubisense("ubi-1"), sec(1));
  scenario.addAdapter(stack.rfid("rf-1", stack.blueprint.centerOf("102")), sec(2));
  scenario.run(sec(8));

  auto est = stack.service().locateObject(MobileObjectId{"bob"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GE(est->supporting.size(), 1u);
  // Ubisense (6") dominates the estimate; RFID's 15 ft region reinforces.
  EXPECT_LT(est->region.width(), 2.0);
  EXPECT_GT(est->probability, 0.9);
}

TEST(IntegrationTest, RegionTriggerFiresWhenPersonWalksIn) {
  Stack stack;
  stack.world->addPerson({MobileObjectId{"carol"}, "101", 6.0, 1.0, 0.0, 0.0});

  const geo::Rect room104 = stack.blueprint.roomNamed("104")->rect;
  std::vector<Notification> notes;
  stack.service().subscribe({room104, std::nullopt, 0.5, std::nullopt, /*onlyOnEntry=*/true,
                             [&](const Notification& n) { notes.push_back(n); }});

  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { stack.service().ingest(r); });
  scenario.addAdapter(stack.ubisense("ubi-1"), sec(1));

  stack.world->sendTo(MobileObjectId{"carol"}, "104");
  scenario.run(sec(60));
  ASSERT_GE(notes.size(), 1u) << "entry into 104 noticed";
  EXPECT_EQ(notes[0].object.str(), "carol");
  EXPECT_GT(notes[0].probability, 0.5);
}

TEST(IntegrationTest, BiometricAndCardReaderEvents) {
  Stack stack;
  stack.world->addPerson({MobileObjectId{"dave"}, "103", 4.0, 0.0, 0.0, 0.0});

  const geo::Rect room103 = stack.blueprint.roomNamed("103")->rect;
  adapters::BiometricAdapter bio(
      AdapterId{"bio-103"}, SensorId{"fp-103"},
      adapters::BiometricConfig{.devicePosition = room103.center(), .room = room103});
  bio.registerWith(stack.mw->database());
  bio.connect([&](const db::SensorReading& r) { stack.service().ingest(r); });

  // Dave carries nothing; only the fingerprint login places him.
  bio.authenticate(MobileObjectId{"dave"}, stack.clock);
  auto est = stack.service().locateObject(MobileObjectId{"dave"});
  ASSERT_TRUE(est.has_value());
  EXPECT_TRUE(room103.contains(est->region));
  EXPECT_GT(stack.service().probabilityInRegion(MobileObjectId{"dave"}, room103), 0.5)
      << "the room-level probability is what the two biometric readings assert";

  // After logout plus 20 s, nothing places him anymore.
  stack.clock.advance(sec(5));
  bio.logout(MobileObjectId{"dave"}, stack.clock, stack.mw->database());
  stack.clock.advance(sec(20));
  EXPECT_EQ(stack.service().locateObject(MobileObjectId{"dave"}), std::nullopt);
}

TEST(IntegrationTest, ConflictingStaleBadgeLosesToMovingTag) {
  // Failure injection: ellen leaves her RFID badge in room 101 (stationary
  // readings keep coming) while she walks away carrying her Ubisense tag.
  Stack stack;
  stack.world->addPerson({MobileObjectId{"ellen"}, "101", 6.0, 1.0, 0.0, 0.0});

  auto rfid = stack.rfid("rf-101", stack.blueprint.centerOf("101"));
  rfid->connect([&](const db::SensorReading& r) { stack.service().ingest(r); });
  auto ubi = stack.ubisense("ubi-1");
  ubi->connect([&](const db::SensorReading& r) { stack.service().ingest(r); });

  // Forge the stale badge: a phantom "ellen" stays at 101 for RFID.
  // (Simplest: emit the badge reading directly.)
  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { stack.service().ingest(r); });
  scenario.addAdapter(ubi, sec(1));

  stack.world->sendTo(MobileObjectId{"ellen"}, "154");
  for (int i = 0; i < 30; ++i) {
    db::SensorReading badge;
    badge.sensorId = SensorId{"rf-101"};
    badge.sensorType = "RF";
    badge.mobileObjectId = MobileObjectId{"ellen"};
    badge.location = stack.blueprint.centerOf("101");
    badge.detectionRadius = 15.0;
    badge.symbolicRegion = geo::Rect::centeredSquare(stack.blueprint.centerOf("101"), 15.0);
    badge.detectionTime = stack.clock.now();
    stack.service().ingest(badge);
    scenario.run(sec(2));
  }

  auto est = stack.service().locateObject(MobileObjectId{"ellen"});
  ASSERT_TRUE(est.has_value());
  auto truePos = stack.world->position(MobileObjectId{"ellen"});
  EXPECT_LT(geo::distance(est->region.center(), *truePos), 3.0)
      << "rule 1: the moving Ubisense rect wins over the parked badge";
}

TEST(IntegrationTest, SensorDropoutDegradesToRemainingTechnology) {
  Stack stack;
  stack.world->addPerson({MobileObjectId{"frank"}, "102", 0.0, 1.0, 1.0, 0.0});

  auto ubi = stack.ubisense("ubi-1");
  auto rfid = stack.rfid("rf-102", stack.blueprint.centerOf("102"));
  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { stack.service().ingest(r); });
  scenario.addAdapter(ubi, sec(1));
  scenario.addAdapter(rfid, sec(2));
  scenario.run(sec(6));

  auto fine = stack.service().locateObject(MobileObjectId{"frank"});
  ASSERT_TRUE(fine.has_value());
  EXPECT_LT(fine->region.width(), 2.0) << "Ubisense precision while both live";

  // Ubisense "fails": stop carrying the tag; its readings expire in 5 s.
  stack.world->setCarrying(MobileObjectId{"frank"}, "tag", false);
  scenario.run(sec(10));
  auto coarse = stack.service().locateObject(MobileObjectId{"frank"});
  ASSERT_TRUE(coarse.has_value()) << "RFID alone still locates him";
  EXPECT_GT(coarse->region.width(), 10.0) << "but only at badge resolution";
}

TEST(IntegrationTest, FullStackOverTcpOrb) {
  // Adapters feed the service through a real TCP connection, and the
  // application queries through another — the paper's CORBA deployment.
  Stack stack;
  stack.world->addPerson({MobileObjectId{"gina"}, "101", 4.0, 1.0, 0.0, 0.0});

  std::uint16_t port = stack.mw->listen();
  auto adapterClient = Middlewhere::connectRemote("127.0.0.1", port);
  auto appClient = Middlewhere::connectRemote("127.0.0.1", port);

  sim::Scenario scenario(stack.clock, *stack.world,
                         [&](const db::SensorReading& r) { adapterClient->ingest(r); });
  scenario.addAdapter(stack.ubisense("ubi-1"), sec(1));
  scenario.run(sec(5));

  auto est = appClient->locate(MobileObjectId{"gina"});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->probability, 0.9);
  EXPECT_FALSE(appClient->locateSymbolic(MobileObjectId{"gina"}).empty());
}

}  // namespace
}  // namespace mw
