#include "util/clock.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mw::util {
namespace {

TEST(VirtualClockTest, StartsAtNonZeroEpoch) {
  VirtualClock clock;
  EXPECT_GT(clock.now().time_since_epoch().count(), 0);
}

TEST(VirtualClockTest, AdvanceMovesForward) {
  VirtualClock clock;
  auto t0 = clock.now();
  clock.advance(sec(5));
  EXPECT_EQ(clock.now() - t0, sec(5));
}

TEST(VirtualClockTest, AdvanceZeroIsNoop) {
  VirtualClock clock;
  auto t0 = clock.now();
  clock.advance(Duration::zero());
  EXPECT_EQ(clock.now(), t0);
}

TEST(VirtualClockTest, NegativeAdvanceThrows) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance(Duration{-1}), std::invalid_argument);
}

TEST(VirtualClockTest, SetForwardWorksBackwardThrows) {
  VirtualClock clock;
  auto t0 = clock.now();
  clock.set(t0 + sec(10));
  EXPECT_EQ(clock.now(), t0 + sec(10));
  EXPECT_THROW(clock.set(t0), std::invalid_argument);
}

TEST(VirtualClockTest, CustomStart) {
  TimePoint start{Duration{42}};
  VirtualClock clock{start};
  EXPECT_EQ(clock.now(), start);
}

TEST(SystemClockTest, AdvancesMonotonically) {
  SystemClock clock;
  auto a = clock.now();
  auto b = clock.now();
  EXPECT_LE(a, b);
}

TEST(DurationHelpersTest, Conversions) {
  EXPECT_EQ(sec(2), msec(2000));
  EXPECT_EQ(minutes(1), sec(60));
  EXPECT_EQ(minutes(15), msec(900'000));
}

}  // namespace
}  // namespace mw::util
