// Catalog epoch + readings R-tree: the structural version that cross-object
// caches (the region population cache) key on, and the evidence-box index
// that candidate discovery runs over. Pins every bump site — spatial-object
// insert/delete, sensor (de)registration, mobile population appear/disappear
// — and the conservative-superset contract of mobileObjectsIntersecting.
#include "spatialdb/database.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "quality/error_model.hpp"

namespace mw::db {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

struct Fixture {
  VirtualClock clock;
  SpatialDatabase db;

  Fixture() : db(clock, geo::Rect::fromOrigin({0, 0}, 100, 50), "SC") {
    SensorMeta ubi;
    ubi.sensorId = SensorId{"ubi-1"};
    ubi.sensorType = "Ubisense";
    ubi.errorSpec = quality::ubisenseSpec(1.0);
    ubi.quality.ttl = sec(30);
    db.registerSensor(ubi);
  }

  SensorReading reading(const char* person, geo::Point2 where, const char* sensor = "ubi-1") {
    SensorReading r;
    r.sensorId = SensorId{sensor};
    r.sensorType = "Ubisense";
    r.mobileObjectId = MobileObjectId{person};
    r.location = where;
    r.detectionRadius = 0.5;
    r.detectionTime = clock.now();
    return r;
  }

  SpatialObjectRow room(const char* id, geo::Rect r) {
    SpatialObjectRow row;
    row.id = util::SpatialObjectId{id};
    row.globPrefix = "SC";
    row.objectType = ObjectType::Room;
    row.geometryType = GeometryType::Polygon;
    row.points = {r.lo(), {r.hi().x, r.lo().y}, r.hi(), {r.lo().x, r.hi().y}};
    return row;
  }
};

bool lists(const std::vector<MobileObjectId>& ids, const char* person) {
  return std::find(ids.begin(), ids.end(), MobileObjectId{person}) != ids.end();
}

TEST(CatalogEpochTest, SpatialObjectInsertAndDeleteBump) {
  Fixture f;
  const auto e0 = f.db.catalogEpoch();
  f.db.addObject(f.room("roomA", geo::Rect::fromOrigin({0, 0}, 20, 20)));
  const auto e1 = f.db.catalogEpoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(f.db.removeObject("SC", util::SpatialObjectId{"roomA"}));
  EXPECT_GT(f.db.catalogEpoch(), e1);
  // Removing a row that is not there is not a structural change.
  const auto e2 = f.db.catalogEpoch();
  EXPECT_FALSE(f.db.removeObject("SC", util::SpatialObjectId{"roomA"}));
  EXPECT_EQ(f.db.catalogEpoch(), e2);
}

TEST(CatalogEpochTest, SensorRegistrationAndDeregistrationBump) {
  Fixture f;
  const auto e0 = f.db.catalogEpoch();
  SensorMeta badge;
  badge.sensorId = SensorId{"badge-1"};
  badge.sensorType = "Badge";
  badge.errorSpec = quality::ubisenseSpec(1.0);
  badge.quality.ttl = sec(5);
  f.db.registerSensor(badge);
  const auto e1 = f.db.catalogEpoch();
  EXPECT_GT(e1, e0);

  EXPECT_TRUE(f.db.deregisterSensor(SensorId{"badge-1"}));
  EXPECT_GT(f.db.catalogEpoch(), e1);
  const auto e2 = f.db.catalogEpoch();
  EXPECT_FALSE(f.db.deregisterSensor(SensorId{"badge-1"}));
  EXPECT_EQ(f.db.catalogEpoch(), e2);
}

TEST(CatalogEpochTest, DeregistrationBumpsEveryObjectsReadingsEpoch) {
  Fixture f;
  f.db.insertReading(f.reading("alice", {5, 5}));
  const auto alice = f.db.readingsEpoch(MobileObjectId{"alice"});
  ASSERT_TRUE(f.db.deregisterSensor(SensorId{"ubi-1"}));
  // Meta epoch shift: per-object fused states keyed on the old value die.
  EXPECT_NE(f.db.readingsEpoch(MobileObjectId{"alice"}), alice);
}

TEST(CatalogEpochTest, PopulationGrowthBumpsOncePerNewObject) {
  Fixture f;
  const auto e0 = f.db.catalogEpoch();
  f.db.insertReading(f.reading("alice", {5, 5}));
  const auto e1 = f.db.catalogEpoch();
  EXPECT_GT(e1, e0);  // first-ever reading for alice: population grew
  // A later reading for the same object moves HER epoch, not the catalog.
  f.db.insertReading(f.reading("alice", {6, 6}));
  EXPECT_EQ(f.db.catalogEpoch(), e1);
}

TEST(CatalogEpochTest, PopulationShrinkOnPurgeBumps) {
  Fixture f;
  f.db.insertReading(f.reading("alice", {5, 5}));
  const auto e0 = f.db.catalogEpoch();
  f.clock.advance(sec(60));  // far past the 30 s TTL
  f.db.purgeExpired();
  EXPECT_GT(f.db.catalogEpoch(), e0);
  EXPECT_TRUE(f.db.mobileObjectsIntersecting(geo::Rect::fromOrigin({0, 0}, 100, 50)).empty());
}

TEST(CatalogEpochTest, MobileObjectsIntersectingFindsEvidenceBoxes) {
  Fixture f;
  f.db.insertReading(f.reading("alice", {5, 5}));
  f.db.insertReading(f.reading("bob", {45, 5}));

  const geo::Rect roomA = geo::Rect::fromOrigin({0, 0}, 20, 20);
  auto inA = f.db.mobileObjectsIntersecting(roomA);
  EXPECT_TRUE(lists(inA, "alice"));
  EXPECT_FALSE(lists(inA, "bob"));

  auto everyone = f.db.mobileObjectsIntersecting(geo::Rect::fromOrigin({0, 0}, 100, 50));
  EXPECT_EQ(everyone.size(), 2u);

  // The box is the UNION of an object's evidence: a second sighting widens
  // it, so bob now matches room A queries too (conservative superset — the
  // fusion layer, not discovery, decides his actual probability).
  f.db.insertReading(f.reading("bob", {10, 10}, "ubi-1"));
  EXPECT_TRUE(lists(f.db.mobileObjectsIntersecting(roomA), "bob"));
}

TEST(CatalogEpochTest, StaleEvidenceKeepsCandidatesUntilStorageExpiry) {
  Fixture f;
  f.db.insertReading(f.reading("alice", {5, 5}));
  f.clock.advance(sec(60));  // reading is past TTL but still stored
  // Discovery stays conservative: the lazily-expired box still matches...
  EXPECT_TRUE(lists(f.db.mobileObjectsIntersecting(geo::Rect::fromOrigin({0, 0}, 20, 20)),
                    "alice"));
  // ...until storage reclamation actually removes the reading.
  f.db.purgeExpired();
  EXPECT_FALSE(lists(f.db.mobileObjectsIntersecting(geo::Rect::fromOrigin({0, 0}, 20, 20)),
                     "alice"));
}

}  // namespace
}  // namespace mw::db
