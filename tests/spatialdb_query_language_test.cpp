// The §5.1 SQL stand-in: predicate query language over spatial-object rows.
#include <gtest/gtest.h>

#include "spatialdb/database.hpp"
#include "spatialdb/query_language.hpp"
#include "util/error.hpp"

namespace mw::db {
namespace {

using mw::util::ParseError;
using mw::util::SpatialObjectId;
using mw::util::VirtualClock;

SpatialObjectRow row(const char* id, ObjectType type,
                     std::unordered_map<std::string, std::string> props = {}) {
  SpatialObjectRow r;
  r.id = SpatialObjectId{id};
  r.globPrefix = "CS/Floor3";
  r.objectType = type;
  r.geometryType = GeometryType::Polygon;
  r.points = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  r.properties = std::move(props);
  return r;
}

TEST(QueryLanguageTest, TypeEquality) {
  auto p = compileQuery("type = Room");
  EXPECT_TRUE(p(row("a", ObjectType::Room)));
  EXPECT_FALSE(p(row("b", ObjectType::Corridor)));
}

TEST(QueryLanguageTest, CaseInsensitiveKeywordsAndTypes) {
  auto p = compileQuery("TYPE = room AND NOT type = corridor");
  EXPECT_TRUE(p(row("a", ObjectType::Room)));
}

TEST(QueryLanguageTest, PaperExamplePowerOutletsAndBluetooth) {
  // "Where is the nearest region that has power outlets and high Bluetooth
  // signal?" — the predicate part.
  auto p = compileQuery("prop.outlets = yes and prop.bluetooth = high");
  EXPECT_TRUE(p(row("good", ObjectType::Room, {{"outlets", "yes"}, {"bluetooth", "high"}})));
  EXPECT_FALSE(p(row("weak", ObjectType::Room, {{"outlets", "yes"}, {"bluetooth", "low"}})));
  EXPECT_FALSE(p(row("bare", ObjectType::Room)));
}

TEST(QueryLanguageTest, OrAndParentheses) {
  auto p = compileQuery("(type = Room or type = Corridor) and prop.wing = east");
  EXPECT_TRUE(p(row("a", ObjectType::Room, {{"wing", "east"}})));
  EXPECT_TRUE(p(row("b", ObjectType::Corridor, {{"wing", "east"}})));
  EXPECT_FALSE(p(row("c", ObjectType::Display, {{"wing", "east"}})));
  EXPECT_FALSE(p(row("d", ObjectType::Room, {{"wing", "west"}})));
}

TEST(QueryLanguageTest, NotEqualsAndNegation) {
  auto neq = compileQuery("type != Door");
  EXPECT_TRUE(neq(row("a", ObjectType::Room)));
  EXPECT_FALSE(neq(row("b", ObjectType::Door)));
  auto notted = compileQuery("not prop.bluetooth = low");
  EXPECT_TRUE(notted(row("c", ObjectType::Room)));
  EXPECT_FALSE(notted(row("d", ObjectType::Room, {{"bluetooth", "low"}})));
}

TEST(QueryLanguageTest, IdPrefixAndQuotedStrings) {
  auto p = compileQuery("prefix = \"CS/Floor3\" and id = 3105");
  EXPECT_TRUE(p(row("3105", ObjectType::Room)));
  EXPECT_FALSE(p(row("3106", ObjectType::Room)));
  auto geometric = compileQuery("geometry = Polygon");
  EXPECT_TRUE(geometric(row("x", ObjectType::Room)));
}

TEST(QueryLanguageTest, PropertyValuesAreCaseSensitive) {
  auto p = compileQuery("prop.owner = Alice");
  EXPECT_TRUE(p(row("a", ObjectType::Room, {{"owner", "Alice"}})));
  EXPECT_FALSE(p(row("b", ObjectType::Room, {{"owner", "alice"}})));
}

TEST(QueryLanguageTest, ParseErrors) {
  EXPECT_THROW(compileQuery(""), mw::util::ContractError);
  EXPECT_THROW(compileQuery("type ="), ParseError);
  EXPECT_THROW(compileQuery("= Room"), ParseError);
  EXPECT_THROW(compileQuery("type = Room and"), ParseError);
  EXPECT_THROW(compileQuery("(type = Room"), ParseError);
  EXPECT_THROW(compileQuery("bogusfield = x"), ParseError);
  EXPECT_THROW(compileQuery("prop. = x"), ParseError);
  EXPECT_THROW(compileQuery("type = \"unterminated"), ParseError);
  EXPECT_THROW(compileQuery("type ~ Room"), ParseError);
  EXPECT_THROW(compileQuery("type = Room extra"), ParseError) << "trailing tokens";
}

TEST(QueryLanguageTest, DrivesDatabaseQueriesEndToEnd) {
  VirtualClock clock;
  SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "CS");
  auto addAt = [&](const char* id, ObjectType type, geo::Point2 at,
                   std::unordered_map<std::string, std::string> props) {
    SpatialObjectRow r;
    r.id = SpatialObjectId{id};
    r.globPrefix = "CS";
    r.objectType = type;
    r.geometryType = GeometryType::Polygon;
    r.points = {at, {at.x + 5, at.y}, {at.x + 5, at.y + 5}, {at.x, at.y + 5}};
    r.properties = std::move(props);
    db.addObject(r);
  };
  addAt("near", ObjectType::Room, {10, 10}, {{"outlets", "yes"}});
  addAt("far", ObjectType::Room, {80, 80}, {{"outlets", "yes"}, {"bluetooth", "high"}});
  addAt("close-no-outlet", ObjectType::Room, {5, 5}, {});

  // The paper's full question, answered: nearest region with power outlets
  // and high Bluetooth signal from (0,0).
  auto want = compileQuery("prop.outlets = yes and prop.bluetooth = high");
  auto nearest = db.nearest({0, 0}, want);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id.str(), "far");

  EXPECT_EQ(db.query(compileQuery("prop.outlets = yes")).size(), 2u);
}

}  // namespace
}  // namespace mw::db
