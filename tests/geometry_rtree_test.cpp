#include "geometry/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mw::geo {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree<int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.search(Rect::fromOrigin({0, 0}, 100, 100)).empty());
}

TEST(RTreeTest, InsertAndFind) {
  RTree<int> tree;
  tree.insert(Rect::fromOrigin({0, 0}, 1, 1), 1);
  tree.insert(Rect::fromOrigin({5, 5}, 1, 1), 2);
  auto hits = tree.search(Rect::fromOrigin({0, 0}, 2, 2));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(RTreeTest, InsertEmptyRectThrows) {
  RTree<int> tree;
  EXPECT_THROW(tree.insert(Rect{}, 1), mw::util::ContractError);
}

TEST(RTreeTest, ContainingPoint) {
  RTree<int> tree;
  tree.insert(Rect::fromOrigin({0, 0}, 10, 10), 1);
  tree.insert(Rect::fromOrigin({5, 5}, 10, 10), 2);
  auto hits = tree.containing(Point2{7, 7});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
  EXPECT_EQ(tree.containing(Point2{20, 20}).size(), 0u);
}

TEST(RTreeTest, SplitsGrowHeight) {
  RTree<int> tree{4};
  for (int i = 0; i < 100; ++i) {
    tree.insert(Rect::fromOrigin({static_cast<double>(i % 10) * 2, double(i / 10) * 2}, 1, 1), i);
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 1u);
  // Every entry still findable.
  int found = 0;
  tree.forEach([&](const Rect&, const int&) { ++found; });
  EXPECT_EQ(found, 100);
}

TEST(RTreeTest, RemoveExisting) {
  RTree<int> tree;
  Rect r = Rect::fromOrigin({1, 1}, 1, 1);
  tree.insert(r, 7);
  EXPECT_TRUE(tree.remove(r, 7));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.search(r).empty());
}

TEST(RTreeTest, RemoveAbsentReturnsFalse) {
  RTree<int> tree;
  tree.insert(Rect::fromOrigin({1, 1}, 1, 1), 7);
  EXPECT_FALSE(tree.remove(Rect::fromOrigin({2, 2}, 1, 1), 7));
  EXPECT_FALSE(tree.remove(Rect::fromOrigin({1, 1}, 1, 1), 8));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, RemoveUnderflowCondensesAndKeepsOthers) {
  RTree<int> tree{4};
  std::vector<Rect> rects;
  for (int i = 0; i < 50; ++i) {
    Rect r = Rect::fromOrigin({static_cast<double>(i * 3), 0}, 2, 2);
    rects.push_back(r);
    tree.insert(r, i);
  }
  // Remove every other entry.
  for (int i = 0; i < 50; i += 2) {
    EXPECT_TRUE(tree.remove(rects[i], i)) << "i=" << i;
  }
  EXPECT_EQ(tree.size(), 25u);
  for (int i = 1; i < 50; i += 2) {
    auto hits = tree.search(rects[i]);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), i) != hits.end()) << "i=" << i;
  }
}

TEST(RTreeTest, DuplicateBoxesDistinctValues) {
  RTree<int> tree;
  Rect r = Rect::fromOrigin({0, 0}, 1, 1);
  tree.insert(r, 1);
  tree.insert(r, 2);
  auto hits = tree.search(r);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
  EXPECT_TRUE(tree.remove(r, 1));
  hits = tree.search(r);
  EXPECT_EQ(hits, (std::vector<int>{2}));
}

// Property test: R-tree search results always equal a brute-force linear scan,
// across random workloads of inserts and removes.
class RTreeVsLinearScan : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RTreeVsLinearScan, SearchEquivalence) {
  mw::util::Rng rng{GetParam()};
  RTree<std::size_t> tree{6};
  std::vector<std::pair<Rect, std::size_t>> reference;

  for (std::size_t i = 0; i < 400; ++i) {
    Rect r = Rect::fromOrigin({rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(0.1, 10),
                              rng.uniform(0.1, 10));
    tree.insert(r, i);
    reference.emplace_back(r, i);
  }
  // Random removals.
  for (int k = 0; k < 100; ++k) {
    std::size_t idx = static_cast<std::size_t>(rng.uniformInt(0, std::ssize(reference) - 1));
    auto [r, v] = reference[idx];
    ASSERT_TRUE(tree.remove(r, v));
    reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  ASSERT_EQ(tree.size(), reference.size());

  for (int q = 0; q < 50; ++q) {
    Rect query = Rect::fromOrigin({rng.uniform(-10, 100), rng.uniform(-10, 100)},
                                  rng.uniform(0.1, 30), rng.uniform(0.1, 30));
    auto hits = tree.search(query);
    std::vector<std::size_t> expect;
    for (const auto& [r, v] : reference) {
      if (r.intersects(query)) expect.push_back(v);
    }
    std::sort(hits.begin(), hits.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(hits, expect) << "query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeVsLinearScan,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u, 9001u));

}  // namespace
}  // namespace mw::geo
