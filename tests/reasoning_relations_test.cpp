#include "reasoning/relations.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mw::reasoning {
namespace {

using fusion::LocationEstimate;
using geo::Rect;

LocationEstimate estimate(Rect r, double prob) {
  LocationEstimate e;
  e.region = r;
  e.probability = prob;
  return e;
}

TEST(ContainmentTest, FullyInsideScalesByEstimateProbability) {
  auto est = estimate(Rect::fromOrigin({10, 10}, 2, 2), 0.9);
  Rect room = Rect::fromOrigin({8, 8}, 10, 10);
  EXPECT_DOUBLE_EQ(containmentProbability(est, room), 0.9);
}

TEST(ContainmentTest, PartialOverlapScalesByAreaFraction) {
  auto est = estimate(Rect::fromOrigin({0, 0}, 4, 4), 0.8);
  Rect region = Rect::fromOrigin({2, 0}, 10, 10);  // covers right half
  EXPECT_DOUBLE_EQ(containmentProbability(est, region), 0.8 * 0.5);
}

TEST(ContainmentTest, DisjointIsZero) {
  auto est = estimate(Rect::fromOrigin({0, 0}, 2, 2), 0.9);
  EXPECT_DOUBLE_EQ(containmentProbability(est, Rect::fromOrigin({50, 50}, 5, 5)), 0.0);
}

TEST(ContainmentTest, DegeneratePointEstimate) {
  auto est = estimate(Rect::fromCorners({5, 5}, {5, 5}), 0.7);
  EXPECT_DOUBLE_EQ(containmentProbability(est, Rect::fromOrigin({0, 0}, 10, 10)), 0.7);
  EXPECT_DOUBLE_EQ(containmentProbability(est, Rect::fromOrigin({20, 20}, 5, 5)), 0.0);
}

TEST(ContainmentTest, UsageRegionAlias) {
  // §4.6.2: a display's usage region in front of it.
  auto person = estimate(Rect::fromOrigin({3, 3}, 1, 1), 0.95);
  Rect usage = Rect::fromOrigin({2, 2}, 4, 4);
  EXPECT_DOUBLE_EQ(usageProbability(person, usage), containmentProbability(person, usage));
}

TEST(DistanceToRegionTest, Bounds) {
  auto est = estimate(Rect::fromOrigin({0, 0}, 2, 2), 0.9);
  Rect region = Rect::fromOrigin({5, 0}, 2, 2);
  auto d = distanceToRegion(est, region);
  EXPECT_DOUBLE_EQ(d.expected, 5.0);  // centers (1,1) and (6,1)
  EXPECT_DOUBLE_EQ(d.min, 3.0);       // closest edges
  EXPECT_DOUBLE_EQ(d.max, std::hypot(7.0, 2.0));
  EXPECT_LE(d.min, d.expected);
  EXPECT_LE(d.expected, d.max);
}

TEST(ProximityTest, DefinitelyWithinThreshold) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 1, 1), 1.0);
  auto b = estimate(Rect::fromOrigin({1.5, 0}, 1, 1), 1.0);
  // max possible distance ~ hypot(2.5,1) < 3.
  EXPECT_NEAR(proximityProbability(a, b, 3.0), 1.0, 1e-12);
}

TEST(ProximityTest, DefinitelyBeyondThreshold) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 1, 1), 1.0);
  auto b = estimate(Rect::fromOrigin({50, 0}, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(proximityProbability(a, b, 3.0), 0.0);
}

TEST(ProximityTest, PartialIsBetween) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 4, 4), 1.0);
  auto b = estimate(Rect::fromOrigin({5, 0}, 4, 4), 1.0);
  double p = proximityProbability(a, b, 5.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(ProximityTest, ScalesWithLocationConfidence) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 1, 1), 0.5);
  auto b = estimate(Rect::fromOrigin({1, 0}, 1, 1), 0.6);
  EXPECT_NEAR(proximityProbability(a, b, 10.0), 0.3, 1e-12);
}

TEST(ProximityTest, Validation) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 1, 1), 1.0);
  EXPECT_THROW(proximityProbability(a, a, -1.0), mw::util::ContractError);
  EXPECT_THROW(proximityProbability(a, a, 1.0, 0), mw::util::ContractError);
}

TEST(ProximityTest, FinerGridConverges) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 4, 4), 1.0);
  auto b = estimate(Rect::fromOrigin({3, 0}, 4, 4), 1.0);
  double coarse = proximityProbability(a, b, 4.0, 4);
  double fine = proximityProbability(a, b, 4.0, 16);
  EXPECT_NEAR(coarse, fine, 0.08) << "quadrature stable across resolutions";
}

TEST(CoLocationTest, BothInsideRoom) {
  // §4.6.3: co-location at room granularity.
  Rect room = Rect::fromOrigin({0, 0}, 10, 10);
  auto a = estimate(Rect::fromOrigin({1, 1}, 2, 2), 0.9);
  auto b = estimate(Rect::fromOrigin({6, 6}, 2, 2), 0.8);
  EXPECT_NEAR(coLocationProbability(a, b, room), 0.72, 1e-12);
}

TEST(CoLocationTest, OneOutsideKillsIt) {
  Rect room = Rect::fromOrigin({0, 0}, 10, 10);
  auto a = estimate(Rect::fromOrigin({1, 1}, 2, 2), 0.9);
  auto b = estimate(Rect::fromOrigin({60, 60}, 2, 2), 0.8);
  EXPECT_DOUBLE_EQ(coLocationProbability(a, b, room), 0.0);
}

TEST(ObjectDistanceTest, SymmetricCenters) {
  auto a = estimate(Rect::fromOrigin({0, 0}, 2, 2), 1.0);
  auto b = estimate(Rect::fromOrigin({6, 8}, 2, 2), 1.0);
  auto d = objectDistance(a, b);
  EXPECT_DOUBLE_EQ(d.expected, 10.0);  // centers (1,1), (7,9)
}

TEST(ObjectPathDistanceTest, ThroughCorridor) {
  ConnectivityGraph g;
  g.addRegion("roomA", Rect::fromOrigin({0, 0}, 4, 4));
  g.addRegion("roomB", Rect::fromOrigin({8, 0}, 4, 4));
  g.addRegion("corridor", Rect::fromOrigin({0, 4}, 12, 2));
  g.addPassage({"doorA", {{1, 4}, {2, 4}}, PassageKind::Free});
  g.addPassage({"doorB", {{9, 4}, {10, 4}}, PassageKind::Free});

  auto a = estimate(Rect::fromOrigin({1, 1}, 2, 2), 0.9);   // center (2,2) in roomA
  auto b = estimate(Rect::fromOrigin({9, 1}, 2, 2), 0.9);   // center (10,2) in roomB
  auto d = objectPathDistance(a, b, g);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, objectDistance(a, b).expected) << "path longer than Euclidean";

  auto outside = estimate(Rect::fromOrigin({100, 100}, 2, 2), 0.9);
  EXPECT_EQ(objectPathDistance(a, outside, g), std::nullopt);
}

}  // namespace
}  // namespace mw::reasoning
