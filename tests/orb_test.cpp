// MicroOrb tests: wire codec, in-process and TCP transports, RPC, pub/sub.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "orb/message.hpp"
#include "orb/pubsub.hpp"
#include "orb/rpc.hpp"
#include "orb/tcp.hpp"
#include "orb/transport.hpp"
#include "util/error.hpp"

namespace mw::orb {
namespace {

using mw::util::ByteReader;
using mw::util::Bytes;
using mw::util::ByteWriter;

// --- message codec --------------------------------------------------------------

TEST(MessageTest, RoundTrip) {
  Message m;
  m.type = MessageType::Request;
  m.requestId = 42;
  m.target = "locateObject";
  m.payload = {1, 2, 3};
  Message back = Message::decode(m.encode());
  EXPECT_EQ(back, m);
}

TEST(MessageTest, AllTypesRoundTrip) {
  for (auto t : {MessageType::Request, MessageType::Reply, MessageType::Error,
                 MessageType::Event}) {
    Message m;
    m.type = t;
    m.target = "x";
    EXPECT_EQ(Message::decode(m.encode()).type, t);
  }
}

TEST(MessageTest, RejectsBadMagicAndType) {
  Message m;
  m.target = "x";
  Bytes frame = m.encode();
  frame[0] ^= 0xFF;
  EXPECT_THROW(Message::decode(frame), util::ParseError);
  frame = m.encode();
  frame[2] = 99;  // invalid type
  EXPECT_THROW(Message::decode(frame), util::ParseError);
}

TEST(MessageTest, RejectsTrailingBytes) {
  Message m;
  m.target = "x";
  Bytes frame = m.encode();
  frame.push_back(0);
  EXPECT_THROW(Message::decode(frame), util::ParseError);
}

// --- in-proc transport -----------------------------------------------------------

TEST(InProcTransportTest, DeliversBothDirections) {
  auto [a, b] = makeInProcPair();
  Bytes gotAtB, gotAtA;
  b->onReceive([&](util::ByteView f) { gotAtB = f.toBytes(); });
  a->onReceive([&](util::ByteView f) { gotAtA = f.toBytes(); });
  a->send({1, 2});
  b->send({3, 4});
  EXPECT_EQ(gotAtB, (Bytes{1, 2}));
  EXPECT_EQ(gotAtA, (Bytes{3, 4}));
}

TEST(InProcTransportTest, BuffersUntilHandlerInstalled) {
  auto [a, b] = makeInProcPair();
  a->send({7});
  a->send({8});
  std::vector<Bytes> got;
  b->onReceive([&](util::ByteView f) { got.push_back(f.toBytes()); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], Bytes{7});
  EXPECT_EQ(got[1], Bytes{8});
}

TEST(InProcTransportTest, SendAfterCloseThrows) {
  auto [a, b] = makeInProcPair();
  a->close();
  EXPECT_THROW(a->send({1}), util::TransportError);
  EXPECT_FALSE(a->isOpen());
}

TEST(InProcTransportTest, PeerDestructionDetected) {
  auto pair = makeInProcPair();
  auto a = pair.first;
  pair.second.reset();
  EXPECT_FALSE(a->isOpen());
  EXPECT_THROW(a->send({1}), util::TransportError);
}

// --- RPC ------------------------------------------------------------------------

TEST(RpcTest, EchoCall) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  server.serve(serverSide);
  RpcClient client(clientSide);
  EXPECT_EQ(client.call("echo", {1, 2, 3}), (Bytes{1, 2, 3}));
}

TEST(RpcTest, UnknownMethodIsRemoteError) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.serve(serverSide);
  RpcClient client(clientSide);
  EXPECT_THROW(client.call("nope", {}), util::MwError);
}

TEST(RpcTest, MethodExceptionPropagatesAsError) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("boom", [](const Bytes&) -> Bytes {
    throw std::runtime_error("kapow");
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  try {
    client.call("boom", {});
    FAIL() << "expected MwError";
  } catch (const util::MwError& e) {
    EXPECT_NE(std::string(e.what()).find("kapow"), std::string::npos);
  }
}

TEST(RpcTest, ConcurrentCallsCorrelate) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("inc", [](const Bytes& in) {
    ByteReader r(in);
    ByteWriter w;
    w.u32(r.u32() + 1);
    return w.take();
  });
  server.serve(serverSide);
  RpcClient client(clientSide);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < 50; ++i) {
        ByteWriter w;
        w.u32(i + static_cast<std::uint32_t>(t) * 1000);
        Bytes reply = client.call("inc", w.take());
        ByteReader r(reply);
        if (r.u32() != i + static_cast<std::uint32_t>(t) * 1000 + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RpcTest, OnewayNotifyExecutesWithoutReply) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  int hits = 0;
  server.registerMethod("ingest", [&](const Bytes& in) -> Bytes {
    hits += static_cast<int>(in.size());
    return {};
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  client.notify("ingest", {1, 2, 3});
  client.notify("ingest", {4});
  EXPECT_EQ(hits, 4) << "both oneway requests executed (in-proc is synchronous)";
  // The client still works for two-way calls afterwards (no stray replies
  // corrupted its correlation state).
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  EXPECT_EQ(client.call("echo", {9}), Bytes{9});
}

TEST(RpcTimeoutTest, SlowCallHitsDeadlineWithDistinctError) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  std::atomic<bool> release{false};
  server.registerMethod("slow", [&](const Bytes&) -> Bytes {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return {};
  });
  // Off-thread execution: the in-proc transport delivers synchronously, so
  // without the dispatcher the spin-wait handler would run ON the caller's
  // thread and the deadline could never fire.
  server.enableDispatcher(2);
  server.serve(serverSide);
  RpcClient client(clientSide);

  // The timeout error is a TransportError subtype, so existing catch sites
  // keep working — but a router can tell "slow" from "gone".
  EXPECT_THROW(client.call("slow", {}, std::chrono::milliseconds(30)), util::TimeoutError);
  release.store(true);
}

TEST(RpcTimeoutTest, PerClientDefaultDeadlineApplies) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  std::atomic<bool> release{false};
  server.registerMethod("slow", [&](const Bytes&) -> Bytes {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return {};
  });
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  server.enableDispatcher(2);
  server.serve(serverSide);
  RpcClient client(clientSide);

  EXPECT_EQ(client.callTimeout(), std::chrono::milliseconds(5000)) << "default deadline";
  client.setCallTimeout(std::chrono::milliseconds(25));
  EXPECT_EQ(client.callTimeout(), std::chrono::milliseconds(25));
  EXPECT_THROW(client.call("slow", {}), util::TimeoutError);
  release.store(true);
  // A fast call under the same tight deadline still succeeds.
  EXPECT_EQ(client.call("echo", {7}), Bytes{7});
  EXPECT_THROW(client.setCallTimeout(std::chrono::milliseconds(0)), util::ContractError);
}

TEST(RpcTimeoutTest, LateReplyAfterTimeoutIsDiscarded) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  std::atomic<bool> release{false};
  server.registerMethod("slow", [&](const Bytes&) -> Bytes {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return {1};
  });
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  server.enableDispatcher(2);
  server.serve(serverSide);
  RpcClient client(clientSide);

  EXPECT_THROW(client.call("slow", {}, std::chrono::milliseconds(20)), util::TimeoutError);
  release.store(true);
  // The abandoned reply must not be delivered to a later call.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client.call("echo", {static_cast<std::uint8_t>(i)}),
              Bytes{static_cast<std::uint8_t>(i)});
  }
}

TEST(RpcTest, OnewayErrorsAreSwallowed) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("boom", [](const Bytes&) -> Bytes {
    throw std::runtime_error("kapow");
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  EXPECT_NO_THROW(client.notify("boom", {}));
  EXPECT_NO_THROW(client.notify("unknown-method", {}));
}

TEST(RpcTest, ServerPushEvents) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.serve(serverSide);
  RpcClient client(clientSide);
  std::vector<std::string> topics;
  client.onEvent([&](const std::string& topic, const Bytes&) { topics.push_back(topic); });
  server.publish("trigger.42", {});
  server.publish("trigger.43", {});
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0], "trigger.42");
  EXPECT_EQ(topics[1], "trigger.43");
}

// --- TCP ------------------------------------------------------------------------

TEST(TcpTest, LoopbackRpcRoundTrip) {
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });

  auto transport = tcpConnect("127.0.0.1", listener.port());
  RpcClient client(transport);
  EXPECT_EQ(client.call("echo", {9, 9, 9}), (Bytes{9, 9, 9}));
}

TEST(TcpTest, MultipleClients) {
  RpcServer server;
  server.registerMethod("id", [](const Bytes& in) { return in; });
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });

  std::vector<std::unique_ptr<RpcClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<RpcClient>(tcpConnect("127.0.0.1", listener.port())));
  }
  for (int i = 0; i < 4; ++i) {
    Bytes payload{static_cast<std::uint8_t>(i)};
    EXPECT_EQ(clients[static_cast<std::size_t>(i)]->call("id", payload), payload);
  }
}

TEST(TcpTest, EventsOverTcp) {
  RpcServer server;
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  auto transport = tcpConnect("127.0.0.1", listener.port());
  RpcClient client(transport);

  std::atomic<int> events{0};
  client.onEvent([&](const std::string&, const Bytes&) { events.fetch_add(1); });
  // Wait for the server to register the accepted connection.
  for (int i = 0; i < 100 && server.connectionCount() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(server.connectionCount(), 1u);
  server.publish("t", {});
  for (int i = 0; i < 200 && events.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(events.load(), 1);
}

TEST(TcpTest, LargePayloadRoundTrip) {
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  TcpListener listener(0, [&](std::shared_ptr<Transport> t) { server.serve(std::move(t)); });
  RpcClient client(tcpConnect("127.0.0.1", listener.port()));
  // 4 MB payload: exercises multi-chunk send/recv loops on both sides.
  Bytes big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
  Bytes reply = client.call("echo", big, util::sec(30));
  EXPECT_EQ(reply, big);
}

TEST(TcpTest, ConnectToClosedPortThrows) {
  // Grab an ephemeral port and close the listener; connecting should fail.
  std::uint16_t port;
  {
    TcpListener listener(0, [](std::shared_ptr<Transport>) {});
    port = listener.port();
  }
  EXPECT_THROW(tcpConnect("127.0.0.1", port), util::TransportError);
}

// --- serving stats ----------------------------------------------------------------

TEST(RpcStatsTest, CountsUndecodableFrames) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.serve(serverSide);
  clientSide->send({0xde, 0xad, 0xbe, 0xef});  // not a Message frame
  clientSide->send({0x01});
  EXPECT_EQ(server.stats().undecodableFrames, 2u);
}

TEST(RpcStatsTest, CountsUnknownMethodErrors) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.serve(serverSide);
  RpcClient client(clientSide);
  EXPECT_THROW(client.call("nope", {}), util::MwError);
  client.notify("also-nope", {});
  EXPECT_EQ(server.stats().unknownMethodErrors, 2u);
}

TEST(RpcStatsTest, CountsSwallowedOnewayExceptions) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("boom", [](const Bytes&) -> Bytes {
    throw std::runtime_error("kapow");
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  client.notify("boom", {});
  client.notify("boom", {});
  EXPECT_EQ(server.stats().onewayExceptions, 2u);
  // Two-way errors travel back to the caller instead of being counted here.
  EXPECT_THROW(client.call("boom", {}), util::MwError);
  EXPECT_EQ(server.stats().onewayExceptions, 2u);
}

TEST(RpcStatsTest, SplitsInlineFromDispatchedRequests) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.registerMethod("echo", [](const Bytes& in) { return in; });
  server.serve(serverSide);
  RpcClient client(clientSide);
  client.call("echo", {1});
  EXPECT_EQ(server.stats().inlineRequests, 1u);
  EXPECT_EQ(server.stats().dispatchedRequests, 0u);
  server.enableDispatcher(2);
  client.call("echo", {2});
  EXPECT_EQ(server.stats().inlineRequests, 1u);
  EXPECT_EQ(server.stats().dispatchedRequests, 1u);
}

// --- dispatcher -------------------------------------------------------------------

TEST(RpcDispatcherTest, ExecutesOffTheReaderThread) {
  // With an in-proc transport the "reader thread" is the caller itself; a
  // dispatched request must therefore run on some other thread.
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.enableDispatcher(2);
  EXPECT_EQ(server.dispatchLanes(), 2u);
  std::thread::id executedOn;
  server.registerMethod("who", [&](const Bytes&) -> Bytes {
    executedOn = std::this_thread::get_id();
    return {};
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  client.call("who", {});
  EXPECT_NE(executedOn, std::this_thread::get_id());
}

TEST(RpcDispatcherTest, SlowLaneDoesNotStallOtherLane) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.enableDispatcher(2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  server.registerMethod(
      "slow",
      [released](const Bytes&) -> Bytes {
        released.wait();
        return {};
      },
      [](const Bytes&, std::uintptr_t) { return std::size_t{0}; });
  server.registerMethod(
      "fast", [](const Bytes& in) { return in; },
      [](const Bytes&, std::uintptr_t) { return std::size_t{1}; });
  server.serve(serverSide);
  RpcClient client(clientSide);

  std::thread blocked([&] { client.call("slow", {}, util::sec(30)); });
  // While lane 0 is parked inside "slow", lane 1 still serves "fast".
  EXPECT_EQ(client.call("fast", {7}), Bytes{7});
  release.set_value();
  blocked.join();
}

TEST(RpcDispatcherTest, SameLanePreservesRequestOrder) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.enableDispatcher(4);
  std::mutex m;
  std::vector<std::uint32_t> seen;
  server.registerMethod(
      "append",
      [&](const Bytes& in) -> Bytes {
        ByteReader r(in);
        std::lock_guard lock(m);
        seen.push_back(r.u32());
        return {};
      },
      [](const Bytes&, std::uintptr_t) { return std::size_t{0}; });
  server.serve(serverSide);
  RpcClient client(clientSide);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ByteWriter w;
    w.u32(i);
    client.notify("append", w.take());
  }
  server.enableDispatcher(0);  // drains the old lanes before returning
  std::vector<std::uint32_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(seen, expected);
}

TEST(RpcDispatcherTest, DisablingRestoresInlineExecution) {
  auto [clientSide, serverSide] = makeInProcPair();
  RpcServer server;
  server.enableDispatcher(2);
  server.enableDispatcher(0);
  EXPECT_EQ(server.dispatchLanes(), 0u);
  std::thread::id executedOn;
  server.registerMethod("who", [&](const Bytes&) -> Bytes {
    executedOn = std::this_thread::get_id();
    return {};
  });
  server.serve(serverSide);
  RpcClient client(clientSide);
  client.call("who", {});
  EXPECT_EQ(executedOn, std::this_thread::get_id());
}

TEST(RpcDispatcherTest, ServerDestructionDrainsQueuedOnewayRequests) {
  auto [clientSide, serverSide] = makeInProcPair();
  std::atomic<int> hits{0};
  {
    RpcServer server;
    server.enableDispatcher(2);
    server.registerMethod("ingest", [&](const Bytes&) -> Bytes {
      hits.fetch_add(1);
      return {};
    });
    server.serve(serverSide);
    RpcClient client(clientSide);
    for (int i = 0; i < 32; ++i) client.notify("ingest", {});
  }
  EXPECT_EQ(hits.load(), 32);
}

// --- event bus --------------------------------------------------------------------

TEST(EventBusTest, TopicFiltering) {
  EventBus bus;
  int a = 0, b = 0;
  bus.subscribe("alpha", [&](const std::string&, const Bytes&) { ++a; });
  bus.subscribe("beta", [&](const std::string&, const Bytes&) { ++b; });
  bus.publish("alpha", {});
  bus.publish("alpha", {});
  bus.publish("beta", {});
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
}

TEST(EventBusTest, WildcardSubscriber) {
  EventBus bus;
  std::vector<std::string> seen;
  bus.subscribeAll([&](const std::string& topic, const Bytes&) { seen.push_back(topic); });
  bus.publish("x", {});
  bus.publish("y", {});
  EXPECT_EQ(seen, (std::vector<std::string>{"x", "y"}));
}

TEST(EventBusTest, Unsubscribe) {
  EventBus bus;
  int n = 0;
  auto token = bus.subscribe("t", [&](const std::string&, const Bytes&) { ++n; });
  bus.publish("t", {});
  EXPECT_TRUE(bus.unsubscribe(token));
  EXPECT_FALSE(bus.unsubscribe(token));
  bus.publish("t", {});
  EXPECT_EQ(n, 1);
  EXPECT_EQ(bus.subscriberCount(), 0u);
}

TEST(EventBusTest, ExactAndWildcardInterleaveInSubscriptionOrder) {
  // The exact-topic index must not reorder delivery relative to wildcard
  // subscribers registered in between.
  EventBus bus;
  std::vector<int> order;
  bus.subscribe("t", [&](const std::string&, const Bytes&) { order.push_back(1); });
  bus.subscribeAll([&](const std::string&, const Bytes&) { order.push_back(2); });
  bus.subscribe("t", [&](const std::string&, const Bytes&) { order.push_back(3); });
  bus.subscribe("other", [&](const std::string&, const Bytes&) { order.push_back(99); });
  bus.subscribeAll([&](const std::string&, const Bytes&) { order.push_back(4); });
  bus.publish("t", {});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventBusTest, ManyTopicsFanOutOnlyToMatches) {
  // With the per-topic index, publish touches the matching bucket only; the
  // observable contract is that no handler for another topic ever fires.
  EventBus bus;
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 64; ++i) {
    bus.subscribe("topic." + std::to_string(i), [&counts, i](const std::string&, const Bytes&) {
      ++counts[static_cast<std::size_t>(i)];
    });
  }
  bus.publish("topic.7", {});
  bus.publish("topic.7", {});
  bus.publish("topic.63", {});
  bus.publish("topic.nope", {});
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(counts[static_cast<std::size_t>(i)], i == 7 ? 2 : (i == 63 ? 1 : 0)) << i;
  }
}

TEST(EventBusTest, UnsubscribeFromTopicIndex) {
  EventBus bus;
  int exact = 0, all = 0;
  auto t1 = bus.subscribe("t", [&](const std::string&, const Bytes&) { ++exact; });
  auto t2 = bus.subscribeAll([&](const std::string&, const Bytes&) { ++all; });
  EXPECT_TRUE(bus.unsubscribe(t1));
  bus.publish("t", {});
  EXPECT_EQ(exact, 0);
  EXPECT_EQ(all, 1);
  EXPECT_TRUE(bus.unsubscribe(t2));
  EXPECT_FALSE(bus.unsubscribe(t2));
  EXPECT_EQ(bus.subscriberCount(), 0u);
}

TEST(EventBusTest, Validation) {
  EventBus bus;
  EXPECT_THROW(bus.subscribe("", [](const std::string&, const Bytes&) {}),
               util::ContractError);
  EXPECT_THROW(bus.subscribe("t", nullptr), util::ContractError);
}

}  // namespace
}  // namespace mw::orb
