#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace mw::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  bool anyDifferent = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) anyDifferent = true;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng;
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= (v == 0);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceClampsOutOfRange) {
  Rng rng;
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(RngTest, GaussianRoughlyCentred) {
  Rng rng{7};
  double sum = 0;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

}  // namespace
}  // namespace mw::util
