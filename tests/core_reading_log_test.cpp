// Trace record/replay tests: captured sensor streams must reproduce the
// same fused state when replayed against a fresh stack.
#include <gtest/gtest.h>

#include <cstdio>

#include "adapters/ubisense.hpp"
#include "core/middlewhere.hpp"
#include "core/reading_log.hpp"
#include "sim/blueprint.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"

namespace mw::core {
namespace {

using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

db::SensorReading makeReading(const util::Clock& clock, const char* person, geo::Point2 at) {
  db::SensorReading r;
  r.sensorId = SensorId{"ubi-1"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{person};
  r.location = at;
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  return r;
}

TEST(ReadingLogTest, EncodeDecodeRoundTrip) {
  VirtualClock clock;
  ReadingRecorder recorder;
  recorder.record(makeReading(clock, "alice", {1, 2}));
  clock.advance(sec(1));
  auto withRegion = makeReading(clock, "bob", {3, 4});
  withRegion.symbolicRegion = geo::Rect::fromOrigin({0, 0}, 10, 10);
  recorder.record(withRegion);

  auto trace = decodeTrace(recorder.encode());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].mobileObjectId.str(), "alice");
  EXPECT_EQ(trace[1].symbolicRegion, withRegion.symbolicRegion);
  EXPECT_EQ(trace[1].detectionTime, withRegion.detectionTime);
}

TEST(ReadingLogTest, MalformedTraceThrows) {
  VirtualClock clock;
  ReadingRecorder recorder;
  recorder.record(makeReading(clock, "alice", {1, 2}));
  util::Bytes good = recorder.encode();

  util::Bytes badMagic = good;
  badMagic[0] ^= 0xFF;
  EXPECT_THROW(decodeTrace(badMagic), util::ParseError);
  util::Bytes truncated(good.begin(), good.begin() + 10);
  EXPECT_THROW(decodeTrace(truncated), util::ParseError);
  util::Bytes trailing = good;
  trailing.push_back(7);
  EXPECT_THROW(decodeTrace(trailing), util::ParseError);
}

TEST(ReadingLogTest, TeeForwardsAndRecords) {
  VirtualClock clock;
  ReadingRecorder recorder;
  int forwarded = 0;
  auto sink = recorder.tee([&](const db::SensorReading&) { ++forwarded; });
  sink(makeReading(clock, "alice", {1, 1}));
  sink(makeReading(clock, "alice", {2, 2}));
  EXPECT_EQ(forwarded, 2);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_THROW((void)recorder.tee(nullptr), mw::util::ContractError);
}

TEST(ReadingLogTest, ReplayReproducesFusedState) {
  // Live run: record a simulated scenario while it feeds a service.
  VirtualClock liveClock;
  sim::Blueprint bp = sim::generateBlueprint({.building = "SC", .roomsPerSide = 3});
  Middlewhere live(liveClock, bp.universe, bp.frames());
  bp.populate(live.database());
  db::SensorMeta ubi;
  ubi.sensorId = SensorId{"ubi-1"};
  ubi.sensorType = "Ubisense";
  ubi.errorSpec = quality::ubisenseSpec(1.0);
  ubi.scaleMisidentifyByArea = true;
  ubi.quality.ttl = sec(5);
  live.database().registerSensor(ubi);

  sim::World world(bp, 12);
  world.addPerson({MobileObjectId{"walker"}, "101", 4.0, 1.0, 0.0, 0.0});
  ReadingRecorder recorder;
  sim::Scenario scenario(
      liveClock, world,
      recorder.tee([&](const db::SensorReading& r) { live.locationService().ingest(r); }));
  auto adapter = std::make_shared<adapters::UbisenseAdapter>(
      util::AdapterId{"ubi"}, SensorId{"ubi-1"},
      adapters::UbisenseConfig{bp.universe, 0.5, 1.0, sec(5), ""});
  scenario.addAdapter(adapter, sec(1));
  scenario.run(sec(30));
  auto liveEstimate = live.locationService().locateObject(MobileObjectId{"walker"});
  ASSERT_TRUE(liveEstimate.has_value());
  ASSERT_GT(recorder.size(), 10u);

  // Replay into a FRESH stack whose virtual clock starts at the same epoch.
  VirtualClock replayClock;
  Middlewhere replayed(replayClock, bp.universe, bp.frames());
  bp.populate(replayed.database());
  replayed.database().registerSensor(ubi);
  std::size_t delivered = replayTrace(
      decodeTrace(recorder.encode()),
      [&](const db::SensorReading& r) { replayed.locationService().ingest(r); }, &replayClock);
  EXPECT_EQ(delivered, recorder.size());

  auto replayEstimate = replayed.locationService().locateObject(MobileObjectId{"walker"});
  ASSERT_TRUE(replayEstimate.has_value());
  EXPECT_EQ(replayEstimate->region, liveEstimate->region);
  EXPECT_DOUBLE_EQ(replayEstimate->probability, liveEstimate->probability);
  EXPECT_EQ(replayEstimate->cls, liveEstimate->cls);
}

TEST(ReadingLogTest, FileRoundTrip) {
  VirtualClock clock;
  ReadingRecorder recorder;
  recorder.record(makeReading(clock, "alice", {1, 2}));
  std::string path = ::testing::TempDir() + "/mw_trace_test.bin";
  recorder.saveFile(path);
  auto trace = loadTraceFile(path);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].mobileObjectId.str(), "alice");
  std::remove(path.c_str());
  EXPECT_THROW(loadTraceFile("/nonexistent/trace.bin"), util::MwError);
}

}  // namespace
}  // namespace mw::core
