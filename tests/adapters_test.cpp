// Adapter tests (§6): calibration metadata and simulated sensing behaviour
// against a scripted ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "adapters/biometric.hpp"
#include "adapters/card_reader.hpp"
#include "adapters/gps.hpp"
#include "adapters/rfid.hpp"
#include "adapters/ubisense.hpp"
#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::adapters {
namespace {

using mw::util::AdapterId;
using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

/// Scripted oracle for adapter tests.
class FakeTruth final : public GroundTruth {
 public:
  struct Entry {
    geo::Point2 position;
    bool outdoors = false;
    std::vector<std::string> devices;
  };
  std::unordered_map<util::MobileObjectId, Entry> entries;
  std::vector<util::MobileObjectId> order;

  void add(const char* id, geo::Point2 pos, std::vector<std::string> devices,
           bool isOutdoors = false) {
    MobileObjectId key{id};
    entries[key] = Entry{pos, isOutdoors, std::move(devices)};
    order.push_back(key);
  }

  std::vector<util::MobileObjectId> people() const override { return order; }
  std::optional<geo::Point2> position(const util::MobileObjectId& p) const override {
    auto it = entries.find(p);
    if (it == entries.end()) return std::nullopt;
    return it->second.position;
  }
  bool carrying(const util::MobileObjectId& p, const std::string& kind) const override {
    auto it = entries.find(p);
    if (it == entries.end()) return false;
    const auto& d = it->second.devices;
    return std::find(d.begin(), d.end(), kind) != d.end();
  }
  bool outdoors(const util::MobileObjectId& p) const override {
    auto it = entries.find(p);
    return it != entries.end() && it->second.outdoors;
  }
};

TEST(AdapterBaseTest, IdentityAndValidation) {
  UbisenseAdapter a(AdapterId{"ubi-A"}, SensorId{"ubi-1"},
                    {geo::Rect::fromOrigin({0, 0}, 50, 50), 0.5, 0.9, sec(3), ""});
  EXPECT_EQ(a.id().str(), "ubi-A");
  EXPECT_EQ(a.adapterType(), "Ubisense");
  EXPECT_FALSE(a.connected());
  EXPECT_THROW(UbisenseAdapter(AdapterId{""}, SensorId{"s"},
                               {geo::Rect::fromOrigin({0, 0}, 1, 1), 0.5, 0.9, sec(3), ""}),
               mw::util::ContractError);
}

TEST(UbisenseAdapterTest, MetaMatchesPaperCalibration) {
  UbisenseAdapter a(AdapterId{"ubi-A"}, SensorId{"ubi-1"},
                    {geo::Rect::fromOrigin({0, 0}, 50, 50), 0.5, 0.9, sec(3), ""});
  auto metas = a.metas();
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].sensorType, "Ubisense");
  EXPECT_DOUBLE_EQ(metas[0].errorSpec.detect, 0.95);
  EXPECT_DOUBLE_EQ(metas[0].errorSpec.misidentify, 0.05);
  EXPECT_TRUE(metas[0].scaleMisidentifyByArea);
  EXPECT_EQ(metas[0].quality.ttl, sec(3));
}

TEST(UbisenseAdapterTest, DetectsCarriedTagInCoverage) {
  VirtualClock clock;
  util::Rng rng{1};
  UbisenseAdapter a(AdapterId{"ubi-A"}, SensorId{"ubi-1"},
                    {geo::Rect::fromOrigin({0, 0}, 50, 50), 0.5, 1.0, sec(3), ""});
  FakeTruth truth;
  truth.add("alice", {10, 10}, {"tag"});
  truth.add("bob", {10, 12}, {});        // tag on the desk: never detected
  truth.add("carol", {200, 200}, {"tag"});  // outside coverage

  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  // y = 0.95: over 100 rounds alice must be seen ~95 times, the others never.
  std::size_t emitted = 0;
  for (int i = 0; i < 100; ++i) emitted += a.sample(truth, clock, rng);
  EXPECT_GT(emitted, 80u);
  EXPECT_LT(emitted, 100u * 1 + 1);
  for (const auto& r : readings) {
    EXPECT_EQ(r.mobileObjectId.str(), "alice");
    EXPECT_NEAR(r.location.x, 10, 1.0);
    EXPECT_NEAR(r.location.y, 10, 1.0);
    EXPECT_DOUBLE_EQ(r.detectionRadius, 0.5);
  }
}

TEST(RfidAdapterTest, SymbolicAreaOfInterest) {
  VirtualClock clock;
  util::Rng rng{2};
  RfidBadgeAdapter a(AdapterId{"rf-A"}, SensorId{"RF-12"},
                     {{25, 25}, 15.0, 0.8, sec(60), ""});
  EXPECT_EQ(a.areaOfInterest(), geo::Rect::centeredSquare({25, 25}, 15));
  auto metas = a.metas();
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_DOUBLE_EQ(metas[0].errorSpec.detect, 0.75);
  EXPECT_DOUBLE_EQ(metas[0].errorSpec.misidentify, 0.25);

  FakeTruth truth;
  truth.add("alice", {30, 30}, {"badge"});   // within 15 ft of the base
  truth.add("bob", {80, 80}, {"badge"});     // out of range
  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  for (int i = 0; i < 200; ++i) a.sample(truth, clock, rng);
  ASSERT_GT(readings.size(), 100u) << "y=0.75 over 200 rounds";
  for (const auto& r : readings) {
    EXPECT_EQ(r.mobileObjectId.str(), "alice");
    ASSERT_TRUE(r.symbolicRegion.has_value());
    EXPECT_EQ(*r.symbolicRegion, a.areaOfInterest());
  }
}

TEST(BiometricAdapterTest, TwoLogicalSensors) {
  BiometricAdapter a(AdapterId{"bio-A"}, SensorId{"fp-1"},
                     adapters::BiometricConfig{.devicePosition = {5, 5},
                                               .room = geo::Rect::fromOrigin({0, 0}, 10, 10)});
  auto metas = a.metas();
  ASSERT_EQ(metas.size(), 2u);
  EXPECT_EQ(metas[0].sensorId, a.shortSensorId());
  EXPECT_EQ(metas[1].sensorId, a.longSensorId());
  EXPECT_EQ(metas[0].quality.ttl, sec(30));
  EXPECT_EQ(metas[1].quality.ttl, util::minutes(15));
  EXPECT_DOUBLE_EQ(metas[0].errorSpec.carry, 1.0) << "x=1 for biometrics";
}

TEST(BiometricAdapterTest, AuthenticateEmitsShortAndLongReadings) {
  VirtualClock clock;
  BiometricAdapter a(AdapterId{"bio-A"}, SensorId{"fp-1"},
                     adapters::BiometricConfig{.devicePosition = {5, 5},
                                               .room = geo::Rect::fromOrigin({0, 0}, 10, 10)});
  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  a.authenticate(MobileObjectId{"alice"}, clock);
  ASSERT_EQ(readings.size(), 2u);
  EXPECT_EQ(readings[0].sensorId, a.shortSensorId());
  EXPECT_DOUBLE_EQ(readings[0].detectionRadius, 2.0);
  EXPECT_EQ(readings[1].sensorId, a.longSensorId());
  ASSERT_TRUE(readings[1].symbolicRegion.has_value());
  EXPECT_EQ(*readings[1].symbolicRegion, geo::Rect::fromOrigin({0, 0}, 10, 10));
}

TEST(BiometricAdapterTest, LogoutExpiresAndEmitsDeparture) {
  VirtualClock clock;
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "U");
  BiometricAdapter a(AdapterId{"bio-A"}, SensorId{"fp-1"},
                     adapters::BiometricConfig{.devicePosition = {5, 5},
                                               .room = geo::Rect::fromOrigin({0, 0}, 10, 10)});
  a.registerWith(database);
  a.connect([&](const db::SensorReading& r) { database.insertReading(r); });

  a.authenticate(MobileObjectId{"alice"}, clock);
  EXPECT_EQ(database.readingsFor(MobileObjectId{"alice"}).size(), 2u);

  clock.advance(sec(5));
  a.logout(MobileObjectId{"alice"}, clock, database);
  auto readings = database.readingsFor(MobileObjectId{"alice"});
  ASSERT_EQ(readings.size(), 1u) << "long reading force-expired, departure reading left";
  EXPECT_EQ(readings[0].reading.sensorId, a.shortSensorId());
  // The departure reading lives 15 s, not the short sensor's 30 s.
  clock.advance(sec(16));
  EXPECT_EQ(database.readingsFor(MobileObjectId{"alice"}).size(), 0u);
}

TEST(GpsAdapterTest, OnlyWorksOutdoors) {
  VirtualClock clock;
  util::Rng rng{3};
  GpsAdapter a(AdapterId{"gps-A"}, SensorId{"gps-1"}, {15.0, 1.0, sec(10), ""});
  FakeTruth truth;
  truth.add("alice", {10, 10}, {"gps"}, /*outdoors=*/true);
  truth.add("bob", {20, 20}, {"gps"}, /*outdoors=*/false);
  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  for (int i = 0; i < 100; ++i) a.sample(truth, clock, rng);
  EXPECT_GT(readings.size(), 80u);
  for (const auto& r : readings) {
    EXPECT_EQ(r.mobileObjectId.str(), "alice") << "no satellite lock indoors";
    EXPECT_DOUBLE_EQ(r.detectionRadius, 15.0);
  }
}

TEST(CardReaderAdapterTest, SwipeEmitsRoomReading) {
  VirtualClock clock;
  CardReaderAdapter a(AdapterId{"card-A"}, SensorId{"card-1"},
                      {geo::Rect::fromOrigin({0, 0}, 10, 10), sec(10), ""});
  auto metas = a.metas();
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].quality.ttl, sec(10)) << "paper: card readers go stale in 10 s";
  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  a.swipe(MobileObjectId{"alice"}, clock);
  ASSERT_EQ(readings.size(), 1u);
  ASSERT_TRUE(readings[0].symbolicRegion.has_value());
  EXPECT_EQ(*readings[0].symbolicRegion, geo::Rect::fromOrigin({0, 0}, 10, 10));
}

TEST(AdapterRegistrationTest, RegisterWithInstallsAllMetas) {
  VirtualClock clock;
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "U");
  BiometricAdapter a(AdapterId{"bio-A"}, SensorId{"fp-1"},
                     adapters::BiometricConfig{.devicePosition = {5, 5},
                                               .room = geo::Rect::fromOrigin({0, 0}, 10, 10)});
  a.registerWith(database);
  EXPECT_EQ(database.sensorCount(), 2u);
  EXPECT_TRUE(database.sensorMeta(a.shortSensorId()).has_value());
  EXPECT_TRUE(database.sensorMeta(a.longSensorId()).has_value());
}

}  // namespace
}  // namespace mw::adapters
