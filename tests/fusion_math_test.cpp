// Tests for the Bayesian fusion formulas (Eqs 1-7, §4.1.2) and the
// probability-space classification (§4.4).
#include <gtest/gtest.h>

#include <cmath>

#include "fusion/bayes.hpp"
#include "fusion/classify.hpp"
#include "util/error.hpp"

namespace mw::fusion {
namespace {

const geo::Rect kUniverse = geo::Rect::fromOrigin({0, 0}, 100, 100);  // a_U = 10'000

FusionInput input(const char* id, geo::Rect r, double p, double q, bool moving = false) {
  return FusionInput{util::SensorId{id}, r, p, q, moving};
}

// --- Eq. 5: single sensor ------------------------------------------------------

TEST(Eq5Test, MatchesClosedForm) {
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 10, 10);  // a_B = 100
  FusionInput s = input("s2", b, 0.9, 0.05);
  double expect = (100.0 * 0.9) / (100.0 * 0.9 + 0.05 * (10'000 - 100));
  EXPECT_NEAR(singleSensorProbability(s, kUniverse), expect, 1e-12);
}

TEST(Eq5Test, GeneralFormulaReducesToEq5ForOneSensor) {
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 10, 10);
  FusionInput s = input("s2", b, 0.9, 0.05);
  EXPECT_NEAR(regionProbability(b, {s}, kUniverse), singleSensorProbability(s, kUniverse), 1e-12);
}

TEST(Eq5Test, HigherPMeansHigherProbability) {
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 10, 10);
  double prev = 0;
  for (double p : {0.3, 0.5, 0.7, 0.9, 0.99}) {
    double prob = singleSensorProbability(input("s", b, p, 0.05), kUniverse);
    EXPECT_GT(prob, prev);
    prev = prob;
  }
}

TEST(Eq5Test, LargerRegionEasierToBeIn) {
  // With fixed p/q, the probability of being inside the reported region
  // grows with the region's area (there is more prior mass inside).
  double small = singleSensorProbability(
      input("s", geo::Rect::fromOrigin({0, 0}, 5, 5), 0.9, 0.05), kUniverse);
  double large = singleSensorProbability(
      input("s", geo::Rect::fromOrigin({0, 0}, 50, 50), 0.9, 0.05), kUniverse);
  EXPECT_GT(large, small);
}

// --- Eq. 4: contained pair ------------------------------------------------------

TEST(Eq4Test, ClosedFormTransliteration) {
  // p1=0.9 q1=0.1 areaA=25; p2=0.8 q2=0.05 areaB=400; areaU=10'000.
  double expectNum = (0.9 * 25 + 0.1 * (400 - 25)) * 0.8;
  double expectDen = expectNum + 0.1 * 0.05 * (10'000 - 400);
  EXPECT_NEAR(containedPairProbability(0.9, 0.1, 25, 0.8, 0.05, 400, 10'000),
              expectNum / expectDen, 1e-12);
}

TEST(Eq4Test, GeneralFormulaReducesToEq4) {
  // The derivation-consistent general formula must reproduce the paper's
  // fully-derived Eq. (4) exactly for the contained-rectangles case.
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);  // a_B = 400
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);    // a_A = 25, inside B
  FusionInputs ins{input("s1", a, 0.9, 0.1), input("s2", b, 0.8, 0.05)};
  double viaGeneral = regionProbability(b, ins, kUniverse);
  double viaEq4 = containedPairProbability(0.9, 0.1, 25, 0.8, 0.05, 400, 10'000);
  EXPECT_NEAR(viaGeneral, viaEq4, 1e-12);
}

TEST(Eq4Test, ReinforcementProperty) {
  // §4.1.2: "P(person_B | s1_A, s2_B) > P(person_B | s2_B) if p1 > q1" —
  // a second agreeing sensor increases confidence.
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);
  FusionInput s1 = input("s1", a, 0.9, 0.1);  // p1 > q1
  FusionInput s2 = input("s2", b, 0.8, 0.05);
  double both = regionProbability(b, {s1, s2}, kUniverse);
  double single = regionProbability(b, {s2}, kUniverse);
  EXPECT_GT(both, single);
}

TEST(Eq4Test, UninformativeSensorCannotReinforce) {
  // With p1 == q1 the extra sensor carries no information; probability
  // must not increase.
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);
  FusionInput s1 = input("s1", a, 0.3, 0.3);
  FusionInput s2 = input("s2", b, 0.8, 0.05);
  double both = regionProbability(b, {s1, s2}, kUniverse);
  double single = regionProbability(b, {s2}, kUniverse);
  EXPECT_NEAR(both, single, 1e-9);
}

// --- Eq. 6 shape: intersecting pair --------------------------------------------

TEST(Eq6Test, IntersectionIsMostLikelyRegion) {
  // Two overlapping sensors: the person is most likely in the overlap C.
  geo::Rect a = geo::Rect::fromOrigin({10, 10}, 10, 10);
  geo::Rect b = geo::Rect::fromOrigin({15, 15}, 10, 10);
  geo::Rect c = *a.intersection(b);
  FusionInputs ins{input("s1", a, 0.9, 0.01), input("s2", b, 0.9, 0.01)};
  double pc = regionProbability(c, ins, kUniverse);
  // Probability density: compare against the non-overlapping remainder of A
  // of the same area as C.
  geo::Rect remainder = geo::Rect::fromOrigin({10, 10}, 5, 5);
  double pr = regionProbability(remainder, ins, kUniverse);
  EXPECT_GT(pc, pr) << "overlap beats same-area corner of a single rect";
  EXPECT_GT(pc, 0.5) << "two agreeing precise sensors are convincing";
}

TEST(Eq6Test, PaperPrintedEq7DisagreesWithDerivation) {
  // Documented fidelity note: the verbatim Eq. (7) does not reduce to Eq. (4)
  // for contained rectangles — we keep it only for comparison.
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);
  FusionInputs ins{input("s1", a, 0.9, 0.1), input("s2", b, 0.8, 0.05)};
  double verbatim = regionProbabilityPaperEq7(b, ins, kUniverse);
  double derived = containedPairProbability(0.9, 0.1, 25, 0.8, 0.05, 400, 10'000);
  EXPECT_GT(std::abs(verbatim - derived), 0.01);
}

// --- Eq. 7 (general) -------------------------------------------------------------

TEST(Eq7Test, NoSensorsYieldsUniformPrior) {
  geo::Rect r = geo::Rect::fromOrigin({0, 0}, 10, 10);
  EXPECT_NEAR(regionProbability(r, {}, kUniverse), 100.0 / 10'000, 1e-12);
}

TEST(Eq7Test, WholeUniverseIsCertain) {
  FusionInputs ins{input("s1", geo::Rect::fromOrigin({5, 5}, 10, 10), 0.9, 0.05)};
  EXPECT_DOUBLE_EQ(regionProbability(kUniverse, ins, kUniverse), 1.0);
}

TEST(Eq7Test, EmptyRegionIsImpossible) {
  FusionInputs ins{input("s1", geo::Rect::fromOrigin({5, 5}, 10, 10), 0.9, 0.05)};
  EXPECT_DOUBLE_EQ(regionProbability(geo::Rect{}, ins, kUniverse), 0.0);
  EXPECT_DOUBLE_EQ(regionProbability(geo::Rect::fromOrigin({500, 500}, 5, 5), ins, kUniverse),
                   0.0)
      << "region outside the universe";
}

TEST(Eq7Test, ProbabilityAlwaysInUnitInterval) {
  geo::Rect a = geo::Rect::fromOrigin({10, 10}, 30, 30);
  geo::Rect r = geo::Rect::fromOrigin({20, 20}, 10, 10);
  for (double p : {0.1, 0.5, 0.9, 0.999}) {
    for (double q : {0.001, 0.2, 0.8}) {
      double prob = regionProbability(r, {input("s", a, p, q)}, kUniverse);
      EXPECT_GE(prob, 0.0);
      EXPECT_LE(prob, 1.0);
    }
  }
}

TEST(Eq7Test, DisjointSensorSuppressesRegion) {
  // A sensor reporting elsewhere makes this region LESS likely than prior.
  geo::Rect r = geo::Rect::fromOrigin({0, 0}, 10, 10);
  geo::Rect elsewhere = geo::Rect::fromOrigin({50, 50}, 10, 10);
  double prior = 100.0 / 10'000;
  double post = regionProbability(r, {input("s", elsewhere, 0.9, 0.01)}, kUniverse);
  EXPECT_LT(post, prior);
}

TEST(Eq7Test, ManyAgreeingSensorsConverge) {
  geo::Rect r = geo::Rect::fromOrigin({40, 40}, 4, 4);
  FusionInputs ins;
  double prev = 0;
  for (int n = 1; n <= 6; ++n) {
    ins.push_back(input(("s" + std::to_string(n)).c_str(),
                        geo::Rect::fromOrigin({40.0 - n, 40.0 - n}, 4 + 2.0 * n, 4 + 2.0 * n),
                        0.9, 0.05));
    double prob = regionProbability(r, ins, kUniverse);
    EXPECT_GT(prob, prev) << "each agreeing sensor reinforces (n=" << n << ")";
    prev = prob;
  }
  EXPECT_GT(prev, 0.8);
}

TEST(Eq7Test, NumericalStabilityWithManySensors) {
  // 64 sensors with tiny areas: the log-space implementation must not
  // underflow to NaN.
  geo::Rect r = geo::Rect::fromOrigin({50, 50}, 1, 1);
  FusionInputs ins;
  for (int n = 0; n < 64; ++n) {
    ins.push_back(input(("s" + std::to_string(n)).c_str(),
                        geo::Rect::centeredSquare({50.5, 50.5}, 0.6 + 0.01 * n), 0.95, 0.001));
  }
  double prob = regionProbability(r, ins, kUniverse);
  EXPECT_FALSE(std::isnan(prob));
  EXPECT_GT(prob, 0.99);
}

TEST(Eq7Test, UniverseValidation) {
  EXPECT_THROW(regionProbability(kUniverse, {}, geo::Rect{}), mw::util::ContractError);
}

// Parametrized reinforcement sweep: for every (p1, q1) with p1 > q1 the
// second sensor must strictly reinforce; with p1 < q1 it must weaken.
struct ReinforceCase {
  double p1, q1;
};

class ReinforcementSweep : public ::testing::TestWithParam<ReinforceCase> {};

TEST_P(ReinforcementSweep, SignOfReinforcementFollowsP1MinusQ1) {
  auto [p1, q1] = GetParam();
  geo::Rect b = geo::Rect::fromOrigin({10, 10}, 20, 20);
  geo::Rect a = geo::Rect::fromOrigin({15, 15}, 5, 5);
  FusionInput s1 = input("s1", a, p1, q1);
  FusionInput s2 = input("s2", b, 0.8, 0.05);
  double both = regionProbability(b, {s1, s2}, kUniverse);
  double single = regionProbability(b, {s2}, kUniverse);
  if (p1 > q1) {
    EXPECT_GT(both, single);
  } else if (p1 < q1) {
    EXPECT_LT(both, single);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ReinforcementSweep,
                         ::testing::Values(ReinforceCase{0.95, 0.01}, ReinforceCase{0.7, 0.3},
                                           ReinforceCase{0.51, 0.49}, ReinforceCase{0.3, 0.6},
                                           ReinforceCase{0.1, 0.9}, ReinforceCase{0.99, 0.98}));

// --- classification (§4.4) -------------------------------------------------------

TEST(ClassifyTest, PaperBuckets) {
  // Sensors with p = {0.75, 0.93, 0.99}: min 0.75, median 0.93, max 0.99.
  auto t = computeThresholds({0.93, 0.75, 0.99});
  EXPECT_DOUBLE_EQ(t.low, 0.75);
  EXPECT_DOUBLE_EQ(t.medium, 0.93);
  EXPECT_DOUBLE_EQ(t.high, 0.99);
  EXPECT_EQ(classify(0.5, t), ProbabilityClass::Low);
  EXPECT_EQ(classify(0.75, t), ProbabilityClass::Low) << "inclusive upper bound";
  EXPECT_EQ(classify(0.8, t), ProbabilityClass::Medium);
  EXPECT_EQ(classify(0.95, t), ProbabilityClass::High);
  EXPECT_EQ(classify(0.995, t), ProbabilityClass::VeryHigh);
}

TEST(ClassifyTest, EvenCountMedianIsMeanOfMiddles) {
  auto t = computeThresholds({0.6, 0.8, 0.9, 0.99});
  EXPECT_DOUBLE_EQ(t.medium, 0.85);
}

TEST(ClassifyTest, NoSensorsEverythingIsLow) {
  auto t = computeThresholds({});
  EXPECT_EQ(classify(0.999, t), ProbabilityClass::Low);
}

TEST(ClassifyTest, SingleSensorCollapsesBuckets) {
  auto t = computeThresholds({0.9});
  EXPECT_EQ(classify(0.85, t), ProbabilityClass::Low);
  EXPECT_EQ(classify(0.95, t), ProbabilityClass::VeryHigh);
}

TEST(ClassifyTest, ToStringNames) {
  EXPECT_EQ(toString(ProbabilityClass::Low), "low");
  EXPECT_EQ(toString(ProbabilityClass::VeryHigh), "very high");
}

}  // namespace
}  // namespace mw::fusion
