// Tests for the §1.1 technologies beyond §6's four: Bluetooth beacons and
// desktop logins.
#include <gtest/gtest.h>

#include <algorithm>

#include "adapters/bluetooth.hpp"
#include "adapters/desktop_login.hpp"
#include "spatialdb/database.hpp"
#include "util/error.hpp"

namespace mw::adapters {
namespace {

using mw::util::AdapterId;
using mw::util::minutes;
using mw::util::MobileObjectId;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::VirtualClock;

/// Minimal scripted oracle (mirrors the one in adapters_test.cpp).
class FakeTruth final : public GroundTruth {
 public:
  struct Entry {
    geo::Point2 position;
    std::vector<std::string> devices;
  };
  std::unordered_map<util::MobileObjectId, Entry> entries;
  std::vector<util::MobileObjectId> order;

  void add(const char* id, geo::Point2 pos, std::vector<std::string> devices) {
    MobileObjectId key{id};
    entries[key] = Entry{pos, std::move(devices)};
    order.push_back(key);
  }
  std::vector<util::MobileObjectId> people() const override { return order; }
  std::optional<geo::Point2> position(const util::MobileObjectId& p) const override {
    auto it = entries.find(p);
    if (it == entries.end()) return std::nullopt;
    return it->second.position;
  }
  bool carrying(const util::MobileObjectId& p, const std::string& kind) const override {
    auto it = entries.find(p);
    if (it == entries.end()) return false;
    const auto& d = it->second.devices;
    return std::find(d.begin(), d.end(), kind) != d.end();
  }
  bool outdoors(const util::MobileObjectId&) const override { return false; }
};

TEST(BluetoothAdapterTest, MetaAndCoverage) {
  BluetoothAdapter a(AdapterId{"bt-A"}, SensorId{"bt-1"}, {{50, 50}, 30.0, 0.85, sec(15), ""});
  EXPECT_EQ(a.adapterType(), "Bluetooth");
  EXPECT_EQ(a.coverage(), geo::Rect::centeredSquare({50, 50}, 30));
  auto metas = a.metas();
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].sensorType, "Bluetooth");
  EXPECT_TRUE(metas[0].scaleMisidentifyByArea);
  EXPECT_EQ(metas[0].quality.ttl, sec(15));
  EXPECT_THROW(BluetoothAdapter(AdapterId{"x"}, SensorId{"y"}, {{0, 0}, -1}),
               mw::util::ContractError);
}

TEST(BluetoothAdapterTest, DetectsPhonesInRangeOnly) {
  VirtualClock clock;
  util::Rng rng{6};
  BluetoothAdapter a(AdapterId{"bt-A"}, SensorId{"bt-1"},
                     {{50, 50}, 30.0, 1.0, sec(15), ""});
  FakeTruth truth;
  truth.add("near-with-phone", {60, 50}, {"phone"});
  truth.add("near-no-phone", {55, 50}, {});
  truth.add("far-with-phone", {200, 200}, {"phone"});

  std::vector<db::SensorReading> readings;
  a.connect([&](const db::SensorReading& r) { readings.push_back(r); });
  for (int i = 0; i < 200; ++i) a.sample(truth, clock, rng);
  ASSERT_GT(readings.size(), 120u) << "y=0.85 over 200 rounds";
  for (const auto& r : readings) {
    EXPECT_EQ(r.mobileObjectId.str(), "near-with-phone");
    ASSERT_TRUE(r.symbolicRegion.has_value());
    EXPECT_EQ(*r.symbolicRegion, a.coverage());
  }
}

TEST(DesktopLoginAdapterTest, LoginPlacesUserAtTheDesk) {
  VirtualClock clock;
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "U");
  DesktopLoginAdapter a(
      AdapterId{"pc-A"}, SensorId{"pc-1"},
      DesktopLoginConfig{.workstation = {20, 20},
                         .room = geo::Rect::fromOrigin({10, 10}, 20, 20)});
  a.registerWith(database);
  a.connect([&](const db::SensorReading& r) { database.insertReading(r); });

  a.login(MobileObjectId{"alice"}, clock);
  auto readings = database.readingsFor(MobileObjectId{"alice"});
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].reading.rect(), geo::Rect::centeredSquare({20, 20}, 3.0));

  // The session claim decays: after the TTL it is gone.
  clock.advance(minutes(11));
  EXPECT_TRUE(database.readingsFor(MobileObjectId{"alice"}).empty());
}

TEST(DesktopLoginAdapterTest, LogoutExpiresImmediately) {
  VirtualClock clock;
  db::SpatialDatabase database(clock, geo::Rect::fromOrigin({0, 0}, 100, 100), "U");
  DesktopLoginAdapter a(
      AdapterId{"pc-A"}, SensorId{"pc-1"},
      DesktopLoginConfig{.workstation = {20, 20},
                         .room = geo::Rect::fromOrigin({10, 10}, 20, 20)});
  a.registerWith(database);
  a.connect([&](const db::SensorReading& r) { database.insertReading(r); });
  a.login(MobileObjectId{"alice"}, clock);
  clock.advance(sec(30));
  a.logout(MobileObjectId{"alice"}, database);
  EXPECT_TRUE(database.readingsFor(MobileObjectId{"alice"}).empty());
}

TEST(DesktopLoginAdapterTest, ImpersonationRaisesFalsePositiveRate) {
  DesktopLoginAdapter trusting(AdapterId{"a"}, SensorId{"s1"},
                               {{0, 0}, geo::Rect::fromOrigin({0, 0}, 10, 10), 3.0,
                                minutes(10), /*impersonation=*/0.01, ""});
  DesktopLoginAdapter shared(AdapterId{"b"}, SensorId{"s2"},
                             {{0, 0}, geo::Rect::fromOrigin({0, 0}, 10, 10), 3.0,
                              minutes(10), /*impersonation=*/0.3, ""});
  auto ct = quality::deriveConfidence(trusting.metas()[0].errorSpec);
  auto cs = quality::deriveConfidence(shared.metas()[0].errorSpec);
  EXPECT_LT(ct.q, cs.q);
  EXPECT_TRUE(cs.informative()) << "still better than nothing";
  EXPECT_THROW(DesktopLoginAdapter(AdapterId{"c"}, SensorId{"s3"},
                                   {{0, 0}, geo::Rect{}, 3.0, minutes(10), 0.1, ""}),
               mw::util::ContractError);
}

}  // namespace
}  // namespace mw::adapters
