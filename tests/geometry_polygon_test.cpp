#include "geometry/polygon.hpp"

#include <gtest/gtest.h>

namespace mw::geo {
namespace {

Polygon unitSquare() { return Polygon{{0, 0}, {1, 0}, {1, 1}, {0, 1}}; }

TEST(PolygonTest, AreaOfSquareEitherWinding) {
  Polygon ccw{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Polygon cw{{0, 0}, {0, 4}, {4, 4}, {4, 0}};
  EXPECT_DOUBLE_EQ(ccw.area(), 16);
  EXPECT_DOUBLE_EQ(cw.area(), 16);
}

TEST(PolygonTest, AreaOfTriangle) {
  Polygon t{{0, 0}, {4, 0}, {0, 3}};
  EXPECT_DOUBLE_EQ(t.area(), 6);
}

TEST(PolygonTest, InvalidPolygonHasZeroArea) {
  Polygon p{{0, 0}, {1, 1}};
  EXPECT_FALSE(p.valid());
  EXPECT_EQ(p.area(), 0);
}

TEST(PolygonTest, Centroid) {
  EXPECT_EQ(unitSquare().centroid(), (Point2{0.5, 0.5}));
  Polygon t{{0, 0}, {3, 0}, {0, 3}};
  EXPECT_EQ(t.centroid(), (Point2{1, 1}));
}

TEST(PolygonTest, Mbr) {
  Polygon t{{1, 2}, {5, 0}, {3, 7}};
  EXPECT_EQ(t.mbr(), Rect::fromCorners({1, 0}, {5, 7}));
}

TEST(PolygonTest, FromRectRoundTrip) {
  Rect r = Rect::fromOrigin({2, 3}, 4, 5);
  Polygon p = Polygon::fromRect(r);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.area(), r.area());
  EXPECT_EQ(p.mbr(), r);
}

TEST(PolygonTest, ContainsPoint) {
  // L-shaped room: non-convex.
  Polygon ell{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  EXPECT_TRUE(ell.contains(Point2{1, 1}));
  EXPECT_TRUE(ell.contains(Point2{3, 1}));
  EXPECT_TRUE(ell.contains(Point2{1, 3}));
  EXPECT_FALSE(ell.contains(Point2{3, 3})) << "the notch is outside";
  EXPECT_TRUE(ell.contains(Point2{0, 0})) << "boundary counts as inside";
  EXPECT_TRUE(ell.contains(Point2{2, 3})) << "interior edge of the notch";
}

TEST(PolygonTest, ContainsPolygon) {
  Polygon big{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  Polygon small{{2, 2}, {4, 2}, {4, 4}, {2, 4}};
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
}

TEST(PolygonTest, NotchDefeatsVertexOnlyContainment) {
  // All vertices of `probe` are inside the L, but probe spans the notch.
  Polygon ell{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  Polygon probe{{1, 1}, {3.5, 1}, {3.5, 1.5}, {1, 3.5}};
  // probe crosses into the notch region; contains() must reject it.
  EXPECT_FALSE(ell.contains(probe));
}

TEST(PolygonTest, IntersectsOverlapping) {
  Polygon a{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Polygon b{{2, 2}, {6, 2}, {6, 6}, {2, 6}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
}

TEST(PolygonTest, IntersectsDisjoint) {
  Polygon a{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Polygon b{{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  EXPECT_FALSE(a.intersects(b));
}

TEST(PolygonTest, IntersectsContained) {
  Polygon big{{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  Polygon small{{2, 2}, {4, 2}, {4, 4}, {2, 4}};
  EXPECT_TRUE(big.intersects(small)) << "containment counts as intersection";
}

TEST(ClippedAreaTest, NoOverlapGivesZero) {
  EXPECT_DOUBLE_EQ(clippedArea(unitSquare(), Rect::fromOrigin({5, 5}, 1, 1)), 0);
}

TEST(ClippedAreaTest, FullContainmentGivesFullArea) {
  EXPECT_DOUBLE_EQ(clippedArea(unitSquare(), Rect::fromOrigin({-1, -1}, 3, 3)), 1);
}

TEST(ClippedAreaTest, HalfOverlap) {
  Polygon square{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_DOUBLE_EQ(clippedArea(square, Rect::fromOrigin({1, 0}, 4, 4)), 2);
}

TEST(ClippedAreaTest, TriangleClip) {
  Polygon tri{{0, 0}, {4, 0}, {0, 4}};
  // Clip to the lower-left unit square: keeps a unit right triangle corner
  // region plus the trapezoid... compute exactly: region x,y in [0,1]^2 and
  // x + y <= 4 -> whole unit square inside the triangle.
  EXPECT_DOUBLE_EQ(clippedArea(tri, Rect::fromOrigin({0, 0}, 1, 1)), 1);
  // Clip near the hypotenuse: x,y in [1.5,2.5]x[1.5,2.5] cut by x+y<=4.
  double a = clippedArea(tri, Rect::fromOrigin({1.5, 1.5}, 1, 1));
  EXPECT_NEAR(a, 0.5, 1e-9);
}

TEST(ClippedAreaTest, ClockwiseWindingHandled) {
  Polygon cw{{0, 0}, {0, 2}, {2, 2}, {2, 0}};
  EXPECT_DOUBLE_EQ(clippedArea(cw, Rect::fromOrigin({0, 0}, 1, 1)), 1);
}

TEST(ClippedAreaTest, MatchesRectIntersectionForRectPolygons) {
  Rect a = Rect::fromOrigin({0, 0}, 5, 3);
  Rect b = Rect::fromOrigin({2, 1}, 6, 6);
  double expect = a.intersection(b)->area();
  EXPECT_NEAR(clippedArea(Polygon::fromRect(a), b), expect, 1e-9);
}

}  // namespace
}  // namespace mw::geo
