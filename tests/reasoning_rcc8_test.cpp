#include "reasoning/rcc8.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mw::reasoning {
namespace {

using geo::Rect;

TEST(Rcc8Test, Disconnected) {
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 2, 2), Rect::fromOrigin({5, 5}, 2, 2)), Rcc8::DC);
}

TEST(Rcc8Test, ExternallyConnectedSharedEdge) {
  // Two rooms sharing a wall.
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 4, 4), Rect::fromOrigin({4, 0}, 4, 4)), Rcc8::EC);
}

TEST(Rcc8Test, ExternallyConnectedSharedCorner) {
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 2, 2), Rect::fromOrigin({2, 2}, 2, 2)), Rcc8::EC);
}

TEST(Rcc8Test, PartialOverlap) {
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 4, 4), Rect::fromOrigin({2, 2}, 4, 4)), Rcc8::PO);
}

TEST(Rcc8Test, TangentialProperPart) {
  // Inner rect touches the outer boundary.
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 2, 2), Rect::fromOrigin({0, 0}, 6, 6)), Rcc8::TPP);
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 6, 6), Rect::fromOrigin({0, 0}, 2, 2)), Rcc8::TPPi);
}

TEST(Rcc8Test, NonTangentialProperPart) {
  EXPECT_EQ(rcc8(Rect::fromOrigin({2, 2}, 2, 2), Rect::fromOrigin({0, 0}, 6, 6)), Rcc8::NTPP);
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 6, 6), Rect::fromOrigin({2, 2}, 2, 2)), Rcc8::NTPPi);
}

TEST(Rcc8Test, Equal) {
  EXPECT_EQ(rcc8(Rect::fromOrigin({1, 1}, 3, 3), Rect::fromOrigin({1, 1}, 3, 3)), Rcc8::EQ);
}

TEST(Rcc8Test, PartialOverlapOneSideFlush) {
  // Same-height strips overlapping in x: interiors overlap but neither
  // contains the other.
  EXPECT_EQ(rcc8(Rect::fromOrigin({0, 0}, 4, 4), Rect::fromOrigin({2, 0}, 4, 4)), Rcc8::PO);
}

TEST(Rcc8Test, EmptyRegionThrows) {
  EXPECT_THROW(rcc8(Rect{}, Rect::fromOrigin({0, 0}, 1, 1)), mw::util::ContractError);
}

TEST(Rcc8Test, ConverseTable) {
  EXPECT_EQ(converse(Rcc8::DC), Rcc8::DC);
  EXPECT_EQ(converse(Rcc8::EC), Rcc8::EC);
  EXPECT_EQ(converse(Rcc8::PO), Rcc8::PO);
  EXPECT_EQ(converse(Rcc8::EQ), Rcc8::EQ);
  EXPECT_EQ(converse(Rcc8::TPP), Rcc8::TPPi);
  EXPECT_EQ(converse(Rcc8::NTPP), Rcc8::NTPPi);
  EXPECT_EQ(converse(Rcc8::TPPi), Rcc8::TPP);
  EXPECT_EQ(converse(Rcc8::NTPPi), Rcc8::NTPP);
}

TEST(Rcc8Test, Predicates) {
  EXPECT_FALSE(connected(Rcc8::DC));
  EXPECT_TRUE(connected(Rcc8::EC));
  EXPECT_TRUE(connected(Rcc8::PO));
  EXPECT_TRUE(partOf(Rcc8::TPP));
  EXPECT_TRUE(partOf(Rcc8::NTPP));
  EXPECT_TRUE(partOf(Rcc8::EQ));
  EXPECT_FALSE(partOf(Rcc8::TPPi));
  EXPECT_FALSE(partOf(Rcc8::PO));
}

TEST(Rcc8Test, ToStringNames) {
  EXPECT_EQ(toString(Rcc8::DC), "DC");
  EXPECT_EQ(toString(Rcc8::NTPPi), "NTPPi");
}

// --- composition table ---------------------------------------------------------

TEST(Rcc8CompositionTest, IdentityOfEquality) {
  for (int i = 0; i < 8; ++i) {
    Rcc8 r = static_cast<Rcc8>(i);
    EXPECT_EQ(compose(Rcc8::EQ, r), rcc8Bit(r)) << toString(r);
    EXPECT_EQ(compose(r, Rcc8::EQ), rcc8Bit(r)) << toString(r);
  }
}

TEST(Rcc8CompositionTest, KnownEntries) {
  // Strict containment chains compose to strict containment.
  EXPECT_EQ(compose(Rcc8::NTPP, Rcc8::NTPP), rcc8Bit(Rcc8::NTPP));
  EXPECT_EQ(compose(Rcc8::TPP, Rcc8::NTPP), rcc8Bit(Rcc8::NTPP));
  // A part of something disconnected from c is disconnected from c.
  EXPECT_EQ(compose(Rcc8::TPP, Rcc8::DC), rcc8Bit(Rcc8::DC));
  EXPECT_EQ(compose(Rcc8::NTPP, Rcc8::DC), rcc8Bit(Rcc8::DC));
  // Fully ambiguous cells.
  EXPECT_EQ(compose(Rcc8::DC, Rcc8::DC), kRcc8All);
  EXPECT_EQ(compose(Rcc8::PO, Rcc8::PO), kRcc8All);
  EXPECT_EQ(compose(Rcc8::NTPP, Rcc8::NTPPi), kRcc8All);
}

TEST(Rcc8CompositionTest, ConverseSymmetryOfTheTable) {
  // compose(R1,R2) must equal the converse of compose(conv(R2), conv(R1)).
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      Rcc8 r1 = static_cast<Rcc8>(i), r2 = static_cast<Rcc8>(j);
      Rcc8Set forward = compose(r1, r2);
      Rcc8Set backward = compose(converse(r2), converse(r1));
      Rcc8Set backConv = 0;
      for (Rcc8 r : rcc8SetElements(backward)) backConv |= rcc8Bit(converse(r));
      EXPECT_EQ(forward, backConv) << toString(r1) << " o " << toString(r2);
    }
  }
}

TEST(Rcc8CompositionTest, SetHelpers) {
  Rcc8Set s = rcc8Bit(Rcc8::DC) | rcc8Bit(Rcc8::EQ);
  EXPECT_TRUE(rcc8SetContains(s, Rcc8::DC));
  EXPECT_FALSE(rcc8SetContains(s, Rcc8::PO));
  EXPECT_EQ(rcc8SetElements(s), (std::vector<Rcc8>{Rcc8::DC, Rcc8::EQ}));
  EXPECT_EQ(rcc8SetElements(kRcc8All).size(), 8u);
}

// Property: the table is SOUND — for random rect triples, the observed
// relation(a,c) is always a member of compose(relation(a,b), relation(b,c)).
class Rcc8CompositionSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Rcc8CompositionSoundness, ObservedRelationAlwaysInComposedSet) {
  mw::util::Rng rng{GetParam()};
  int checked = 0;
  for (int i = 0; i < 3000; ++i) {
    auto randomRect = [&] {
      return Rect::fromOrigin({std::floor(rng.uniform(0, 12)), std::floor(rng.uniform(0, 12))},
                              std::floor(rng.uniform(1, 8)), std::floor(rng.uniform(1, 8)));
    };
    Rect a = randomRect(), b = randomRect(), c = randomRect();
    Rcc8 ab = rcc8(a, b), bc = rcc8(b, c), ac = rcc8(a, c);
    EXPECT_TRUE(rcc8SetContains(compose(ab, bc), ac))
        << toString(ab) << " o " << toString(bc) << " observed " << toString(ac) << " a=" << a
        << " b=" << b << " c=" << c;
    ++checked;
  }
  EXPECT_EQ(checked, 3000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rcc8CompositionSoundness,
                         ::testing::Values(3u, 19u, 71u, 113u));

// Property: exactly-one-relation and converse duality over random pairs.
class Rcc8Properties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Rcc8Properties, ConverseDualityHolds) {
  mw::util::Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    Rect a = Rect::fromOrigin({rng.uniform(0, 20), rng.uniform(0, 20)},
                              std::floor(rng.uniform(1, 8)), std::floor(rng.uniform(1, 8)));
    Rect b = Rect::fromOrigin({std::floor(rng.uniform(0, 20)), std::floor(rng.uniform(0, 20))},
                              std::floor(rng.uniform(1, 8)), std::floor(rng.uniform(1, 8)));
    EXPECT_EQ(rcc8(b, a), converse(rcc8(a, b))) << "a=" << a << " b=" << b;
  }
}

TEST_P(Rcc8Properties, RelationConsistentWithSetPredicates) {
  mw::util::Rng rng{GetParam()};
  for (int i = 0; i < 300; ++i) {
    Rect a = Rect::fromOrigin({std::floor(rng.uniform(0, 15)), std::floor(rng.uniform(0, 15))},
                              std::floor(rng.uniform(1, 6)), std::floor(rng.uniform(1, 6)));
    Rect b = Rect::fromOrigin({std::floor(rng.uniform(0, 15)), std::floor(rng.uniform(0, 15))},
                              std::floor(rng.uniform(1, 6)), std::floor(rng.uniform(1, 6)));
    Rcc8 rel = rcc8(a, b);
    SCOPED_TRACE(::testing::Message() << "a=" << a << " b=" << b << " rel=" << toString(rel));
    EXPECT_EQ(connected(rel), a.intersects(b));
    if (rel == Rcc8::EQ) {
      EXPECT_EQ(a, b);
    }
    if (partOf(rel)) {
      EXPECT_TRUE(b.contains(a));
    }
    if (rel == Rcc8::PO) {
      EXPECT_TRUE(a.overlapsInterior(b));
      EXPECT_FALSE(a.contains(b));
      EXPECT_FALSE(b.contains(a));
    }
    if (rel == Rcc8::EC) {
      EXPECT_TRUE(a.intersects(b));
      EXPECT_FALSE(a.overlapsInterior(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Rcc8Properties, ::testing::Values(11u, 23u, 31u, 47u));

}  // namespace
}  // namespace mw::reasoning
