#include "spatialdb/database.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace mw::db {
namespace {

using mw::util::ContractError;
using mw::util::MobileObjectId;
using mw::util::NotFoundError;
using mw::util::sec;
using mw::util::SensorId;
using mw::util::SpatialObjectId;
using mw::util::VirtualClock;

// The paper's Table 1 floor (Fig 8): rooms 3105, NetLab and a corridor on
// floor CS/Floor3.
SpatialObjectRow floorRow() {
  return {SpatialObjectId{"Floor3"}, "CS", ObjectType::Floor, GeometryType::Polygon,
          {{0, 0}, {500, 0}, {500, 100}, {0, 100}},
          {}};
}

SpatialObjectRow roomRow(const char* id, double x0, double x1,
                         ObjectType type = ObjectType::Room) {
  return {SpatialObjectId{id}, "CS/Floor3", type, GeometryType::Polygon,
          {{x0, 0}, {x1, 0}, {x1, 30}, {x0, 30}},
          {}};
}

SpatialDatabase makeDb(const util::Clock& clock) {
  glob::FrameTree frames;
  frames.addRoot("CS");
  frames.addFrame("CS/Floor3", "CS", glob::Transform2{});
  SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 500, 100), std::move(frames));
  db.addObject(floorRow());
  db.addObject(roomRow("3105", 330, 350));
  db.addObject(roomRow("NetLab", 360, 380));
  db.addObject(roomRow("LabCorridor", 310, 330, ObjectType::Corridor));
  return db;
}

SensorMeta ubisenseMeta(const char* id) {
  SensorMeta meta;
  meta.sensorId = SensorId{id};
  meta.sensorType = "Ubisense";
  meta.errorSpec = quality::ubisenseSpec(1.0);
  meta.scaleMisidentifyByArea = true;
  meta.quality.ttl = sec(3);  // paper's sensor table: Ubisense TTL 3s
  return meta;
}

TEST(SpatialDbObjectsTest, AddAndLookup) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_EQ(db.objectCount(), 4u);
  auto room = db.object("CS/Floor3", SpatialObjectId{"3105"});
  ASSERT_TRUE(room.has_value());
  EXPECT_EQ(room->objectType, ObjectType::Room);
  EXPECT_EQ(room->fullGlob(), "CS/Floor3/3105");
  EXPECT_EQ(db.object("CS/Floor3", SpatialObjectId{"nope"}), std::nullopt);
}

TEST(SpatialDbObjectsTest, ObjectByGlob) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  auto room = db.objectByGlob("CS/Floor3/NetLab");
  ASSERT_TRUE(room.has_value());
  EXPECT_EQ(room->id.str(), "NetLab");
  EXPECT_EQ(db.objectByGlob("CS/Floor3/ghost"), std::nullopt);
}

TEST(SpatialDbObjectsTest, DuplicateKeyThrows) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_THROW(db.addObject(roomRow("3105", 100, 120)), ContractError);
}

TEST(SpatialDbObjectsTest, UnknownPrefixResolvesToNearestAncestorFrame) {
  // "CS/Floor9" has no frame of its own, so coordinates are interpreted in
  // the nearest registered ancestor — the building frame "CS".
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_EQ(db.frameFor("CS/Floor9"), "CS");
  EXPECT_EQ(db.frameFor("CS/Floor3/closet"), "CS/Floor3");
  EXPECT_EQ(db.frameFor(""), "CS");
  EXPECT_EQ(db.frameFor("Mars"), "CS") << "foreign prefixes fall back to root";
  SpatialObjectRow row = roomRow("X", 0, 10);
  row.globPrefix = "CS/Floor9";
  db.addObject(row);
  EXPECT_EQ(db.universeMbr(row), geo::Rect::fromOrigin({0, 0}, 10, 30))
      << "coordinates read in the building frame";
}

TEST(SpatialDbObjectsTest, InvalidGeometryThrows) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  SpatialObjectRow row{SpatialObjectId{"p"}, "CS", ObjectType::Other, GeometryType::Polygon,
                       {{0, 0}, {1, 1}},  // 2 vertices is not a polygon
                       {}};
  EXPECT_THROW(db.addObject(row), ContractError);
}

TEST(SpatialDbObjectsTest, RemoveObject) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_TRUE(db.removeObject("CS/Floor3", SpatialObjectId{"NetLab"}));
  EXPECT_FALSE(db.removeObject("CS/Floor3", SpatialObjectId{"NetLab"}));
  EXPECT_EQ(db.objectCount(), 3u);
  EXPECT_EQ(db.object("CS/Floor3", SpatialObjectId{"NetLab"}), std::nullopt);
  // Spatial index no longer returns it either.
  auto hits = db.objectsIntersecting(geo::Rect::fromOrigin({360, 0}, 20, 30));
  for (const auto& row : hits) EXPECT_NE(row.id.str(), "NetLab");
}

TEST(SpatialDbObjectsTest, ObjectsOfType) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_EQ(db.objectsOfType(ObjectType::Room).size(), 2u);
  EXPECT_EQ(db.objectsOfType(ObjectType::Corridor).size(), 1u);
  EXPECT_EQ(db.objectsOfType(ObjectType::Display).size(), 0u);
}

TEST(SpatialDbObjectsTest, ObjectsIntersecting) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  auto hits = db.objectsIntersecting(geo::Rect::fromOrigin({335, 5}, 5, 5));
  // Floor + room 3105.
  ASSERT_EQ(hits.size(), 2u);
  std::vector<std::string> ids{hits[0].id.str(), hits[1].id.str()};
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"3105", "Floor3"}));
}

TEST(SpatialDbObjectsTest, ObjectsContainingUsesExactGeometry) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  auto hits = db.objectsContaining(geo::Point2{340, 10});
  std::vector<std::string> ids;
  for (const auto& h : hits) ids.push_back(h.id.str());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"3105", "Floor3"}));
  // A point in no room, only the floor.
  hits = db.objectsContaining(geo::Point2{200, 50});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id.str(), "Floor3");
}

TEST(SpatialDbObjectsTest, PropertyQuery) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  SpatialObjectRow outlet{SpatialObjectId{"outlet1"},
                          "CS/Floor3",
                          ObjectType::PowerOutlet,
                          GeometryType::Point,
                          {{340, 1}},
                          {{"voltage", "120"}}};
  db.addObject(outlet);
  auto hits = db.query([](const SpatialObjectRow& row) {
    auto it = row.properties.find("voltage");
    return it != row.properties.end() && it->second == "120";
  });
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id.str(), "outlet1");
}

TEST(SpatialDbObjectsTest, NearestWithPredicate) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  auto nearest = db.nearest(geo::Point2{355, 10}, [](const SpatialObjectRow& row) {
    return row.objectType == ObjectType::Room;
  });
  ASSERT_TRUE(nearest.has_value());
  // 3105 ends at x=350 (distance 5), NetLab starts at 360 (distance 5) —
  // either is acceptable; ask for a point strictly nearer NetLab.
  nearest = db.nearest(geo::Point2{358, 10}, [](const SpatialObjectRow& row) {
    return row.objectType == ObjectType::Room;
  });
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id.str(), "NetLab");
  EXPECT_EQ(db.nearest(geo::Point2{0, 0},
                       [](const SpatialObjectRow&) { return false; }),
            std::nullopt);
}

TEST(SpatialDbObjectsTest, FrameConversionOnIngest) {
  // A room registered in a translated floor frame must land at the right
  // universe position.
  VirtualClock clock;
  glob::FrameTree frames;
  frames.addRoot("B");
  frames.addFrame("B/F2", "B", glob::Transform2{{1000, 0}, 0});
  SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 2000, 100), std::move(frames));
  SpatialObjectRow row{SpatialObjectId{"r1"}, "B/F2", ObjectType::Room, GeometryType::Polygon,
                       {{10, 10}, {20, 10}, {20, 20}, {10, 20}},
                       {}};
  db.addObject(row);
  EXPECT_EQ(db.universeMbr(row), geo::Rect::fromOrigin({1010, 10}, 10, 10));
  auto hits = db.objectsContaining(geo::Point2{1015, 15});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id.str(), "r1");
}

// --- sensor tables ------------------------------------------------------------

TEST(SpatialDbSensorsTest, RegisterAndIngest) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  EXPECT_EQ(db.sensorCount(), 1u);
  ASSERT_TRUE(db.sensorMeta(SensorId{"Ubi-18"}).has_value());
  EXPECT_EQ(db.sensorMeta(SensorId{"Ubi-18"})->confidencePercent(), 95);

  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.sensorType = "Ubisense";
  r.mobileObjectId = MobileObjectId{"ralph-bat"};
  r.location = {341, 3};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);

  auto readings = db.readingsFor(MobileObjectId{"ralph-bat"});
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_FALSE(readings[0].moving) << "first reading is not 'moving'";
  EXPECT_EQ(readings[0].reading.rect(), geo::Rect::centeredSquare({341, 3}, 0.5));
}

TEST(SpatialDbSensorsTest, UnregisteredSensorThrows) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  SensorReading r;
  r.sensorId = SensorId{"ghost"};
  r.mobileObjectId = MobileObjectId{"x"};
  r.detectionTime = clock.now();
  EXPECT_THROW(db.insertReading(r), NotFoundError);
}

TEST(SpatialDbSensorsTest, MovingFlagDerivedFromPreviousReading) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {100, 50};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  clock.advance(sec(1));
  r.location = {105, 50};
  r.detectionTime = clock.now();
  db.insertReading(r);
  auto readings = db.readingsFor(MobileObjectId{"tom"});
  ASSERT_EQ(readings.size(), 1u) << "latest reading per sensor";
  EXPECT_TRUE(readings[0].moving);
  // A repeat at the same place clears the flag.
  clock.advance(sec(1));
  r.detectionTime = clock.now();
  db.insertReading(r);
  readings = db.readingsFor(MobileObjectId{"tom"});
  EXPECT_FALSE(readings[0].moving);
}

TEST(SpatialDbSensorsTest, TtlExpiryFiltersReadings) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));  // TTL 3s
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {100, 50};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  clock.advance(sec(2));
  EXPECT_EQ(db.readingsFor(MobileObjectId{"tom"}).size(), 1u);
  clock.advance(sec(2));
  EXPECT_EQ(db.readingsFor(MobileObjectId{"tom"}).size(), 0u) << "expired after TTL";
}

TEST(SpatialDbSensorsTest, PurgeExpiredRemovesStaleRows) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {100, 50};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  EXPECT_EQ(db.knownMobileObjects().size(), 1u);
  clock.advance(sec(10));
  db.purgeExpired();
  EXPECT_EQ(db.knownMobileObjects().size(), 0u);
}

TEST(SpatialDbSensorsTest, ForceExpireOnLogout) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  db.registerSensor(ubisenseMeta("Ubi-19"));
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {100, 50};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  r.sensorId = SensorId{"Ubi-19"};
  db.insertReading(r);
  db.expireReadings(MobileObjectId{"tom"}, SensorId{"Ubi-18"});
  auto readings = db.readingsFor(MobileObjectId{"tom"});
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].reading.sensorId.str(), "Ubi-19");
}

TEST(SpatialDbSensorsTest, SymbolicRegionReadingsConvertFrames) {
  VirtualClock clock;
  glob::FrameTree frames;
  frames.addRoot("B");
  frames.addFrame("B/F1", "B", glob::Transform2{{100, 100}, 0});
  SpatialDatabase db(clock, geo::Rect::fromOrigin({0, 0}, 1000, 1000), std::move(frames));
  SensorMeta meta = ubisenseMeta("card-1");
  meta.sensorType = "CardReader";
  db.registerSensor(meta);

  SensorReading r;
  r.sensorId = SensorId{"card-1"};
  r.globPrefix = "B/F1";
  r.mobileObjectId = MobileObjectId{"alice"};
  r.location = {5, 5};
  r.symbolicRegion = geo::Rect::fromOrigin({0, 0}, 10, 10);  // the room, local frame
  r.detectionTime = clock.now();
  db.insertReading(r);
  auto readings = db.readingsFor(MobileObjectId{"alice"});
  ASSERT_EQ(readings.size(), 1u);
  EXPECT_EQ(readings[0].reading.rect(), geo::Rect::fromOrigin({100, 100}, 10, 10))
      << "region stored in universe frame";
}

TEST(SpatialDbSensorsTest, SensorHealthTracksActivityAndSilence) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));  // TTL 3 s
  db.registerSensor(ubisenseMeta("Ubi-19"));

  // Never-reporting sensors are silent from the start.
  auto health = db.sensorHealth();
  ASSERT_EQ(health.size(), 2u);
  for (const auto& h : health) {
    EXPECT_TRUE(h.silent);
    EXPECT_EQ(h.readingCount, 0u);
    EXPECT_EQ(h.lastReadingAge, std::nullopt);
  }

  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {100, 50};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  clock.advance(sec(2));
  r.detectionTime = clock.now();
  db.insertReading(r);

  health = db.sensorHealth();
  ASSERT_EQ(health.size(), 2u);
  // sensorIds() sorts: Ubi-18 first.
  EXPECT_EQ(health[0].sensorId.str(), "Ubi-18");
  EXPECT_FALSE(health[0].silent);
  EXPECT_EQ(health[0].readingCount, 2u);
  ASSERT_TRUE(health[0].lastReadingAge.has_value());
  EXPECT_EQ(*health[0].lastReadingAge, sec(0));
  EXPECT_TRUE(health[1].silent) << "Ubi-19 never reported";

  // After 3x TTL of silence, Ubi-18 trips the threshold too.
  clock.advance(sec(10));
  health = db.sensorHealth(/*silenceFactor=*/3.0);
  EXPECT_TRUE(health[0].silent);
  // A laxer threshold keeps it healthy.
  EXPECT_FALSE(db.sensorHealth(/*silenceFactor=*/10.0)[0].silent);
  EXPECT_THROW(db.sensorHealth(0.0), ContractError);
}

// --- triggers (§5.3) -----------------------------------------------------------

TEST(SpatialDbTriggersTest, FiresOnIntersectingReading) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));

  std::vector<TriggerEvent> events;
  geo::Rect room3105 = geo::Rect::fromOrigin({330, 0}, 20, 30);
  auto id = db.createTrigger(
      {room3105, std::nullopt, [&](const TriggerEvent& e) { events.push_back(e); }});
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(db.triggerCount(), 1u);

  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {340, 10};  // inside 3105
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, id);
  EXPECT_EQ(events[0].reading.mobileObjectId.str(), "tom");

  // A reading elsewhere does not fire.
  r.location = {100, 50};
  db.insertReading(r);
  EXPECT_EQ(events.size(), 1u);
}

TEST(SpatialDbTriggersTest, SubjectFilter) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  int fired = 0;
  db.createTrigger({geo::Rect::fromOrigin({330, 0}, 20, 30), MobileObjectId{"alice"},
                    [&](const TriggerEvent&) { ++fired; }});
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"bob"};
  r.location = {340, 10};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  EXPECT_EQ(fired, 0) << "wrong subject";
  r.mobileObjectId = MobileObjectId{"alice"};
  db.insertReading(r);
  EXPECT_EQ(fired, 1);
}

TEST(SpatialDbTriggersTest, DropTrigger) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  int fired = 0;
  auto id = db.createTrigger({geo::Rect::fromOrigin({330, 0}, 20, 30), std::nullopt,
                              [&](const TriggerEvent&) { ++fired; }});
  EXPECT_TRUE(db.dropTrigger(id));
  EXPECT_FALSE(db.dropTrigger(id));
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {340, 10};
  r.detectionRadius = 0.5;
  r.detectionTime = clock.now();
  db.insertReading(r);
  EXPECT_EQ(fired, 0);
}

TEST(SpatialDbTriggersTest, ValidationOfSpecs) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  EXPECT_THROW(db.createTrigger({geo::Rect{}, std::nullopt, [](const TriggerEvent&) {}}),
               ContractError);
  EXPECT_THROW(db.createTrigger({geo::Rect::fromOrigin({0, 0}, 1, 1), std::nullopt, nullptr}),
               ContractError);
}

TEST(SpatialDbTriggersTest, ManyTriggersOnlyMatchingFire) {
  VirtualClock clock;
  SpatialDatabase db = makeDb(clock);
  db.registerSensor(ubisenseMeta("Ubi-18"));
  int fired = 0;
  // 100 triggers tiled along the corridor; a reading should hit exactly one.
  for (int i = 0; i < 100; ++i) {
    db.createTrigger({geo::Rect::fromOrigin({static_cast<double>(i * 5), 40}, 5, 5), std::nullopt,
                      [&](const TriggerEvent&) { ++fired; }});
  }
  SensorReading r;
  r.sensorId = SensorId{"Ubi-18"};
  r.mobileObjectId = MobileObjectId{"tom"};
  r.location = {52.5, 42.5};
  r.detectionRadius = 0.4;
  r.detectionTime = clock.now();
  db.insertReading(r);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace mw::db
