#include "geometry/rect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace mw::geo {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.height(), 0);
}

TEST(RectTest, FromCornersNormalizes) {
  Rect a = Rect::fromCorners({5, 7}, {1, 2});
  EXPECT_EQ(a.lo(), (Point2{1, 2}));
  EXPECT_EQ(a.hi(), (Point2{5, 7}));
  EXPECT_DOUBLE_EQ(a.area(), 4 * 5);
}

TEST(RectTest, FromOrigin) {
  Rect r = Rect::fromOrigin({2, 3}, 4, 5);
  EXPECT_EQ(r.lo(), (Point2{2, 3}));
  EXPECT_EQ(r.hi(), (Point2{6, 8}));
  EXPECT_THROW(Rect::fromOrigin({0, 0}, -1, 1), mw::util::ContractError);
}

TEST(RectTest, CenteredSquareIsDiscMbr) {
  Rect r = Rect::centeredSquare({10, 10}, 0.5);  // Ubisense 6" radius
  EXPECT_EQ(r.lo(), (Point2{9.5, 9.5}));
  EXPECT_EQ(r.hi(), (Point2{10.5, 10.5}));
  EXPECT_DOUBLE_EQ(r.area(), 1.0);
  EXPECT_THROW(Rect::centeredSquare({0, 0}, -1), mw::util::ContractError);
}

TEST(RectTest, DegenerateRectHasZeroAreaButContainsItsPoint) {
  Rect r = Rect::fromCorners({3, 3}, {3, 3});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_TRUE(r.contains(Point2{3, 3}));
}

TEST(RectTest, ContainsPoint) {
  Rect r = Rect::fromOrigin({0, 0}, 10, 10);
  EXPECT_TRUE(r.contains(Point2{5, 5}));
  EXPECT_TRUE(r.contains(Point2{0, 0}));    // corner
  EXPECT_TRUE(r.contains(Point2{10, 5}));   // edge
  EXPECT_FALSE(r.contains(Point2{10.01, 5}));
  EXPECT_FALSE(r.contains(Point2{-1, 5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer = Rect::fromOrigin({0, 0}, 10, 10);
  Rect inner = Rect::fromOrigin({2, 2}, 3, 3);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer)) << "containment is reflexive";
  // Touching the boundary still counts for (non-strict) containment.
  Rect touching = Rect::fromOrigin({0, 0}, 5, 5);
  EXPECT_TRUE(outer.contains(touching));
  EXPECT_FALSE(outer.containsStrictly(touching));
  EXPECT_TRUE(outer.containsStrictly(inner));
}

TEST(RectTest, EmptyRectContainmentConventions) {
  Rect empty;
  Rect r = Rect::fromOrigin({0, 0}, 1, 1);
  EXPECT_TRUE(r.contains(empty)) << "empty set subset of anything";
  EXPECT_FALSE(empty.contains(r));
  EXPECT_FALSE(empty.intersects(r));
  EXPECT_FALSE(r.intersects(empty));
}

TEST(RectTest, IntersectionBasics) {
  Rect a = Rect::fromOrigin({0, 0}, 4, 4);
  Rect b = Rect::fromOrigin({2, 2}, 4, 4);
  auto c = a.intersection(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, Rect::fromOrigin({2, 2}, 2, 2));
  EXPECT_DOUBLE_EQ(c->area(), 4);
}

TEST(RectTest, IntersectionCommutes) {
  Rect a = Rect::fromOrigin({0, 0}, 5, 3);
  Rect b = Rect::fromOrigin({4, 1}, 7, 9);
  EXPECT_EQ(a.intersection(b), b.intersection(a));
}

TEST(RectTest, DisjointRectsDoNotIntersect) {
  Rect a = Rect::fromOrigin({0, 0}, 1, 1);
  Rect b = Rect::fromOrigin({5, 5}, 1, 1);
  EXPECT_FALSE(a.intersects(b));
  EXPECT_EQ(a.intersection(b), std::nullopt);
}

TEST(RectTest, EdgeTouchingIntersectsButNotInterior) {
  Rect a = Rect::fromOrigin({0, 0}, 2, 2);
  Rect b = Rect::fromOrigin({2, 0}, 2, 2);  // shares the x=2 edge
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.overlapsInterior(b));
  auto line = a.intersection(b);
  ASSERT_TRUE(line.has_value());
  EXPECT_DOUBLE_EQ(line->area(), 0);
}

TEST(RectTest, UnionCoversBoth) {
  Rect a = Rect::fromOrigin({0, 0}, 1, 1);
  Rect b = Rect::fromOrigin({5, 5}, 1, 1);
  Rect u = a.unionWith(b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u, Rect::fromOrigin({0, 0}, 6, 6));
  EXPECT_EQ(a.unionWith(Rect{}), a) << "union with empty is identity";
  EXPECT_EQ(Rect{}.unionWith(b), b);
}

TEST(RectTest, Inflated) {
  Rect r = Rect::fromOrigin({2, 2}, 2, 2);
  EXPECT_EQ(r.inflated(1), Rect::fromOrigin({1, 1}, 4, 4));
  EXPECT_TRUE(r.inflated(-2).empty()) << "deflating past zero yields empty";
}

TEST(RectTest, DistanceToRect) {
  Rect a = Rect::fromOrigin({0, 0}, 2, 2);
  Rect b = Rect::fromOrigin({5, 0}, 2, 2);   // 3 apart horizontally
  Rect c = Rect::fromOrigin({5, 6}, 2, 2);   // diagonal
  EXPECT_DOUBLE_EQ(a.distanceTo(b), 3);
  EXPECT_DOUBLE_EQ(a.distanceTo(c), std::hypot(3, 4));
  EXPECT_DOUBLE_EQ(a.distanceTo(a), 0);
  Rect overlap = Rect::fromOrigin({1, 1}, 2, 2);
  EXPECT_DOUBLE_EQ(a.distanceTo(overlap), 0);
}

TEST(RectTest, DistanceToPoint) {
  Rect r = Rect::fromOrigin({0, 0}, 2, 2);
  EXPECT_DOUBLE_EQ(r.distanceTo(Point2{1, 1}), 0);
  EXPECT_DOUBLE_EQ(r.distanceTo(Point2{5, 1}), 3);
  EXPECT_DOUBLE_EQ(r.distanceTo(Point2{5, 6}), 5);
}

TEST(RectTest, Center) {
  Rect r = Rect::fromOrigin({0, 0}, 4, 2);
  EXPECT_EQ(r.center(), (Point2{2, 1}));
}

TEST(RectTest, ApproxEqual) {
  Rect a = Rect::fromOrigin({0, 0}, 1, 1);
  Rect b = Rect::fromOrigin({1e-12, 0}, 1, 1);
  EXPECT_TRUE(approxEqual(a, b));
  EXPECT_FALSE(approxEqual(a, Rect::fromOrigin({0.1, 0}, 1, 1)));
  EXPECT_TRUE(approxEqual(Rect{}, Rect{}));
  EXPECT_FALSE(approxEqual(Rect{}, a));
}

// --- property sweep: intersection/containment/union invariants --------------

struct RectPair {
  Rect a;
  Rect b;
};

class RectAlgebra : public ::testing::TestWithParam<RectPair> {};

TEST_P(RectAlgebra, IntersectionIsContainedInBoth) {
  const auto& [a, b] = GetParam();
  auto c = a.intersection(b);
  if (c) {
    EXPECT_TRUE(a.contains(*c));
    EXPECT_TRUE(b.contains(*c));
    EXPECT_LE(c->area(), std::min(a.area(), b.area()) + 1e-12);
  }
}

TEST_P(RectAlgebra, UnionContainsBothAndIsCommutative) {
  const auto& [a, b] = GetParam();
  Rect u = a.unionWith(b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u, b.unionWith(a));
}

TEST_P(RectAlgebra, InclusionExclusionUpperBound) {
  const auto& [a, b] = GetParam();
  auto c = a.intersection(b);
  double inter = c ? c->area() : 0.0;
  // area(A ∪ B) as MBR >= area(A) + area(B) - area(A ∩ B)
  EXPECT_GE(a.unionWith(b).area() + 1e-9, a.area() + b.area() - inter);
}

TEST_P(RectAlgebra, ContainmentImpliesIntersectionEqualsInner) {
  const auto& [a, b] = GetParam();
  if (a.contains(b) && !b.empty()) {
    auto c = a.intersection(b);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RectAlgebra,
    ::testing::Values(
        RectPair{Rect::fromOrigin({0, 0}, 10, 10), Rect::fromOrigin({2, 2}, 2, 2)},
        RectPair{Rect::fromOrigin({0, 0}, 4, 4), Rect::fromOrigin({2, 2}, 4, 4)},
        RectPair{Rect::fromOrigin({0, 0}, 1, 1), Rect::fromOrigin({9, 9}, 1, 1)},
        RectPair{Rect::fromOrigin({0, 0}, 2, 2), Rect::fromOrigin({2, 0}, 2, 2)},
        RectPair{Rect::fromOrigin({0, 0}, 5, 1), Rect::fromOrigin({0, 0}, 1, 5)},
        RectPair{Rect::fromOrigin({1, 1}, 3, 3), Rect::fromOrigin({1, 1}, 3, 3)},
        RectPair{Rect::fromCorners({0, 0}, {0, 0}), Rect::fromOrigin({0, 0}, 1, 1)}));

}  // namespace
}  // namespace mw::geo
